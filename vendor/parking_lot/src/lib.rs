//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small) slice of `parking_lot`'s API this workspace uses:
//! [`Mutex`], [`MutexGuard`], [`Condvar`], [`RwLock`] and their guards —
//! implemented over `std::sync` with parking_lot's semantics:
//!
//! * no lock poisoning: a panic while holding a lock (which the simulator's
//!   crash-injection machinery does deliberately) leaves the lock usable,
//! * `lock()`/`read()`/`write()` return guards directly, not `Result`s,
//! * `Condvar::wait` takes `&mut MutexGuard`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex` wrapper).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar::wait`]
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock` wrapper).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        assert_eq!(*m.lock(), 0, "no poisoning");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
