//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the API slice the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] types. Both RNGs are xoshiro256**
//! generators seeded via SplitMix64 — deterministic per seed, which is all
//! the simulator's adversaries and the experiment harness require (these are
//! not cryptographic generators, and neither were the originals' roles here).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` slice of rand's trait).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random (rand's `Standard` distribution).
pub trait StandardValue {
    /// Draw one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl StandardValue for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl StandardValue for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draw one element of the range from `rng`.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo bias is irrelevant for the simulator's purposes.
                let offset = (rng.next_u64() as u128) % width;
                (self.start as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferred type.
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from `range` (half-open).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic general-purpose generator (stands in for rand's
    /// ChaCha-based `StdRng`; same API, different — but still per-seed
    /// deterministic — stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::seed_from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator (stands in for rand's `SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separate from StdRng so the two families differ.
            Self(Xoshiro256::seed_from_u64(state ^ 0x5357_4D41_4C4C_5247))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let stream = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u32..1_000_000);
            assert!(w < 1_000_000);
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_infers_bool_and_words() {
        let mut r = SmallRng::seed_from_u64(2);
        let _: bool = r.gen();
        let _: u64 = r.gen();
        let heads = (0..1000).filter(|_| r.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "badly skewed: {heads}");
    }

    #[test]
    fn gen_bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn small_and_std_streams_differ() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
