//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! re-implements the slice of proptest's API that this workspace's property
//! tests use: the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert*`/`prop_assume!`, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / [`strategy::Just`] / [`collection::vec`]
//! / [`prop_oneof!`] / [`strategy::any`] strategies, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the deterministic seed and
//!   case number instead; re-running reproduces it exactly. The repo's
//!   schedule-level counterexamples are minimized by the simulator's own
//!   delta-debugging minimizer (`sbu_sim::explore::minimize_script`), which
//!   understands schedule semantics far better than structural shrinking.
//! * **Deterministic by default.** Every run uses the same fixed seed, so CI
//!   is reproducible; set `SBU_PROPTEST_SEED` to explore a different stream,
//!   and `SBU_PROPTEST_CASES` to scale case counts up or down globally.

#![forbid(unsafe_code)]

/// Configuration, RNG and error types for the runner.
pub mod test_runner {
    use std::fmt;

    /// Default base seed (overridden by `SBU_PROPTEST_SEED`).
    pub const DEFAULT_SEED: u64 = 0x005E_ED0F_571C_B175;

    /// Deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The generated inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with a message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with a message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Outcome of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (the `cases` slice of proptest's struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
        /// Give up after this many consecutive rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok()?.trim().parse().ok()
    }

    /// Base seed: `SBU_PROPTEST_SEED` if set, else [`DEFAULT_SEED`].
    pub fn base_seed() -> u64 {
        env_u64("SBU_PROPTEST_SEED").unwrap_or(DEFAULT_SEED)
    }

    /// Effective case count: `SBU_PROPTEST_CASES` if set, else the config's.
    pub fn effective_cases(config: &ProptestConfig) -> u32 {
        env_u64("SBU_PROPTEST_CASES")
            .map(|c| c.min(u32::MAX as u64) as u32)
            .unwrap_or(config.cases)
    }

    /// Drive `body` over `cases` generated inputs; panics (failing the
    /// enclosing `#[test]`) on the first falsified case, reporting the seed
    /// and case index needed to replay it.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let seed = base_seed();
        let cases = effective_cases(config);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while accepted < cases {
            case_index += 1;
            // Independent stream per case, reproducible from (seed, index).
            let mut rng = TestRng::from_seed(seed ^ case_index.wrapping_mul(0xA076_1D64_78BD_642F));
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected >= config.max_global_rejects {
                        panic!(
                            "proptest {name}: too many rejected cases \
                             ({rejected}) — loosen prop_assume! conditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name} falsified at case {case_index} \
                         (SBU_PROPTEST_SEED={seed}): {msg}"
                    );
                }
            }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
        where
            Self: Sized,
        {
            Map {
                source: self,
                f,
                _marker: PhantomData,
            }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F, S2>
        where
            Self: Sized,
        {
            FlatMap {
                source: self,
                f,
                _marker: PhantomData,
            }
        }

        /// Filter generated values (rejection sampling, bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                f,
                whence,
            }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F, O> {
        source: S,
        f: F,
        _marker: PhantomData<fn() -> O>,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F, O> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F, S2> {
        source: S,
        f: F,
        _marker: PhantomData<fn() -> S2>,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F, S2> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.whence);
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform or weighted choice among strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Uniform choice.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted choice.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs ≥ 1 option");
            let total_weight = options.iter().map(|&(w, _)| w as u64).sum::<u64>();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Self {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the draw range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

/// Assert a boolean property inside `proptest!` (early-returns a
/// [`test_runner::TestCaseError::Fail`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Reject the current inputs (the case is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Choose among strategies, uniformly or `weight => strategy` weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_proptest(
                    &config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                        )+
                        let __proptest_result: $crate::test_runner::TestCaseResult = (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        __proptest_result
                    },
                );
            }
        )*
    };
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_domain() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u64..10, 5usize..6, -3i64..3);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
            assert!((-3..3).contains(&c));
        }
        let v = prop::collection::vec(0u32..4, 2..5);
        for _ in 0..200 {
            let xs = v.generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
        let exact = prop::collection::vec(0u32..4, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn oneof_map_and_just_compose() {
        #[derive(Debug, PartialEq)]
        enum Op {
            Push(u64),
            Pop,
        }
        let s = prop_oneof![(0u64..5).prop_map(Op::Push), Just(()).prop_map(|_| Op::Pop)];
        let mut rng = TestRng::from_seed(2);
        let mut seen_push = false;
        let mut seen_pop = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Op::Push(v) => {
                    assert!(v < 5);
                    seen_push = true;
                }
                Op::Pop => seen_pop = true,
            }
        }
        assert!(seen_push && seen_pop);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let s = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u64..2, n..n + 1));
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = prop::collection::vec(0u64..1000, 0..20);
        let draw = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..10).map(|_| s.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro end-to-end: bindings, assertions, assume.
        #[test]
        fn macro_smoke(x in 0u64..50, ys in prop::collection::vec(0u64..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert!(ys.iter().all(|&y| y < 10));
            prop_assert_ne!(x, 13);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_seed_info() {
        crate::test_runner::run_proptest(&ProptestConfig::with_cases(10), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
