//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! keeps the workspace's benchmarks compiling and runnable with the same
//! source: `criterion_group!`/`criterion_main!`, benchmark groups,
//! [`BenchmarkId`], and the [`Bencher`] methods (`iter`, `iter_custom`,
//! `iter_with_setup`). Measurement is a simple calibrated wall-clock mean —
//! no statistics, outlier analysis, or HTML reports. Good enough for the
//! relative comparisons the experiment tables cite.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering (std's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock time per measured benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// Iteration-driving handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by the `iter*` methods.
    result_ns: f64,
    iters_run: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            result_ns: 0.0,
            iters_run: 0,
        }
    }

    /// Measure `f` by running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the batch until it takes ≥ ~5 ms.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || batch >= 1 << 24 {
                break dt.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let total = ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 28);
        let t0 = Instant::now();
        for _ in 0..total {
            black_box(f());
        }
        let dt = t0.elapsed();
        self.result_ns = dt.as_secs_f64() * 1e9 / total as f64;
        self.iters_run = total;
    }

    /// Measure with caller-controlled timing: `f` receives an iteration
    /// count and returns the time spent on exactly those iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate with a small count first.
        let probe = 100;
        let dt = f(probe);
        let per_iter = dt.as_secs_f64() / probe as f64;
        let total = ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let dt = f(total);
        self.result_ns = dt.as_secs_f64() * 1e9 / total as f64;
        self.iters_run = total;
    }

    /// Measure `routine` alone, constructing its input with `setup` outside
    /// the timed section each iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total_time = Duration::ZERO;
        let mut iters = 0u64;
        // Run until we accumulate the target measured time (with a floor of
        // 30 iterations and a generous iteration cap for slow routines).
        while (total_time < TARGET_MEASURE || iters < 30) && iters < 1 << 20 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total_time += t0.elapsed();
            iters += 1;
        }
        self.result_ns = total_time.as_secs_f64() * 1e9 / iters as f64;
        self.iters_run = iters;
    }
}

fn print_result(name: &str, b: &Bencher) {
    let ns = b.result_ns;
    let (val, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{name:<50} {val:>10.3} {unit}/iter   ({} iters)",
        b.iters_run
    );
}

/// Identifier combining a function name and a parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, no function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; this harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; this harness auto-calibrates.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group (no-op beyond criterion API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(id, &b);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.result_ns > 0.0);
        assert!(b.iters_run > 0);
    }

    #[test]
    fn iter_with_setup_runs_routine() {
        let mut b = Bencher::new();
        let mut count = 0u64;
        b.iter_with_setup(Vec::<u64>::new, |v| {
            count += 1;
            v.len()
        });
        assert!(count >= 30);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
