//! Round-trip guarantees for the `sbu_obs::json` writer/parser and the
//! [`Snapshot`] serialization the scenario reports are built on.
//!
//! The scenario-matrix harness (`sbu-scenario`) trusts that whatever a run
//! writes into `OBS_*`/`BENCH_*` artifacts comes back byte-for-value
//! identical when the coverage summarizer re-reads it. These tests pin that
//! contract on adversarial values: empty tables, zero counters, `u64::MAX`
//! histogram buckets, and names that need escaping.

use sbu_obs::{HistogramSummary, Json, Snapshot};

/// A snapshot exercising every awkward value class at once.
fn adversarial_snapshot() -> Snapshot {
    let mut buckets = [0u64; sbu_obs::metrics::BUCKETS];
    buckets[0] = u64::MAX;
    buckets[sbu_obs::metrics::BUCKETS - 1] = 1;
    Snapshot {
        counters: vec![
            ("plain.counter".into(), 7),
            ("zero.counter".into(), 0),
            ("huge.counter".into(), u64::MAX),
            ("needs \"escaping\"\n\ttab\\slash".into(), 3),
            ("unicode.éπ€.counter".into(), 1),
        ],
        histograms: vec![
            ("empty.histogram".into(), HistogramSummary::default()),
            (
                "max.histogram".into(),
                HistogramSummary {
                    count: u64::MAX,
                    sum: u64::MAX,
                    max: u64::MAX,
                    buckets,
                },
            ),
        ],
    }
}

/// `u64::MAX` survives the `f64` JSON representation: `2^64` is exactly
/// representable, renders, parses, and saturates back to `u64::MAX`.
#[test]
fn u64_max_survives_the_f64_detour() {
    let j = Json::Num(u64::MAX as f64);
    let back = Json::parse(&j.render()).unwrap();
    assert_eq!(back.as_num().map(|x| x as u64), Some(u64::MAX));
}

#[test]
fn adversarial_snapshot_roundtrips_through_json() {
    let snap = adversarial_snapshot();
    let doc = snap.to_json();
    // Value-level round-trip: render → parse → same Json.
    let text = doc.render();
    let reparsed = Json::parse(&text).expect("writer output must parse");
    assert_eq!(doc, reparsed);
    // Snapshot-level round-trip — modulo counter order: to_json stores
    // counters in a JSON object (sorted), so compare by lookup.
    let back = Snapshot::from_json(&reparsed).expect("schema must round-trip");
    for (name, v) in &snap.counters {
        assert_eq!(back.counter(name), *v, "counter {name:?}");
    }
    assert_eq!(back.counters.len(), snap.counters.len());
    for (name, h) in &snap.histograms {
        assert_eq!(back.histogram(name), Some(h), "histogram {name:?}");
    }
}

#[test]
fn empty_snapshot_roundtrips() {
    let snap = Snapshot::default();
    let back = Snapshot::from_json(&Json::parse(&snap.to_json().render()).unwrap()).unwrap();
    assert!(back.is_empty());
    // A bare `{}` (no counters/histograms keys at all) is also fine.
    assert!(Snapshot::from_json(&Json::parse("{}").unwrap())
        .unwrap()
        .is_empty());
}

#[test]
fn from_json_rejects_malformed_schemas() {
    for bad in [
        r#"{"counters": [1, 2]}"#,
        r#"{"histograms": 7}"#,
        r#"{"counters": {"x": "not a number"}}"#,
        r#"{"histograms": {"h": {"count": 1, "buckets": [1, 2]}}}"#,
    ] {
        let doc = Json::parse(bad).unwrap();
        assert!(Snapshot::from_json(&doc).is_err(), "should reject: {bad}");
    }
}

#[test]
fn escaped_names_roundtrip_exactly() {
    let name = "quote\" backslash\\ newline\n tab\t ctrl\u{1} é";
    let doc = Json::obj(vec![(name, Json::Num(1.0))]);
    let back = Json::parse(&doc.render()).unwrap();
    assert_eq!(back.get(name).and_then(Json::as_num), Some(1.0));
}

#[test]
fn diff_reports_coverage_movement() {
    let before = Snapshot {
        counters: vec![
            ("stays.hot".into(), 5),
            ("goes.dark".into(), 9),
            ("always.zero".into(), 0),
        ],
        histograms: vec![(
            "hist.goes.dark".into(),
            HistogramSummary {
                count: 2,
                sum: 4,
                max: 3,
                buckets: [0; sbu_obs::metrics::BUCKETS],
            },
        )],
    };
    let after = Snapshot {
        counters: vec![
            ("stays.hot".into(), 8),
            ("goes.dark".into(), 0),
            ("newly.lit".into(), 2),
        ],
        histograms: vec![("hist.goes.dark".into(), HistogramSummary::default())],
    };
    let diff = before.diff(&after);
    assert!(diff.has_coverage_loss());
    let mut dark = diff.went_dark.clone();
    dark.sort();
    assert_eq!(dark, vec!["goes.dark".to_string(), "hist.goes.dark".into()]);
    assert_eq!(diff.appeared, vec!["newly.lit".to_string()]);
    assert_eq!(diff.changed, vec![("stays.hot".to_string(), 5, 8)]);
    // Identical snapshots: nothing moved.
    let same = before.diff(&before);
    assert!(!same.has_coverage_loss());
    assert!(same.appeared.is_empty() && same.changed.is_empty());
}
