//! Named counters and histograms with one cache-padded lane per thread.
//!
//! The recording discipline is single-writer: lane `i` is written only by
//! the thread driving processor `i`, with a relaxed load + relaxed store
//! (never a read-modify-write), so a hot instrument costs one uncontended
//! cache line and no bus locking — the safe-Rust equivalent of the "plain
//! `u64` cell per thread" design. Any thread may *read* any lane at any
//! time (that is what [`Registry::snapshot`] does); a torn moment can at
//! worst miss the most recent few increments, which is fine for telemetry.
//!
//! With the `obs` cargo feature off, [`Registry`], [`Counter`] and
//! [`Histogram`] are zero-sized types whose methods are inlined no-ops;
//! [`Snapshot`] and [`HistogramSummary`] exist in both configurations so
//! reporting code compiles unchanged.

use crate::json::Json;

/// Number of log₂ buckets a [`Histogram`] keeps: values `2^15` and above
/// share the last bucket.
pub const BUCKETS: usize = 16;

/// The log₂ bucket a value falls into (`0 → 0`, `1 → 0`, `2..3 → 1`, …).
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - 1 - value.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Aggregated state of one histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-log₂-bucket counts (`buckets[i]` holds values in `[2^i, 2^{i+1})`,
    /// except `buckets[0]` also holds `0` and the last bucket is unbounded).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    /// Mean recorded value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time aggregation of every instrument in a [`Registry`],
/// in registration order. Exists (and is simply empty) when the `obs`
/// feature is off, so consumers need no conditional compilation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, summed-over-lanes total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` per histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// The total of the named counter (`0` if absent — absent and
    /// never-incremented are indistinguishable on purpose).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The summary of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether nothing was registered (always true with `obs` off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Render a two-section fixed-width table of every instrument, sorted
    /// by name. Returns the empty string when nothing was registered, so
    /// callers can print unconditionally.
    pub fn render_table(&self, title: &str) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let mut counters = self.counters.clone();
        counters.sort();
        let name_w = counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max("histogram".len());
        for (name, total) in &counters {
            out.push_str(&format!("  {name:<name_w$}  {total:>12}\n"));
        }
        let mut histograms: Vec<&(String, HistogramSummary)> = self.histograms.iter().collect();
        histograms.sort_by_key(|(n, _)| n.clone());
        if !histograms.is_empty() {
            out.push_str(&format!(
                "  {:<name_w$}  {:>12}  {:>10}  {:>8}\n",
                "histogram", "count", "mean", "max"
            ));
            for (name, h) in histograms {
                out.push_str(&format!(
                    "  {name:<name_w$}  {:>12}  {:>10.2}  {:>8}\n",
                    h.count,
                    h.mean(),
                    h.max
                ));
            }
        }
        out
    }

    /// The `OBS_*.json` artifact body (schema in EXPERIMENTS.md): counters
    /// as an object of totals, histograms as objects with `count`, `sum`,
    /// `max`, `mean` and the raw `buckets` array.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        Json::obj(vec![
                            ("count", Json::Num(h.count as f64)),
                            ("sum", Json::Num(h.sum as f64)),
                            ("max", Json::Num(h.max as f64)),
                            ("mean", Json::Num(h.mean())),
                            (
                                "buckets",
                                Json::Arr(h.buckets.iter().map(|b| Json::Num(*b as f64)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![("counters", counters), ("histograms", histograms)])
    }

    /// Parse a snapshot back out of its [`Snapshot::to_json`] form (the
    /// `metrics` object of an `OBS_*.json` artifact). Numbers are clamped
    /// into `u64` (negative → 0, oversized → `u64::MAX`) — artifact values
    /// are always non-negative counts, so nothing real is clamped.
    pub fn from_json(doc: &Json) -> Result<Snapshot, String> {
        fn as_u64(j: &Json, what: &str) -> Result<u64, String> {
            j.as_num()
                .map(|x| x as u64)
                .ok_or_else(|| format!("{what} is not a number"))
        }
        let mut out = Snapshot::default();
        match doc.get("counters") {
            Some(Json::Obj(map)) => {
                for (name, v) in map {
                    out.counters
                        .push((name.clone(), as_u64(v, &format!("counter {name:?}"))?));
                }
            }
            Some(_) => return Err("\"counters\" is not an object".into()),
            None => {}
        }
        match doc.get("histograms") {
            Some(Json::Obj(map)) => {
                for (name, h) in map {
                    let mut summary = HistogramSummary {
                        count: as_u64(
                            h.get("count").unwrap_or(&Json::Num(0.0)),
                            &format!("histogram {name:?} count"),
                        )?,
                        sum: as_u64(
                            h.get("sum").unwrap_or(&Json::Num(0.0)),
                            &format!("histogram {name:?} sum"),
                        )?,
                        max: as_u64(
                            h.get("max").unwrap_or(&Json::Num(0.0)),
                            &format!("histogram {name:?} max"),
                        )?,
                        buckets: [0; BUCKETS],
                    };
                    if let Some(buckets) = h.get("buckets").and_then(Json::as_arr) {
                        if buckets.len() != BUCKETS {
                            return Err(format!(
                                "histogram {name:?} has {} buckets, expected {BUCKETS}",
                                buckets.len()
                            ));
                        }
                        for (slot, b) in summary.buckets.iter_mut().zip(buckets) {
                            *slot = as_u64(b, &format!("histogram {name:?} bucket"))?;
                        }
                    }
                    out.histograms.push((name.clone(), summary));
                }
            }
            Some(_) => return Err("\"histograms\" is not an object".into()),
            None => {}
        }
        Ok(out)
    }

    /// Fold `other` into this snapshot: counters with the same name sum,
    /// histograms with the same name merge field-wise (counts and buckets
    /// add, `max` takes the larger), and instruments only `other` knows
    /// are appended. Used wherever per-phase or per-worker registries are
    /// aggregated into one report (scenario cells, the service runtime).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total = total.wrapping_add(*value),
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => {
                    acc.count += h.count;
                    acc.sum = acc.sum.wrapping_add(h.sum);
                    acc.max = acc.max.max(h.max);
                    for (slot, b) in acc.buckets.iter_mut().zip(h.buckets.iter()) {
                        *slot += b;
                    }
                }
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Compare instrument *coverage* against a `current` snapshot taken
    /// later (or from another run). Histograms participate through their
    /// recorded-value counts, under their registered names. A counter that
    /// was non-zero here but zero (or absent) in `current` "went dark" —
    /// the signal the scenario coverage summarizer fails on.
    pub fn diff(&self, current: &Snapshot) -> SnapshotDiff {
        fn activity(s: &Snapshot) -> Vec<(String, u64)> {
            let mut out: Vec<(String, u64)> = s.counters.clone();
            out.extend(s.histograms.iter().map(|(n, h)| (n.clone(), h.count)));
            out.sort();
            out
        }
        let old = activity(self);
        let new = activity(current);
        let lookup = |set: &[(String, u64)], name: &str| -> u64 {
            set.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
        };
        let mut diff = SnapshotDiff::default();
        for (name, was) in &old {
            let now = lookup(&new, name);
            match (*was, now) {
                (0, 0) => {}
                (0, _) => diff.appeared.push(name.clone()),
                (_, 0) => diff.went_dark.push(name.clone()),
                (was, now) if was != now => diff.changed.push((name.clone(), was, now)),
                _ => {}
            }
        }
        for (name, now) in &new {
            if *now > 0 && lookup(&old, name) == 0 && !diff.appeared.contains(name) {
                diff.appeared.push(name.clone());
            }
        }
        diff
    }
}

/// Outcome of [`Snapshot::diff`]: how instrument coverage moved between two
/// snapshots. Only [`SnapshotDiff::went_dark`] is a regression; the other
/// two fields are informational.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Instruments that were zero (or unregistered) before and fired in the
    /// current snapshot — coverage gained.
    pub appeared: Vec<String>,
    /// Instruments that fired before but are zero (or unregistered) in the
    /// current snapshot — coverage *lost*: the code path stopped being
    /// exercised.
    pub went_dark: Vec<String>,
    /// Instruments non-zero in both with different totals: `(name, before,
    /// current)`.
    pub changed: Vec<(String, u64, u64)>,
}

impl SnapshotDiff {
    /// Whether any previously exercised instrument stopped firing.
    pub fn has_coverage_loss(&self) -> bool {
        !self.went_dark.is_empty()
    }
}

#[cfg(feature = "obs")]
mod live {
    use super::{bucket_of, HistogramSummary, Snapshot, BUCKETS};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, Mutex};

    /// One per-thread cell, padded to its own cache line (128 bytes covers
    /// the spatial prefetcher pairing on current x86 and Apple silicon).
    #[repr(align(128))]
    #[derive(Debug, Default)]
    struct Lane(AtomicU64);

    impl Lane {
        /// Single-writer bump: relaxed load + relaxed store, no RMW.
        #[inline]
        fn bump(&self, n: u64) {
            self.0.store(self.0.load(Relaxed).wrapping_add(n), Relaxed);
        }
    }

    /// A named monotone counter with one padded lane per thread.
    #[derive(Clone, Debug)]
    pub struct Counter {
        lanes: Arc<[Lane]>,
    }

    impl Counter {
        fn new(lanes: usize) -> Self {
            Counter {
                lanes: (0..lanes).map(|_| Lane::default()).collect(),
            }
        }

        /// A counter attached to nothing: every `add` is a bounds-check
        /// and nothing more. The default state of every instrument bundle.
        pub fn disabled() -> Self {
            Counter {
                lanes: Arc::from(Vec::new()),
            }
        }

        /// Add `n` on `lane` (call only from the thread that owns the lane).
        /// Out-of-range lanes — in particular every lane of a disabled
        /// counter — are ignored.
        #[inline]
        pub fn add(&self, lane: usize, n: u64) {
            if let Some(cell) = self.lanes.get(lane) {
                cell.bump(n);
            }
        }

        /// Add one on `lane`.
        #[inline]
        pub fn incr(&self, lane: usize) {
            self.add(lane, 1);
        }

        /// Sum over all lanes (any thread may call this).
        pub fn total(&self) -> u64 {
            self.lanes
                .iter()
                .map(|l| l.0.load(Relaxed))
                .fold(0, u64::wrapping_add)
        }
    }

    impl Default for Counter {
        fn default() -> Self {
            Counter::disabled()
        }
    }

    #[repr(align(128))]
    #[derive(Debug)]
    struct HistLane {
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
        buckets: [AtomicU64; BUCKETS],
    }

    impl Default for HistLane {
        fn default() -> Self {
            HistLane {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }
    }

    /// A named log₂ histogram with one padded lane per thread.
    #[derive(Clone, Debug)]
    pub struct Histogram {
        lanes: Arc<[HistLane]>,
    }

    impl Histogram {
        fn new(lanes: usize) -> Self {
            Histogram {
                lanes: (0..lanes).map(|_| HistLane::default()).collect(),
            }
        }

        /// A histogram attached to nothing (see [`Counter::disabled`]).
        pub fn disabled() -> Self {
            Histogram {
                lanes: Arc::from(Vec::new()),
            }
        }

        /// Record `value` on `lane` (single-writer, like [`Counter::add`]).
        #[inline]
        pub fn record(&self, lane: usize, value: u64) {
            if let Some(l) = self.lanes.get(lane) {
                l.count.store(l.count.load(Relaxed) + 1, Relaxed);
                l.sum
                    .store(l.sum.load(Relaxed).wrapping_add(value), Relaxed);
                if value > l.max.load(Relaxed) {
                    l.max.store(value, Relaxed);
                }
                let b = &l.buckets[bucket_of(value)];
                b.store(b.load(Relaxed) + 1, Relaxed);
            }
        }

        /// Aggregate all lanes into a summary.
        pub fn summarize(&self) -> HistogramSummary {
            let mut out = HistogramSummary::default();
            for l in self.lanes.iter() {
                out.count += l.count.load(Relaxed);
                out.sum = out.sum.wrapping_add(l.sum.load(Relaxed));
                out.max = out.max.max(l.max.load(Relaxed));
                for (acc, b) in out.buckets.iter_mut().zip(l.buckets.iter()) {
                    *acc += b.load(Relaxed);
                }
            }
            out
        }
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram::disabled()
        }
    }

    #[derive(Debug, Default)]
    struct Instruments {
        counters: Vec<(String, Counter)>,
        histograms: Vec<(String, Histogram)>,
    }

    /// A collection of named instruments sharing a lane count. Cloning is
    /// shallow (`Arc` inside): every clone registers into and snapshots the
    /// same instruments. The registration list sits behind a mutex touched
    /// only at registration and snapshot time — never on the recording path,
    /// which holds direct `Arc` handles to its lanes.
    #[derive(Clone, Debug)]
    pub struct Registry {
        lanes: usize,
        instruments: Arc<Mutex<Instruments>>,
    }

    impl Registry {
        /// A registry whose instruments each carry `lanes` per-thread lanes
        /// (one per processor that will record).
        pub fn new(lanes: usize) -> Self {
            Registry {
                lanes,
                instruments: Arc::new(Mutex::new(Instruments::default())),
            }
        }

        /// Lanes per instrument.
        pub fn lanes(&self) -> usize {
            self.lanes
        }

        /// The counter registered under `name`, creating it on first use.
        /// Repeated calls return handles to the *same* cells, so producers
        /// and reporters can rendezvous by name alone.
        pub fn counter(&self, name: &str) -> Counter {
            let mut ins = self.instruments.lock().expect("obs registry poisoned");
            if let Some((_, c)) = ins.counters.iter().find(|(n, _)| n == name) {
                return c.clone();
            }
            let c = Counter::new(self.lanes);
            ins.counters.push((name.to_string(), c.clone()));
            c
        }

        /// The histogram registered under `name`, creating it on first use.
        pub fn histogram(&self, name: &str) -> Histogram {
            let mut ins = self.instruments.lock().expect("obs registry poisoned");
            if let Some((_, h)) = ins.histograms.iter().find(|(n, _)| n == name) {
                return h.clone();
            }
            let h = Histogram::new(self.lanes);
            ins.histograms.push((name.to_string(), h.clone()));
            h
        }

        /// Aggregate every instrument (any thread, any time; concurrent
        /// recording keeps going and may race past the totals read here).
        pub fn snapshot(&self) -> Snapshot {
            let ins = self.instruments.lock().expect("obs registry poisoned");
            Snapshot {
                counters: ins
                    .counters
                    .iter()
                    .map(|(n, c)| (n.clone(), c.total()))
                    .collect(),
                histograms: ins
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.summarize()))
                    .collect(),
            }
        }
    }
}

#[cfg(feature = "obs")]
pub use live::{Counter, Histogram, Registry};

#[cfg(not(feature = "obs"))]
mod sink {
    use super::{HistogramSummary, Snapshot};

    /// No-op counter (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// A counter attached to nothing.
        pub fn disabled() -> Self {
            Counter
        }

        /// No-op.
        #[inline]
        pub fn add(&self, _lane: usize, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn incr(&self, _lane: usize) {}

        /// Always `0`.
        pub fn total(&self) -> u64 {
            0
        }
    }

    /// No-op histogram (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// A histogram attached to nothing.
        pub fn disabled() -> Self {
            Histogram
        }

        /// No-op.
        #[inline]
        pub fn record(&self, _lane: usize, _value: u64) {}

        /// Always empty.
        pub fn summarize(&self) -> HistogramSummary {
            HistogramSummary::default()
        }
    }

    /// No-op registry (the `obs` feature is off): hands out no-op
    /// instruments and snapshots to nothing.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Registry {
        lanes: usize,
    }

    impl Registry {
        /// A registry recording nothing.
        pub fn new(lanes: usize) -> Self {
            Registry { lanes }
        }

        /// Lanes per instrument (kept for API parity).
        pub fn lanes(&self) -> usize {
            self.lanes
        }

        /// A no-op counter.
        pub fn counter(&self, _name: &str) -> Counter {
            Counter
        }

        /// A no-op histogram.
        pub fn histogram(&self, _name: &str) -> Histogram {
            Histogram
        }

        /// Always [`Snapshot::default`].
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }
    }
}

#[cfg(not(feature = "obs"))]
pub use sink::{Counter, Histogram, Registry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1 << 14), 14);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_lookup_and_json() {
        let snap = Snapshot {
            counters: vec![("a.hits".into(), 3), ("a.misses".into(), 1)],
            histograms: vec![(
                "a.batch".into(),
                HistogramSummary {
                    count: 2,
                    sum: 6,
                    max: 4,
                    buckets: [0; BUCKETS],
                },
            )],
        };
        assert_eq!(snap.counter("a.hits"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.histogram("a.batch").unwrap().mean(), 3.0);
        let j = snap.to_json();
        assert_eq!(
            j.get("counters").unwrap().get("a.hits").unwrap().as_num(),
            Some(3.0)
        );
        let table = snap.render_table("-- t --");
        assert!(table.contains("a.hits"));
        assert!(table.contains("a.batch"));
    }

    #[test]
    fn merge_sums_counters_and_folds_histograms() {
        let mut a = Snapshot {
            counters: vec![("x".into(), 2), ("y".into(), 1)],
            histograms: vec![(
                "h".into(),
                HistogramSummary {
                    count: 1,
                    sum: 4,
                    max: 4,
                    buckets: {
                        let mut b = [0; BUCKETS];
                        b[2] = 1;
                        b
                    },
                },
            )],
        };
        let b = Snapshot {
            counters: vec![("x".into(), 3), ("z".into(), 7)],
            histograms: vec![
                (
                    "h".into(),
                    HistogramSummary {
                        count: 2,
                        sum: 9,
                        max: 8,
                        buckets: {
                            let mut b = [0; BUCKETS];
                            b[0] = 1;
                            b[3] = 1;
                            b
                        },
                    },
                ),
                ("g".into(), HistogramSummary::default()),
            ],
        };
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("z"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 13);
        assert_eq!(h.max, 8);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 1);
        assert!(a.histogram("g").is_some());
        // Merging into an empty snapshot copies everything.
        let mut empty = Snapshot::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        assert_eq!(Snapshot::default().render_table("t"), "");
        assert!(Snapshot::default().is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counters_aggregate_across_lanes() {
        let reg = Registry::new(4);
        let c = reg.counter("x");
        c.incr(0);
        c.add(1, 5);
        c.add(3, 2);
        c.add(7, 100); // out of range: ignored
        assert_eq!(c.total(), 8);
        assert_eq!(reg.snapshot().counter("x"), 8);
        // Same name, same cells.
        let c2 = reg.counter("x");
        c2.incr(2);
        assert_eq!(reg.snapshot().counter("x"), 9);
        // Disabled counters swallow everything.
        let d = Counter::disabled();
        d.incr(0);
        assert_eq!(d.total(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histograms_summarize_across_lanes() {
        let reg = Registry::new(2);
        let h = reg.histogram("b");
        h.record(0, 1);
        h.record(0, 3);
        h.record(1, 8);
        let s = reg.snapshot();
        let sum = s.histogram("b").unwrap();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.sum, 12);
        assert_eq!(sum.max, 8);
        assert_eq!(sum.buckets[0], 1); // 1
        assert_eq!(sum.buckets[1], 1); // 3
        assert_eq!(sum.buckets[3], 1); // 8
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_build_records_nothing() {
        assert!(!crate::enabled());
        let reg = Registry::new(8);
        let c = reg.counter("x");
        c.incr(0);
        reg.histogram("h").record(0, 9);
        assert!(reg.snapshot().is_empty());
        assert_eq!(c.total(), 0);
    }
}
