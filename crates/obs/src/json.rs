//! Minimal JSON support for machine-readable artifacts.
//!
//! The workspace deliberately carries no serialization dependency, and the
//! artifact files (`BENCH_e8.json`, `OBS_e8.json` etc., see EXPERIMENTS.md)
//! are flat — a few scalars plus an array or object of rows — so a small
//! writer and a recursive-descent reader cover everything the perf-tracking
//! tooling needs without pulling in serde. This module started life in
//! `sbu-bench`, which still re-exports it under its old path.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Numbers are kept as `f64` (every value we emit fits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so output order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                // Integers render without a fractional part.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset this module writes: no `\uXXXX`
    /// escapes beyond what [`parse_string`] handles, numbers as `f64`).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so slicing
                // on char boundaries is safe via the str API).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_bench_file() {
        let doc = Json::obj(vec![
            ("experiment", Json::Str("e8".into())),
            ("ops_per_thread", Json::Num(2000.0)),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("threads", Json::Num(4.0)),
                    ("bounded_fast", Json::Num(123456.789)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
        let row = &back.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("threads").unwrap().as_num(), Some(4.0));
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("e8"));
    }

    #[test]
    fn parses_escapes_and_empties() {
        let j =
            Json::parse(r#"{"a": [], "b": {}, "s": "x\n\"y\"", "t": true, "z": null}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(j.get("s").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(j.get("t"), Some(&Json::Bool(true)));
        assert_eq!(j.get("z"), Some(&Json::Null));
        // Writer escapes what the parser reads back.
        let s = Json::Str("a\"b\\c\nd".into()).render();
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
    }
}
