//! Bounded lock-free per-thread event rings and the trace→history adapter.
//!
//! Each recording thread owns one single-producer/single-consumer ring
//! lane: the writer publishes with a release store of its head cursor, the
//! (single) drainer acknowledges with a release store of the tail cursor,
//! and a full lane **drops the new event and counts the drop** rather than
//! blocking or overwriting — a trace must never perturb the run it is
//! tracing. With the `obs` feature off the whole ring is a zero-sized
//! no-op.
//!
//! [`history_from_trace`] pairs `Invoke`/`Response` events per processor
//! into an [`sbu_spec::History`], so a recorded native run can be replayed
//! through `sbu_spec::linearize::check_windowed` offline.

use sbu_spec::history::{History, OpRecord};
use sbu_spec::Pid;

/// What happened. The `a`/`b` payload words of an [`Event`] are
/// kind-specific (operation codes, cell indices, era numbers); the encoding
/// belongs to whoever records and drains the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An operation was invoked (`a`/`b` encode the operation).
    Invoke,
    /// An operation returned (`a`/`b` encode the response).
    Response,
    /// A pool cell was grabbed (`a` = cell index).
    CellGrab,
    /// A cell was appended to the list (`a` = cell, `b` = old head).
    CellAppend,
    /// A grabbed cell was released (`a` = cell index).
    CellRelease,
    /// The processor crashed (`a` = era).
    Crash,
    /// The processor restarted (`a` = era).
    Restart,
}

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Invoke => 0,
            EventKind::Response => 1,
            EventKind::CellGrab => 2,
            EventKind::CellAppend => 3,
            EventKind::CellRelease => 4,
            EventKind::Crash => 5,
            EventKind::Restart => 6,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::Invoke,
            1 => EventKind::Response,
            2 => EventKind::CellGrab,
            3 => EventKind::CellAppend,
            4 => EventKind::CellRelease,
            5 => EventKind::Crash,
            6 => EventKind::Restart,
            _ => return None,
        })
    }
}

/// One drained trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The recording processor (= the ring lane).
    pub pid: Pid,
    /// Logical timestamp (the recorder chooses the clock; the stress
    /// harness uses `WordMem::op_invoke`/`op_return` ticks).
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

#[cfg(feature = "obs")]
mod live {
    use super::{Event, EventKind};
    use sbu_spec::Pid;
    use std::sync::atomic::{
        AtomicU64,
        Ordering::{Acquire, Relaxed, Release},
    };
    use std::sync::{Arc, Mutex};

    #[repr(align(128))]
    #[derive(Debug, Default)]
    struct Cursor(AtomicU64);

    #[derive(Debug, Default)]
    struct Slot {
        ts: AtomicU64,
        kind: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    #[derive(Debug)]
    struct LaneRing {
        /// Total events published on this lane (writer-owned cursor).
        head: Cursor,
        /// Total events consumed from this lane (drainer-owned cursor).
        tail: Cursor,
        /// Events dropped because the lane was full (writer-owned).
        dropped: Cursor,
        slots: Vec<Slot>,
    }

    #[derive(Debug)]
    struct RingInner {
        capacity: u64,
        lanes: Vec<LaneRing>,
        /// Serializes drains: the per-lane protocol is single-consumer.
        drain_gate: Mutex<()>,
    }

    /// A bounded per-thread event ring. Clones share the same storage.
    #[derive(Clone, Debug)]
    pub struct TraceRing {
        inner: Arc<RingInner>,
    }

    impl TraceRing {
        /// A ring with `lanes` single-writer lanes of `capacity` events
        /// each. `capacity` is rounded up to at least 1.
        pub fn new(lanes: usize, capacity: usize) -> Self {
            let capacity = capacity.max(1);
            TraceRing {
                inner: Arc::new(RingInner {
                    capacity: capacity as u64,
                    lanes: (0..lanes)
                        .map(|_| LaneRing {
                            head: Cursor::default(),
                            tail: Cursor::default(),
                            dropped: Cursor::default(),
                            slots: (0..capacity).map(|_| Slot::default()).collect(),
                        })
                        .collect(),
                    drain_gate: Mutex::new(()),
                }),
            }
        }

        /// A ring recording nothing (zero lanes).
        pub fn disabled() -> Self {
            TraceRing::new(0, 1)
        }

        /// Record one event on `pid`'s lane. Call only from the thread
        /// driving `pid`. A full lane (or an out-of-range `pid`) drops the
        /// event; per-lane drops are counted, see [`TraceRing::dropped_total`].
        #[inline]
        pub fn record(&self, pid: Pid, kind: EventKind, ts: u64, a: u64, b: u64) {
            let Some(lane) = self.inner.lanes.get(pid.0) else {
                return;
            };
            let head = lane.head.0.load(Relaxed);
            let tail = lane.tail.0.load(Acquire);
            if head.wrapping_sub(tail) >= self.inner.capacity {
                lane.dropped
                    .0
                    .store(lane.dropped.0.load(Relaxed) + 1, Relaxed);
                return;
            }
            let slot = &lane.slots[(head % self.inner.capacity) as usize];
            slot.ts.store(ts, Relaxed);
            slot.kind.store(kind.code(), Relaxed);
            slot.a.store(a, Relaxed);
            slot.b.store(b, Relaxed);
            lane.head.0.store(head + 1, Release);
        }

        /// Drain every lane's published-but-unconsumed events, sorted by
        /// `(ts, pid)`. Writers keep recording concurrently; events
        /// published after their lane's head was sampled show up in the
        /// next drain.
        pub fn drain(&self) -> Vec<Event> {
            let _gate = self.inner.drain_gate.lock().expect("trace drain poisoned");
            let mut out = Vec::new();
            for (lane_idx, lane) in self.inner.lanes.iter().enumerate() {
                let head = lane.head.0.load(Acquire);
                let mut tail = lane.tail.0.load(Relaxed);
                while tail < head {
                    let slot = &lane.slots[(tail % self.inner.capacity) as usize];
                    if let Some(kind) = EventKind::from_code(slot.kind.load(Relaxed)) {
                        out.push(Event {
                            pid: Pid(lane_idx),
                            ts: slot.ts.load(Relaxed),
                            kind,
                            a: slot.a.load(Relaxed),
                            b: slot.b.load(Relaxed),
                        });
                    }
                    tail += 1;
                }
                lane.tail.0.store(tail, Release);
            }
            out.sort_by_key(|e| (e.ts, e.pid.0));
            out
        }

        /// Total events dropped (over all lanes) because a lane was full.
        pub fn dropped_total(&self) -> u64 {
            self.inner
                .lanes
                .iter()
                .map(|l| l.dropped.0.load(Relaxed))
                .sum()
        }

        /// Lanes in this ring.
        pub fn lanes(&self) -> usize {
            self.inner.lanes.len()
        }
    }

    impl Default for TraceRing {
        fn default() -> Self {
            TraceRing::disabled()
        }
    }
}

#[cfg(feature = "obs")]
pub use live::TraceRing;

#[cfg(not(feature = "obs"))]
mod sink {
    use super::{Event, EventKind};
    use sbu_spec::Pid;

    /// No-op event ring (the `obs` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct TraceRing;

    impl TraceRing {
        /// A ring recording nothing.
        pub fn new(_lanes: usize, _capacity: usize) -> Self {
            TraceRing
        }

        /// A ring recording nothing.
        pub fn disabled() -> Self {
            TraceRing
        }

        /// No-op.
        #[inline]
        pub fn record(&self, _pid: Pid, _kind: EventKind, _ts: u64, _a: u64, _b: u64) {}

        /// Always empty.
        pub fn drain(&self) -> Vec<Event> {
            Vec::new()
        }

        /// Always `0`.
        pub fn dropped_total(&self) -> u64 {
            0
        }

        /// Always `0`.
        pub fn lanes(&self) -> usize {
            0
        }
    }
}

#[cfg(not(feature = "obs"))]
pub use sink::TraceRing;

/// Pair each processor's `Invoke`/`Response` events into a [`History`].
///
/// Events must be in per-processor program order (as [`TraceRing::drain`]
/// returns them); kinds other than `Invoke`/`Response` are skipped. The
/// decoders reconstruct the operation and response from an event's payload
/// words. An `Invoke` with no matching `Response` becomes a pending record
/// (crash or truncated run); a `Response` with no open `Invoke` — possible
/// when the ring dropped the invoke — is discarded.
pub fn history_from_trace<O, R>(
    events: &[Event],
    mut decode_op: impl FnMut(&Event) -> O,
    mut decode_resp: impl FnMut(&Event) -> R,
) -> History<O, R> {
    let mut open: std::collections::BTreeMap<usize, (O, u64)> = std::collections::BTreeMap::new();
    let mut history = History::new();
    for ev in events {
        match ev.kind {
            EventKind::Invoke => {
                if let Some((op, invoke)) = open.insert(ev.pid.0, (decode_op(ev), ev.ts)) {
                    // The matching response was lost (ring drop): keep the
                    // operation as pending rather than inventing an interval.
                    history.push(OpRecord::pending(ev.pid, op, invoke));
                }
            }
            EventKind::Response => {
                if let Some((op, invoke)) = open.remove(&ev.pid.0) {
                    history.push(OpRecord::completed(
                        ev.pid,
                        op,
                        decode_resp(ev),
                        invoke,
                        ev.ts.max(invoke),
                    ));
                }
            }
            _ => {}
        }
    }
    for (pid, (op, invoke)) in open {
        history.push(OpRecord::pending(Pid(pid), op, invoke));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_pairs_invokes_with_responses() {
        let events = vec![
            Event {
                pid: Pid(0),
                ts: 1,
                kind: EventKind::Invoke,
                a: 10,
                b: 0,
            },
            Event {
                pid: Pid(1),
                ts: 2,
                kind: EventKind::Invoke,
                a: 20,
                b: 0,
            },
            Event {
                pid: Pid(0),
                ts: 3,
                kind: EventKind::CellGrab,
                a: 7,
                b: 0,
            },
            Event {
                pid: Pid(0),
                ts: 4,
                kind: EventKind::Response,
                a: 11,
                b: 0,
            },
        ];
        let h: History<u64, u64> = history_from_trace(&events, |e| e.a, |e| e.a);
        assert_eq!(h.len(), 2);
        assert_eq!(h.completed_count(), 1);
        assert_eq!(h.pending_count(), 1); // pid 1 never responded
        assert!(h.validate().is_ok());
        let done = h.iter().find(|r| r.is_completed()).unwrap();
        assert_eq!((done.pid, done.op, done.resp), (Pid(0), 10, Some(11)));
        assert_eq!((done.invoke, done.ret), (1, Some(4)));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn ring_roundtrips_events_in_order() {
        let ring = TraceRing::new(2, 8);
        ring.record(Pid(0), EventKind::Invoke, 5, 1, 2);
        ring.record(Pid(1), EventKind::Invoke, 3, 9, 0);
        ring.record(Pid(0), EventKind::Response, 7, 4, 0);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        // Sorted by timestamp across lanes.
        assert_eq!(events[0].ts, 3);
        assert_eq!(events[0].pid, Pid(1));
        assert_eq!(events[2].kind, EventKind::Response);
        assert_eq!(ring.dropped_total(), 0);
        // Drained lanes are empty until new events arrive.
        assert!(ring.drain().is_empty());
        ring.record(Pid(1), EventKind::Crash, 9, 0, 0);
        assert_eq!(ring.drain().len(), 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn full_lane_drops_and_counts() {
        let ring = TraceRing::new(1, 4);
        for i in 0..10 {
            ring.record(Pid(0), EventKind::CellGrab, i, i, 0);
        }
        assert_eq!(ring.dropped_total(), 6);
        let events = ring.drain();
        // The *first* four events survive (drop-new, not overwrite-old).
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].ts, 0);
        assert_eq!(events[3].ts, 3);
        // Space freed by the drain is reusable and wraps correctly.
        for i in 10..13 {
            ring.record(Pid(0), EventKind::CellGrab, i, i, 0);
        }
        assert_eq!(ring.drain().len(), 3);
        assert_eq!(ring.dropped_total(), 6);
        // Out-of-range pids are ignored, not a panic.
        ring.record(Pid(9), EventKind::CellGrab, 0, 0, 0);
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_ring_is_inert() {
        let ring = TraceRing::new(4, 64);
        ring.record(Pid(0), EventKind::Invoke, 1, 2, 3);
        assert!(ring.drain().is_empty());
        assert_eq!(ring.dropped_total(), 0);
    }
}
