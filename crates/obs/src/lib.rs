//! # sbu-obs — observability for the sticky-bit universal construction
//!
//! The fast paths added to the construction (frontier cursors, helping-scan
//! combining, single-load word jams) are decision points a sampling profiler
//! cannot attribute: the interesting time is spent *inside* CAS retry loops
//! and helping scans. This crate makes those decisions measurable without
//! perturbing them:
//!
//! * [`metrics`] — named counters and log₂ histograms, one cache-padded
//!   lane per thread. The hot path does a single-writer relaxed load+store
//!   on its own lane (no read-modify-write, no shared cache line);
//!   aggregation happens only at [`metrics::Registry::snapshot`] time. With
//!   the `obs` cargo feature off, every instrument is a zero-sized no-op
//!   and the instrumented crates compile to the same code as before.
//! * [`trace`] — a bounded lock-free per-thread event ring (operation
//!   invoke/response, cell grab/append/release, crash/restart eras) with a
//!   drain-to-[`sbu_spec::history::History`] adapter, so a recorded native
//!   run can
//!   be fed straight into `sbu_spec::linearize::check_windowed`.
//! * [`json`] — the hand-rolled JSON reader/writer used for `BENCH_*.json`
//!   and `OBS_*.json` artifacts (moved here from `sbu-bench`, which
//!   re-exports it for back-compat).
//!
//! The API is identical in both feature configurations; only the behaviour
//! of the recording calls changes. Code that *consumes* observations
//! (tables, artifacts) can branch on [`enabled`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Histogram, HistogramSummary, Registry, Snapshot, SnapshotDiff};
pub use trace::{history_from_trace, Event, EventKind, TraceRing};

/// Whether this build of `sbu-obs` records anything: `true` iff the crate
/// was compiled with the `obs` cargo feature. When `false`, every
/// [`metrics::Registry`] and [`trace::TraceRing`] is a no-op and snapshots
/// are empty.
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}
