//! Property tests for the linearizability checker: the memoized Wing–Gong
//! search must agree with brute-force permutation search on arbitrary small
//! histories, and any witness it produces must actually replay.

use proptest::prelude::*;
use sbu_spec::history::{History, OpRecord};
use sbu_spec::linearize::{check, check_brute_force, check_windowed, CheckResult};
use sbu_spec::specs::{RegisterOp, RegisterResp, RegisterSpec};
use sbu_spec::{Pid, SequentialSpec};

/// Generate a structurally valid history: per processor, non-overlapping
/// intervals; responses chosen arbitrarily (often illegal — that's the
/// point: the checker must classify them correctly).
fn arb_history() -> impl Strategy<Value = History<RegisterOp, RegisterResp>> {
    // Per-processor op counts (≤ 3 procs × ≤ 2 ops keeps brute force fast).
    let per_proc = prop::collection::vec(0usize..3, 1..3);
    (per_proc, any::<u64>()).prop_flat_map(|(counts, _)| {
        let total: usize = counts.iter().sum::<usize>().max(1);
        let ops = prop::collection::vec(
            (
                0u64..4,         // write value / irrelevant for reads
                prop::bool::ANY, // is write?
                0u64..4,         // read result (maybe illegal)
                1u64..6,         // duration
                0u64..8,         // gap to next op of this proc
            ),
            total,
        );
        (Just(counts), ops).prop_map(|(counts, raw)| {
            let mut h = History::new();
            let mut ix = 0usize;
            for (pid, &k) in counts.iter().enumerate() {
                let mut t = (pid as u64) % 3; // staggered starts → overlap
                for _ in 0..k {
                    let (wv, is_write, rv, dur, gap) = raw[ix % raw.len()];
                    ix += 1;
                    let (op, resp) = if is_write {
                        (RegisterOp::Write(wv), RegisterResp::Ack)
                    } else {
                        (RegisterOp::Read, RegisterResp::Value(rv))
                    };
                    h.push(OpRecord::completed(Pid(pid), op, resp, t, t + dur));
                    t += dur + gap + 1;
                }
            }
            h
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Memoized checker ≡ brute force, on arbitrary histories.
    #[test]
    fn memoized_agrees_with_brute_force(h in arb_history()) {
        prop_assume!(h.len() <= 6);
        let fast = check(&h, RegisterSpec::new()).is_linearizable();
        let slow = check_brute_force(&h, RegisterSpec::new()).is_linearizable();
        prop_assert_eq!(fast, slow, "history: {:?}", h);
    }

    /// Any witness the checker returns replays to the observed responses
    /// and respects the real-time precedence order.
    #[test]
    fn witnesses_replay(h in arb_history()) {
        if let CheckResult::Linearizable { witness } = check(&h, RegisterSpec::new()) {
            // Replay.
            let mut state = RegisterSpec::new();
            for &i in &witness {
                let rec = &h.ops()[i];
                let resp = state.apply(&rec.op);
                if let Some(expected) = &rec.resp {
                    prop_assert_eq!(&resp, expected);
                }
            }
            // Real-time order: if a precedes b in H and both linearized,
            // a comes first in the witness.
            let pos: std::collections::HashMap<usize, usize> =
                witness.iter().enumerate().map(|(k, &i)| (i, k)).collect();
            for a in 0..h.len() {
                for b in 0..h.len() {
                    if a != b && h.precedes(a, b) {
                        if let (Some(&pa), Some(&pb)) = (pos.get(&a), pos.get(&b)) {
                            prop_assert!(pa < pb, "≺ violated: {} before {}", a, b);
                        }
                    }
                }
            }
            // All completed ops are in the witness.
            for (i, rec) in h.ops().iter().enumerate() {
                if rec.is_completed() {
                    prop_assert!(pos.contains_key(&i));
                }
            }
        }
    }

    /// Windowed checking agrees with the monolithic checker on every
    /// history small enough for both (acceptance criterion for the stress
    /// subsystem's online monitor).
    #[test]
    fn windowed_agrees_with_monolithic(h in arb_history()) {
        let full = check(&h, RegisterSpec::new()).is_linearizable();
        let windowed = check_windowed(&h, RegisterSpec::new())
            .expect("sub-MAX_OPS history must not overflow a window")
            .is_linearizable();
        prop_assert_eq!(windowed, full, "history: {:?}", h);
    }

    /// Same agreement with pending (crashed) operations in the history:
    /// balanced-extension handling must survive the windowed decomposition.
    #[test]
    fn windowed_agrees_with_monolithic_with_pending(
        h in arb_history(),
        pend_mask in 0usize..8,
    ) {
        // Abandon the last op of selected processors (keeps validate happy:
        // a pending op must be its processor's final record).
        let mut recs: Vec<OpRecord<RegisterOp, RegisterResp>> = h.iter().cloned().collect();
        for pid in 0..3usize {
            if pend_mask & (1 << pid) == 0 {
                continue;
            }
            if let Some(last) = recs.iter().rposition(|r| r.pid == Pid(pid)) {
                recs[last].resp = None;
                recs[last].ret = None;
            }
        }
        let h: History<RegisterOp, RegisterResp> = recs.into_iter().collect();
        prop_assume!(h.validate().is_ok());
        let full = check(&h, RegisterSpec::new()).is_linearizable();
        let windowed = check_windowed(&h, RegisterSpec::new())
            .expect("sub-MAX_OPS history must not overflow a window")
            .is_linearizable();
        prop_assert_eq!(windowed, full, "history: {:?}", h);
    }

    /// Legal sequential histories always linearize (soundness floor).
    #[test]
    fn sequential_legal_histories_pass(
        writes in prop::collection::vec(0u64..10, 1..6)
    ) {
        let mut h = History::new();
        let mut state = RegisterSpec::new();
        let mut t = 0u64;
        for (i, &v) in writes.iter().enumerate() {
            let op = if i % 2 == 0 { RegisterOp::Write(v) } else { RegisterOp::Read };
            let resp = state.apply(&op);
            h.push(OpRecord::completed(Pid(i % 2), op, resp, t, t + 1));
            t += 2;
        }
        prop_assert!(check(&h, RegisterSpec::new()).is_linearizable());
    }
}
