//! Property tests on the sequential specifications: determinism (the
//! universal construction's replay depends on it), structural inverses,
//! and conservation invariants.

use proptest::prelude::*;
use sbu_spec::specs::{
    BankOp, BankResp, BankSpec, CounterOp, CounterSpec, KvOp, KvSpec, QueueOp, QueueResp,
    QueueSpec, StackOp, StackResp, StackSpec,
};
use sbu_spec::SequentialSpec;

fn arb_queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..100).prop_map(QueueOp::Enqueue),
            Just(QueueOp::Dequeue),
            Just(QueueOp::Len),
        ],
        0..40,
    )
}

fn arb_bank_ops(accounts: usize) -> impl Strategy<Value = Vec<BankOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..accounts, 0u64..50).prop_map(|(a, amt)| BankOp::Deposit {
                account: a,
                amount: amt
            }),
            (0..accounts, 0u64..50).prop_map(|(a, amt)| BankOp::Withdraw {
                account: a,
                amount: amt
            }),
            (0..accounts, 0..accounts, 0u64..50).prop_map(|(f, t, amt)| BankOp::Transfer {
                from: f,
                to: t,
                amount: amt
            }),
            (0..accounts).prop_map(BankOp::Balance),
        ],
        0..40,
    )
}

proptest! {
    /// Determinism: two clones fed the same commands produce identical
    /// responses and end in identical states. The universal construction's
    /// state recomputation (Section 5 step 4) silently assumes this.
    #[test]
    fn queue_is_deterministic(ops in arb_queue_ops()) {
        let mut a = QueueSpec::new();
        let mut b = QueueSpec::new();
        for op in &ops {
            prop_assert_eq!(a.apply(op), b.apply(op));
        }
        prop_assert_eq!(a, b);
    }

    /// Enqueue count − successful dequeue count = final length.
    #[test]
    fn queue_conserves_elements(ops in arb_queue_ops()) {
        let mut q = QueueSpec::new();
        let mut enq = 0i64;
        let mut deq = 0i64;
        for op in &ops {
            match (op, q.apply(op)) {
                (QueueOp::Enqueue(_), QueueResp::Ack) => enq += 1,
                (QueueOp::Dequeue, QueueResp::Value(_)) => deq += 1,
                _ => {}
            }
        }
        prop_assert_eq!(enq - deq, q.len() as i64);
    }

    /// FIFO: a drain after arbitrary operations yields values in exactly
    /// the un-dequeued enqueue order.
    #[test]
    fn queue_drains_in_fifo_order(ops in arb_queue_ops()) {
        let mut q = QueueSpec::new();
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for op in &ops {
            match op {
                QueueOp::Enqueue(v) => { q.apply(op); model.push_back(*v); }
                QueueOp::Dequeue => {
                    let expect = model.pop_front();
                    let got = match q.apply(op) {
                        QueueResp::Value(v) => Some(v),
                        QueueResp::Empty => None,
                        r => return Err(TestCaseError::fail(format!("{r:?}"))),
                    };
                    prop_assert_eq!(got, expect);
                }
                QueueOp::Len => { q.apply(op); }
            }
        }
    }

    /// Push-then-pop is identity on the stack.
    #[test]
    fn stack_push_pop_roundtrip(base in prop::collection::vec(0u64..50, 0..20), v in 0u64..50) {
        let mut s = StackSpec::new();
        for b in &base {
            s.apply(&StackOp::Push(*b));
        }
        let snapshot = s.clone();
        s.apply(&StackOp::Push(v));
        prop_assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(v));
        prop_assert_eq!(s, snapshot);
    }

    /// Bank: deposits minus successful withdrawals equals total delta;
    /// transfers never create or destroy money.
    #[test]
    fn bank_conserves_money(ops in arb_bank_ops(3)) {
        let initial = 100u64;
        let mut bank = BankSpec::new(3, initial);
        let mut delta: i128 = 0;
        for op in &ops {
            let resp = bank.apply(op);
            match (op, resp) {
                (BankOp::Deposit { amount, .. }, BankResp::Ok) => delta += *amount as i128,
                (BankOp::Withdraw { amount, .. }, BankResp::Ok) => delta -= *amount as i128,
                _ => {}
            }
        }
        prop_assert_eq!(bank.total() as i128, 3 * initial as i128 + delta);
    }

    /// Counter: value after a batch equals the sum of its increments.
    #[test]
    fn counter_sums(incs in prop::collection::vec(0u64..1000, 0..30)) {
        let mut c = CounterSpec::new();
        let mut sum = 0u64;
        for &k in &incs {
            sum = sum.wrapping_add(k);
            prop_assert_eq!(c.apply(&CounterOp::Add(k)), sum);
        }
        prop_assert_eq!(c.apply(&CounterOp::Read), sum);
    }

    /// KV model equivalence against std BTreeMap.
    #[test]
    fn kv_matches_btreemap(
        ops in prop::collection::vec((0u64..5, 0u64..100, 0u8..3), 0..40)
    ) {
        let mut kv = KvSpec::new();
        let mut model = std::collections::BTreeMap::new();
        for &(k, v, kind) in &ops {
            match kind {
                0 => {
                    let got = kv.apply(&KvOp::Put(k, v));
                    let expect = model.insert(k, v);
                    prop_assert_eq!(got, sbu_spec::specs::KvResp::Value(expect));
                }
                1 => {
                    let got = kv.apply(&KvOp::Get(k));
                    prop_assert_eq!(got, sbu_spec::specs::KvResp::Value(model.get(&k).copied()));
                }
                _ => {
                    let got = kv.apply(&KvOp::Remove(k));
                    prop_assert_eq!(got, sbu_spec::specs::KvResp::Value(model.remove(&k)));
                }
            }
        }
        prop_assert_eq!(kv.len(), model.len());
    }
}
