//! The Section 2 port-automata formalism, made executable.
//!
//! The paper models processors and data objects as port automata whose
//! executions are *schedules*: sequences of command and response actions on
//! ports. This module implements the schedule-level predicates the paper
//! uses — *well-formed* (per port, alternating command/response starting
//! with a command), *sequential* (every command is immediately followed by
//! its response on the same port), *balanced* (no port has a command
//! outstanding) — together with the precedence order `≺_H` on operations and
//! the "S is a linearization of H" check of Definition 3.1.
//!
//! The simulator records object-level schedules in this form; conversion to
//! a [`History`](crate::history::History) bridges to the linearizability
//! checker.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an external port. In the canonical decomposition of
/// Section 2 there is one external slave port per front-end processor, so
/// ports are numbered like processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{}", self.0)
    }
}

/// Whether an action is a command (sent from a master port) or a response
/// (sent from a slave port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// A command: invocation of an operation.
    Command,
    /// A response: completion of an operation.
    Response,
}

/// One action in a schedule: a value crossing a port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Action<V> {
    /// The port the action occurs on.
    pub port: PortId,
    /// Command or response.
    pub kind: ActionKind,
    /// The message payload (an operation or a response value).
    pub value: V,
}

impl<V> Action<V> {
    /// A command action.
    pub fn command(port: PortId, value: V) -> Self {
        Self {
            port,
            kind: ActionKind::Command,
            value,
        }
    }

    /// A response action.
    pub fn response(port: PortId, value: V) -> Self {
        Self {
            port,
            kind: ActionKind::Response,
            value,
        }
    }
}

/// An *operation* extracted from a schedule: a command action paired with its
/// matching response action (by index), or pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleOp {
    /// The port the operation runs on.
    pub port: PortId,
    /// Index of the command action in the schedule.
    pub command_index: usize,
    /// Index of the matching response action, if it occurred.
    pub response_index: Option<usize>,
}

impl ScheduleOp {
    /// The `≺_H` relation of Definition 3.1: both the command and the
    /// response of `self` appear before the command of `other`.
    pub fn precedes(&self, other: &ScheduleOp) -> bool {
        match self.response_index {
            Some(r) => r < other.command_index,
            None => false,
        }
    }
}

/// A schedule: a sequence of external actions of one object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule<V> {
    actions: Vec<Action<V>>,
}

impl<V> Schedule<V> {
    /// An empty schedule.
    pub fn new() -> Self {
        Self {
            actions: Vec::new(),
        }
    }

    /// Append an action.
    pub fn push(&mut self, action: Action<V>) {
        self.actions.push(action);
    }

    /// The actions in order.
    pub fn actions(&self) -> &[Action<V>] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Restriction `H|π`: the subsequence of actions on one port.
    pub fn restrict_to_port(&self, port: PortId) -> Schedule<V>
    where
        V: Clone,
    {
        Schedule {
            actions: self
                .actions
                .iter()
                .filter(|a| a.port == port)
                .cloned()
                .collect(),
        }
    }

    /// Well-formedness (Section 2): restricted to any port, the schedule
    /// starts with a command and alternates commands and responses.
    pub fn is_well_formed(&self) -> bool {
        let mut outstanding: BTreeMap<PortId, bool> = BTreeMap::new();
        for action in &self.actions {
            let pending = outstanding.entry(action.port).or_insert(false);
            match action.kind {
                ActionKind::Command => {
                    if *pending {
                        return false;
                    }
                    *pending = true;
                }
                ActionKind::Response => {
                    if !*pending {
                        return false;
                    }
                    *pending = false;
                }
            }
        }
        true
    }

    /// Sequential (Section 3): every command is immediately followed by the
    /// corresponding response on the same port.
    pub fn is_sequential(&self) -> bool {
        if !self.actions.len().is_multiple_of(2) {
            return false;
        }
        self.actions.chunks(2).all(|pair| {
            pair[0].kind == ActionKind::Command
                && pair[1].kind == ActionKind::Response
                && pair[0].port == pair[1].port
        })
    }

    /// Balanced (Section 2): well-formed with no outstanding command on any
    /// port (every slave port is again input-enabled).
    pub fn is_balanced(&self) -> bool {
        if !self.is_well_formed() {
            return false;
        }
        let mut outstanding: BTreeMap<PortId, i64> = BTreeMap::new();
        for action in &self.actions {
            let d = match action.kind {
                ActionKind::Command => 1,
                ActionKind::Response => -1,
            };
            *outstanding.entry(action.port).or_insert(0) += d;
        }
        outstanding.values().all(|&v| v == 0)
    }

    /// Extract the operations (command/response pairs) of a well-formed
    /// schedule, in command order.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not well-formed.
    pub fn operations(&self) -> Vec<ScheduleOp> {
        assert!(
            self.is_well_formed(),
            "operations() requires well-formedness"
        );
        let mut open: BTreeMap<PortId, usize> = BTreeMap::new();
        let mut ops: Vec<ScheduleOp> = Vec::new();
        for (i, action) in self.actions.iter().enumerate() {
            match action.kind {
                ActionKind::Command => {
                    open.insert(action.port, ops.len());
                    ops.push(ScheduleOp {
                        port: action.port,
                        command_index: i,
                        response_index: None,
                    });
                }
                ActionKind::Response => {
                    let ix = open.remove(&action.port).expect("well-formed");
                    ops[ix].response_index = Some(i);
                }
            }
        }
        ops
    }
}

impl<V> FromIterator<Action<V>> for Schedule<V> {
    fn from_iter<I: IntoIterator<Item = Action<V>>>(iter: I) -> Self {
        Self {
            actions: iter.into_iter().collect(),
        }
    }
}

/// Definition 3.1 structural check: is `s` a linearization of `h`?
///
/// Requires: `s` sequential, consisting of the same multiset of actions as a
/// balanced extension of `h` (here: exactly `h`'s completed operations — the
/// caller supplies the extension), and `≺_h ⊆ ≺_s`. Operations are matched
/// by port and payload equality.
pub fn is_linearization_of<V: PartialEq + Clone>(s: &Schedule<V>, h: &Schedule<V>) -> bool {
    if !s.is_sequential() || !h.is_well_formed() || !h.is_balanced() {
        return false;
    }
    let h_ops = h.operations();
    let s_ops = s.operations();
    if h_ops.len() != s_ops.len() {
        return false;
    }
    // Match each h-op to a distinct s-op with identical port and payloads.
    let mut used = vec![false; s_ops.len()];
    let mut assignment = vec![usize::MAX; h_ops.len()];
    fn matches<V: PartialEq>(
        h: &Schedule<V>,
        s: &Schedule<V>,
        ho: &ScheduleOp,
        so: &ScheduleOp,
    ) -> bool {
        if ho.port != so.port {
            return false;
        }
        let hc = &h.actions()[ho.command_index].value;
        let sc = &s.actions()[so.command_index].value;
        if hc != sc {
            return false;
        }
        match (ho.response_index, so.response_index) {
            (Some(hr), Some(sr)) => h.actions()[hr].value == s.actions()[sr].value,
            _ => false,
        }
    }
    // Backtracking bipartite match that also enforces order preservation.
    fn assign<V: PartialEq + Clone>(
        i: usize,
        h: &Schedule<V>,
        s: &Schedule<V>,
        h_ops: &[ScheduleOp],
        s_ops: &[ScheduleOp],
        used: &mut [bool],
        assignment: &mut [usize],
    ) -> bool {
        if i == h_ops.len() {
            // Check ≺_h ⊆ ≺_s under the assignment.
            for a in 0..h_ops.len() {
                for b in 0..h_ops.len() {
                    if a != b && h_ops[a].precedes(&h_ops[b]) {
                        let (sa, sb) = (assignment[a], assignment[b]);
                        if !s_ops[sa].precedes(&s_ops[sb]) {
                            return false;
                        }
                    }
                }
            }
            return true;
        }
        for j in 0..s_ops.len() {
            if !used[j] && matches(h, s, &h_ops[i], &s_ops[j]) {
                used[j] = true;
                assignment[i] = j;
                if assign(i + 1, h, s, h_ops, s_ops, used, assignment) {
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(0, h, s, &h_ops, &s_ops, &mut used, &mut assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(p: usize, v: &'static str) -> Action<&'static str> {
        Action::command(PortId(p), v)
    }
    fn rsp(p: usize, v: &'static str) -> Action<&'static str> {
        Action::response(PortId(p), v)
    }

    #[test]
    fn well_formed_alternation() {
        let h: Schedule<_> = [cmd(0, "w1"), cmd(1, "r"), rsp(0, "ok"), rsp(1, "1")]
            .into_iter()
            .collect();
        assert!(h.is_well_formed());
        assert!(h.is_balanced());
        assert!(!h.is_sequential());
    }

    #[test]
    fn response_without_command_is_ill_formed() {
        let h: Schedule<_> = [rsp(0, "ok")].into_iter().collect();
        assert!(!h.is_well_formed());
    }

    #[test]
    fn double_command_is_ill_formed() {
        let h: Schedule<_> = [cmd(0, "a"), cmd(0, "b")].into_iter().collect();
        assert!(!h.is_well_formed());
    }

    #[test]
    fn sequential_implies_well_formed_and_balanced_here() {
        let s: Schedule<_> = [cmd(0, "w1"), rsp(0, "ok"), cmd(1, "r"), rsp(1, "1")]
            .into_iter()
            .collect();
        assert!(s.is_sequential());
        assert!(s.is_well_formed());
        assert!(s.is_balanced());
    }

    #[test]
    fn unbalanced_pending_command() {
        let h: Schedule<_> = [cmd(0, "w1")].into_iter().collect();
        assert!(h.is_well_formed());
        assert!(!h.is_balanced());
    }

    #[test]
    fn operations_pair_commands_with_responses() {
        let h: Schedule<_> = [cmd(0, "a"), cmd(1, "b"), rsp(1, "rb"), rsp(0, "ra")]
            .into_iter()
            .collect();
        let ops = h.operations();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].port, PortId(0));
        assert_eq!(ops[0].response_index, Some(3));
        assert_eq!(ops[1].response_index, Some(2));
        // Overlapping: neither precedes the other.
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn restriction_keeps_only_one_port() {
        let h: Schedule<_> = [cmd(0, "a"), cmd(1, "b"), rsp(0, "ra"), rsp(1, "rb")]
            .into_iter()
            .collect();
        let h0 = h.restrict_to_port(PortId(0));
        assert_eq!(h0.len(), 2);
        assert!(h0.is_sequential());
    }

    #[test]
    fn linearization_accepts_reordering_of_concurrent_ops() {
        // h: ops on ports 0 and 1 fully overlap.
        let h: Schedule<_> = [cmd(0, "a"), cmd(1, "b"), rsp(1, "rb"), rsp(0, "ra")]
            .into_iter()
            .collect();
        let s1: Schedule<_> = [cmd(0, "a"), rsp(0, "ra"), cmd(1, "b"), rsp(1, "rb")]
            .into_iter()
            .collect();
        let s2: Schedule<_> = [cmd(1, "b"), rsp(1, "rb"), cmd(0, "a"), rsp(0, "ra")]
            .into_iter()
            .collect();
        assert!(is_linearization_of(&s1, &h));
        assert!(is_linearization_of(&s2, &h));
    }

    #[test]
    fn linearization_rejects_real_time_inversion() {
        // Port 0's op completes strictly before port 1's op begins.
        let h: Schedule<_> = [cmd(0, "a"), rsp(0, "ra"), cmd(1, "b"), rsp(1, "rb")]
            .into_iter()
            .collect();
        let s_bad: Schedule<_> = [cmd(1, "b"), rsp(1, "rb"), cmd(0, "a"), rsp(0, "ra")]
            .into_iter()
            .collect();
        assert!(!is_linearization_of(&s_bad, &h));
    }

    #[test]
    fn linearization_rejects_different_payloads() {
        let h: Schedule<_> = [cmd(0, "a"), rsp(0, "ra")].into_iter().collect();
        let s: Schedule<_> = [cmd(0, "a"), rsp(0, "DIFFERENT")].into_iter().collect();
        assert!(!is_linearization_of(&s, &h));
    }
}

/// Convert a [`History`](crate::history::History) into a schedule whose
/// actions carry `(op, Option<resp>)` payloads, ordering events by their
/// logical timestamps. Each processor becomes one port (the canonical
/// decomposition of Section 2).
///
/// Pending operations contribute a command with no matching response, so
/// the result of a crashed run is well-formed but unbalanced — exactly the
/// situation Definition 3.1's "balanced extension" addresses.
pub fn history_to_schedule<O: Clone, R: Clone>(
    history: &crate::history::History<O, R>,
) -> Schedule<(O, Option<R>)> {
    type Event<O, R> = (u64, Action<(O, Option<R>)>);
    let mut events: Vec<Event<O, R>> = Vec::new();
    for rec in history.iter() {
        events.push((
            rec.invoke,
            Action::command(PortId(rec.pid.0), (rec.op.clone(), None)),
        ));
        if let (Some(ret), Some(resp)) = (rec.ret, rec.resp.clone()) {
            events.push((
                ret,
                Action::response(PortId(rec.pid.0), (rec.op.clone(), Some(resp))),
            ));
        }
    }
    events.sort_by_key(|(t, _)| *t);
    events.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod bridge_tests {
    use super::*;
    use crate::history::{History, OpRecord};
    use crate::Pid;

    #[test]
    fn histories_become_well_formed_schedules() {
        let h: History<&str, u32> = [
            OpRecord::completed(Pid(0), "a", 1, 0, 3),
            OpRecord::completed(Pid(1), "b", 2, 1, 2),
            OpRecord::completed(Pid(0), "c", 3, 5, 6),
        ]
        .into_iter()
        .collect();
        let s = history_to_schedule(&h);
        assert!(s.is_well_formed());
        assert!(s.is_balanced());
        assert_eq!(s.operations().len(), 3);
        // The overlapping pair is incomparable; the later op is preceded
        // by both.
        let ops = s.operations();
        assert!(!ops[0].precedes(&ops[1]) && !ops[1].precedes(&ops[0]));
        assert!(ops[0].precedes(&ops[2]) && ops[1].precedes(&ops[2]));
    }

    #[test]
    fn pending_ops_make_unbalanced_schedules() {
        let h: History<&str, u32> = [
            OpRecord::completed(Pid(0), "a", 1, 0, 1),
            OpRecord::pending(Pid(1), "b", 2),
        ]
        .into_iter()
        .collect();
        let s = history_to_schedule(&h);
        assert!(s.is_well_formed());
        assert!(!s.is_balanced());
        assert_eq!(s.operations()[1].response_index, None);
    }
}
