//! Concurrent operation histories and the real-time precedence order `≺_H`.
//!
//! A *history* is the restriction of a schedule (Section 2) to the external
//! ports of one object: a set of operations, each an invocation possibly
//! followed by a response. Operations carry logical timestamps (the step
//! indices assigned by the simulator's conductor), which induce the partial
//! order of Definition 3.1: `o ≺_H o'` iff `o`'s response occurs before
//! `o'`'s invocation.

use crate::Pid;
use std::fmt;

/// One operation in a history: a command and, unless the processor crashed
/// mid-operation, its response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpRecord<O, R> {
    /// The invoking processor.
    pub pid: Pid,
    /// The command.
    pub op: O,
    /// The response, or `None` if the operation is *pending* (the processor
    /// crashed or the run was truncated before it returned).
    pub resp: Option<R>,
    /// Logical time of the invocation event.
    pub invoke: u64,
    /// Logical time of the response event (`None` for pending operations).
    pub ret: Option<u64>,
}

impl<O, R> OpRecord<O, R> {
    /// A completed operation with both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `ret < invoke`.
    pub fn completed(pid: Pid, op: O, resp: R, invoke: u64, ret: u64) -> Self {
        assert!(ret >= invoke, "response cannot precede invocation");
        Self {
            pid,
            op,
            resp: Some(resp),
            invoke,
            ret: Some(ret),
        }
    }

    /// A pending operation: invoked, never returned.
    pub fn pending(pid: Pid, op: O, invoke: u64) -> Self {
        Self {
            pid,
            op,
            resp: None,
            invoke,
            ret: None,
        }
    }

    /// Whether the operation has a response.
    pub fn is_completed(&self) -> bool {
        self.resp.is_some()
    }

    /// The `≺_H` relation: this operation returned before `other` was
    /// invoked. Pending operations precede nothing.
    pub fn precedes(&self, other: &Self) -> bool {
        match self.ret {
            Some(r) => r < other.invoke,
            None => false,
        }
    }
}

/// A concurrent history of one object.
///
/// Maintains no ordering invariants on insertion; call [`History::validate`]
/// to check per-processor well-formedness (Section 2: the restriction of a
/// schedule to one port alternates command/response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History<O, R> {
    ops: Vec<OpRecord<O, R>>,
}

impl<O, R> Default for History<O, R> {
    fn default() -> Self {
        Self { ops: Vec::new() }
    }
}

impl<O, R> History<O, R> {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operation record.
    pub fn push(&mut self, op: OpRecord<O, R>) {
        self.ops.push(op);
    }

    /// All records, in insertion order.
    pub fn ops(&self) -> &[OpRecord<O, R>] {
        &self.ops
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history has no records.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over records.
    pub fn iter(&self) -> std::slice::Iter<'_, OpRecord<O, R>> {
        self.ops.iter()
    }

    /// Number of completed operations.
    pub fn completed_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_completed()).count()
    }

    /// Number of pending operations.
    pub fn pending_count(&self) -> usize {
        self.len() - self.completed_count()
    }

    /// `≺_H` between records `i` and `j` (by index).
    pub fn precedes(&self, i: usize, j: usize) -> bool {
        self.ops[i].precedes(&self.ops[j])
    }

    /// Check structural sanity: every completed op has `invoke ≤ ret`, and
    /// per processor the operation intervals are disjoint and at most one
    /// operation is pending (a sequential thread runs one procedure at a
    /// time, Section 2).
    pub fn validate(&self) -> Result<(), HistoryError> {
        let mut per_pid: std::collections::BTreeMap<Pid, Vec<&OpRecord<O, R>>> =
            std::collections::BTreeMap::new();
        for rec in &self.ops {
            if let Some(ret) = rec.ret {
                if ret < rec.invoke {
                    return Err(HistoryError::ResponseBeforeInvoke { pid: rec.pid });
                }
            }
            per_pid.entry(rec.pid).or_default().push(rec);
        }
        for (pid, mut recs) in per_pid {
            recs.sort_by_key(|r| r.invoke);
            for pair in recs.windows(2) {
                match pair[0].ret {
                    None => return Err(HistoryError::OverlapWithinProcessor { pid }),
                    Some(ret) if ret >= pair[1].invoke => {
                        return Err(HistoryError::OverlapWithinProcessor { pid })
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }
}

impl<O, R> FromIterator<OpRecord<O, R>> for History<O, R> {
    fn from_iter<I: IntoIterator<Item = OpRecord<O, R>>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Structural defects detected by [`History::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryError {
    /// An operation's response timestamp precedes its invocation.
    ResponseBeforeInvoke {
        /// The offending processor.
        pid: Pid,
    },
    /// Two operations of the same processor overlap (a sequential thread
    /// cannot have two procedures in flight).
    OverlapWithinProcessor {
        /// The offending processor.
        pid: Pid,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::ResponseBeforeInvoke { pid } => {
                write!(f, "{pid}: response timestamp precedes invocation")
            }
            HistoryError::OverlapWithinProcessor { pid } => {
                write!(f, "{pid}: overlapping operations within one processor")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    type Rec = OpRecord<&'static str, u32>;

    #[test]
    fn precedence_is_real_time() {
        let a: Rec = OpRecord::completed(Pid(0), "a", 0, 0, 5);
        let b: Rec = OpRecord::completed(Pid(1), "b", 0, 6, 8);
        let c: Rec = OpRecord::completed(Pid(2), "c", 0, 3, 7);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!a.precedes(&c)); // overlap: incomparable
        assert!(!c.precedes(&a));
    }

    #[test]
    fn pending_ops_precede_nothing() {
        let a: Rec = OpRecord::pending(Pid(0), "a", 0);
        let b: Rec = OpRecord::completed(Pid(1), "b", 0, 100, 101);
        assert!(!a.precedes(&b));
        assert!(!a.is_completed());
    }

    #[test]
    fn validate_accepts_sequential_thread() {
        let h: History<&str, u32> = [
            OpRecord::completed(Pid(0), "a", 0, 0, 1),
            OpRecord::completed(Pid(0), "b", 0, 2, 3),
            OpRecord::pending(Pid(0), "c", 4),
        ]
        .into_iter()
        .collect();
        assert!(h.validate().is_ok());
        assert_eq!(h.completed_count(), 2);
        assert_eq!(h.pending_count(), 1);
    }

    #[test]
    fn validate_rejects_overlap_within_processor() {
        let h: History<&str, u32> = [
            OpRecord::completed(Pid(0), "a", 0, 0, 5),
            OpRecord::completed(Pid(0), "b", 0, 3, 8),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            h.validate(),
            Err(HistoryError::OverlapWithinProcessor { pid: Pid(0) })
        );
    }

    #[test]
    fn validate_rejects_pending_followed_by_more_ops() {
        let h: History<&str, u32> = [
            OpRecord::pending(Pid(0), "a", 0),
            OpRecord::completed(Pid(0), "b", 0, 3, 8),
        ]
        .into_iter()
        .collect();
        assert!(h.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "response cannot precede invocation")]
    fn completed_ctor_rejects_inverted_interval() {
        let _: Rec = OpRecord::completed(Pid(0), "a", 0, 5, 3);
    }

    #[test]
    fn precedes_by_index() {
        let h: History<&str, u32> = [
            OpRecord::completed(Pid(0), "a", 0, 0, 1),
            OpRecord::completed(Pid(1), "b", 0, 2, 3),
        ]
        .into_iter()
        .collect();
        assert!(h.precedes(0, 1));
        assert!(!h.precedes(1, 0));
    }
}
