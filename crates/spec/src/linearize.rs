//! Linearizability (the paper's **atomicity**, Definition 3.1) checking.
//!
//! Given a concurrent [`History`] and a [`SequentialSpec`], decide whether
//! there is a sequential schedule `S` with the same operations such that
//! `≺_H ⊆ ≺_S` and `S` is legal for the specification. Pending operations
//! (crashed processors) may either take effect — with whatever response the
//! specification yields — or be dropped, per the "balanced extension" in
//! Definition 3.1.
//!
//! The main entry point [`check`] implements the Wing–Gong search with
//! memoization on `(linearized-set, state)`; [`check_brute_force`] enumerates
//! permutations directly and serves as the oracle in property tests.
//!
//! For histories longer than [`MAX_OPS`] use [`check_windowed`]: it splits
//! the history at *quiescent cuts* — instants where every operation has
//! either returned or not yet been invoked — and threads the set of feasible
//! specification states across the windows, so arbitrarily long histories
//! can be checked as long as no single contention burst exceeds [`MAX_OPS`]
//! overlapping operations. The fallible entry points ([`try_check`],
//! [`check_windowed`], [`linearization_states`]) report size and structure
//! problems as a typed [`CheckError`] instead of panicking.
//!
//! [`check_durable`] layers the crash–restart model on top: crash
//! timestamps split the history into eras, operations completed before a
//! crash must linearize before it, and in-flight operations may take effect
//! within their era or vanish — never resurrect later.

use crate::history::{History, HistoryError};
use crate::{Pid, SequentialSpec};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Maximum number of operations [`check`] accepts (the linearized-set is a
/// `u128` bitmask). Longer histories must go through [`check_windowed`],
/// which applies the same bound per quiescent window; [`try_check`] reports
/// the overflow as [`CheckError::TooManyOps`] rather than panicking.
pub const MAX_OPS: usize = 128;

/// Error from the fallible checker entry points ([`try_check`],
/// [`check_windowed`], [`linearization_states`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The history — or, for [`check_windowed`], a single quiescent window —
    /// holds more operations than the `u128`-bitmask search can represent.
    TooManyOps {
        /// Number of operations in the offending history or window.
        ops: usize,
    },
    /// The history fails [`History::validate`].
    Invalid(HistoryError),
    /// A completed operation spans a crash timestamp ([`check_durable`]).
    /// Impossible under the crash–restart model: a crash kills every
    /// in-flight operation, so nothing invoked before a crash can return
    /// after it. Almost always a sign the caller passed wrong crash times.
    SpansCrash {
        /// The processor whose operation straddles the crash.
        pid: Pid,
        /// Invocation timestamp (before the crash).
        invoke: u64,
        /// Response timestamp (after the crash).
        ret: u64,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::TooManyOps { ops } => {
                write!(f, "history window of {ops} ops exceeds MAX_OPS = {MAX_OPS}")
            }
            CheckError::Invalid(e) => write!(f, "structurally invalid history: {e:?}"),
            CheckError::SpansCrash { pid, invoke, ret } => write!(
                f,
                "operation by {pid} invoked at {invoke} returned at {ret}, \
                 across a crash — completed ops cannot straddle a crash"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Result of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// A witness order exists: indices into the history's records, in
    /// linearization order. Pending operations absent from the witness were
    /// dropped (they never took effect).
    Linearizable {
        /// Linearization order (indices into `History::ops`).
        witness: Vec<usize>,
    },
    /// No linearization exists.
    NotLinearizable,
}

impl CheckResult {
    /// Whether the history is linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, CheckResult::Linearizable { .. })
    }

    /// The witness order, if linearizable.
    pub fn witness(&self) -> Option<&[usize]> {
        match self {
            CheckResult::Linearizable { witness } => Some(witness),
            CheckResult::NotLinearizable => None,
        }
    }
}

/// Check linearizability of `history` against the specification starting in
/// state `init`.
///
/// # Panics
///
/// Panics if the history has more than [`MAX_OPS`] operations or fails
/// [`History::validate`]. Call sites that record histories through the
/// simulator always satisfy both; use [`try_check`] to get a typed
/// [`CheckError`] instead.
pub fn check<S>(history: &History<S::Op, S::Resp>, init: S) -> CheckResult
where
    S: SequentialSpec + Hash + Eq,
{
    match try_check(history, init) {
        Ok(r) => r,
        Err(CheckError::TooManyOps { ops }) => {
            panic!("history of {ops} ops exceeds MAX_OPS = {MAX_OPS}")
        }
        Err(e) => {
            panic!("structurally invalid history passed to linearizability checker: {e}")
        }
    }
}

/// Fallible variant of [`check`]: returns [`CheckError`] for oversized or
/// structurally invalid histories instead of panicking.
pub fn try_check<S>(history: &History<S::Op, S::Resp>, init: S) -> Result<CheckResult, CheckError>
where
    S: SequentialSpec + Hash + Eq,
{
    if history.len() > MAX_OPS {
        return Err(CheckError::TooManyOps { ops: history.len() });
    }
    history.validate().map_err(CheckError::Invalid)?;

    let n = history.len();
    let completed_mask: u128 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_completed())
        .fold(0u128, |m, (i, _)| m | (1u128 << i));

    // precede[i] = bitmask of ops that must be linearized before op i may be.
    let precede: Vec<u128> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && history.precedes(j, i))
                .fold(0u128, |m, j| m | (1u128 << j))
        })
        .collect();

    let mut memo: HashSet<(u128, S)> = HashSet::new();
    let mut witness = Vec::with_capacity(n);

    fn dfs<S>(
        history: &History<S::Op, S::Resp>,
        completed_mask: u128,
        precede: &[u128],
        memo: &mut HashSet<(u128, S)>,
        witness: &mut Vec<usize>,
        mask: u128,
        state: &S,
    ) -> bool
    where
        S: SequentialSpec + Hash + Eq,
    {
        if mask & completed_mask == completed_mask {
            return true;
        }
        if !memo.insert((mask, state.clone())) {
            return false;
        }
        for i in 0..history.len() {
            let bit = 1u128 << i;
            if mask & bit != 0 || precede[i] & !mask != 0 {
                continue;
            }
            let rec = &history.ops()[i];
            let mut next = state.clone();
            let resp = next.apply(&rec.op);
            // Completed ops must reproduce their observed response; pending
            // ops may take effect with any response.
            if let Some(expected) = &rec.resp {
                if resp != *expected {
                    continue;
                }
            }
            witness.push(i);
            if dfs(
                history,
                completed_mask,
                precede,
                memo,
                witness,
                mask | bit,
                &next,
            ) {
                return true;
            }
            witness.pop();
        }
        false
    }

    if dfs(
        history,
        completed_mask,
        &precede,
        &mut memo,
        &mut witness,
        0,
        &init,
    ) {
        Ok(CheckResult::Linearizable { witness })
    } else {
        Ok(CheckResult::NotLinearizable)
    }
}

/// Bitmask of ops that must linearize before op `i` (real-time order).
fn precede_masks<O, R>(history: &History<O, R>) -> Vec<u128> {
    let n = history.len();
    (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && history.precedes(j, i))
                .fold(0u128, |m, j| m | (1u128 << j))
        })
        .collect()
}

/// Enumerate **every** specification state reachable by a legal
/// linearization of `history` starting from `init`, with one witness order
/// per distinct final state.
///
/// This is the building block for [`check_windowed`] and for online
/// monitors: after a quiescent cut, the set of feasible states — not a
/// single greedy witness — must be threaded into the next window, because
/// two witnesses of the same window can leave the object in different
/// states (e.g. two concurrent writes ordered either way).
///
/// Pending operations contribute both ways: a state is recorded for every
/// subset of pending ops that takes effect (including none), per the
/// balanced extension of Definition 3.1. The returned list is empty iff the
/// history is not linearizable from `init`.
pub fn linearization_states<S>(
    history: &History<S::Op, S::Resp>,
    init: S,
) -> Result<Vec<(S, Vec<usize>)>, CheckError>
where
    S: SequentialSpec + Hash + Eq,
{
    if history.len() > MAX_OPS {
        return Err(CheckError::TooManyOps { ops: history.len() });
    }
    history.validate().map_err(CheckError::Invalid)?;
    let precede = precede_masks(history);
    Ok(enumerate_states(history, &precede, init))
}

/// Core all-states DFS; assumes the history is validated and ≤ [`MAX_OPS`].
fn enumerate_states<S>(
    history: &History<S::Op, S::Resp>,
    precede: &[u128],
    init: S,
) -> Vec<(S, Vec<usize>)>
where
    S: SequentialSpec + Hash + Eq,
{
    let completed_mask: u128 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_completed())
        .fold(0u128, |m, (i, _)| m | (1u128 << i));

    #[allow(clippy::too_many_arguments)]
    fn dfs<S>(
        history: &History<S::Op, S::Resp>,
        completed_mask: u128,
        precede: &[u128],
        memo: &mut HashSet<(u128, S)>,
        witness: &mut Vec<usize>,
        mask: u128,
        state: &S,
        out: &mut HashMap<S, Vec<usize>>,
    ) where
        S: SequentialSpec + Hash + Eq,
    {
        if !memo.insert((mask, state.clone())) {
            return;
        }
        if mask & completed_mask == completed_mask {
            // Terminal: every completed op is in. Remaining pending ops may
            // still take effect (explored below), or stay dropped (record
            // the state as-is now).
            out.entry(state.clone()).or_insert_with(|| witness.clone());
        }
        for i in 0..history.len() {
            let bit = 1u128 << i;
            if mask & bit != 0 || precede[i] & !mask != 0 {
                continue;
            }
            let rec = &history.ops()[i];
            let mut next = state.clone();
            let resp = next.apply(&rec.op);
            if let Some(expected) = &rec.resp {
                if resp != *expected {
                    continue;
                }
            }
            witness.push(i);
            dfs(
                history,
                completed_mask,
                precede,
                memo,
                witness,
                mask | bit,
                &next,
                out,
            );
            witness.pop();
        }
    }

    let mut memo: HashSet<(u128, S)> = HashSet::new();
    let mut witness = Vec::with_capacity(history.len());
    let mut out: HashMap<S, Vec<usize>> = HashMap::new();
    dfs(
        history,
        completed_mask,
        precede,
        &mut memo,
        &mut witness,
        0,
        &init,
        &mut out,
    );
    out.into_iter().collect()
}

/// Split a history into maximal *quiescent windows*.
///
/// Operations are ordered by invocation time; a cut is placed between two
/// consecutive operations whenever every earlier operation returned strictly
/// before the later one was invoked. At such an instant the object is
/// quiescent, so every op of window *k* precedes (in `≺_H`) every op of
/// window *k+1* and a linearization of the whole history is exactly a
/// concatenation of per-window linearizations. Pending operations never
/// return, so they suppress every later cut and always land in the final
/// window.
///
/// Returns windows as lists of indices into `history.ops()`, each sorted by
/// invocation time. The concatenation of all windows is a permutation of
/// `0..history.len()`.
pub fn quiescent_windows<O, R>(history: &History<O, R>) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..history.len()).collect();
    idx.sort_by_key(|&i| {
        let r = &history.ops()[i];
        (r.invoke, r.ret.unwrap_or(u64::MAX))
    });
    let mut windows: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    // Latest return time seen so far; `None` = a pending op spans forever.
    let mut horizon: Option<u64> = Some(0);
    for &i in &idx {
        let r = &history.ops()[i];
        if !cur.is_empty() {
            if let Some(h) = horizon {
                if h < r.invoke {
                    windows.push(std::mem::take(&mut cur));
                    horizon = Some(0);
                }
            }
        }
        cur.push(i);
        horizon = match (horizon, r.ret) {
            (Some(h), Some(ret)) => Some(h.max(ret)),
            _ => None,
        };
    }
    if !cur.is_empty() {
        windows.push(cur);
    }
    windows
}

/// Check linearizability of an arbitrarily long history by decomposing it at
/// quiescent cuts ([`quiescent_windows`]) and threading the full set of
/// feasible specification states ([`linearization_states`]) across windows.
///
/// Agrees with [`check`] on every history both can handle, and additionally
/// scales to histories of millions of operations provided no single window
/// exceeds [`MAX_OPS`] ops (i.e. contention bursts are bounded); otherwise
/// returns [`CheckError::TooManyOps`] with the offending window's size.
pub fn check_windowed<S>(
    history: &History<S::Op, S::Resp>,
    init: S,
) -> Result<CheckResult, CheckError>
where
    S: SequentialSpec + Hash + Eq,
{
    let idx: Vec<usize> = (0..history.len()).collect();
    match thread_windows(history, &idx, vec![(init, Vec::new())])? {
        Some(mut frontier) => {
            let (_, witness) = frontier.swap_remove(0);
            Ok(CheckResult::Linearizable { witness })
        }
        None => Ok(CheckResult::NotLinearizable),
    }
}

/// The set of feasible `(state, witness-prefix)` pairs threaded across
/// windows by [`thread_windows`].
type Frontier<S> = Vec<(S, Vec<usize>)>;

/// Thread a frontier of feasible `(state, witness-prefix)` pairs through the
/// sub-history formed by `idx` (indices into `history`), cutting it at its
/// quiescent windows. Returns the surviving frontier, or `None` if some
/// window admits no linearization from any frontier state. Witness entries
/// are indices into the *full* history. Shared by [`check_windowed`] (one
/// span covering everything) and [`check_durable`] (one span per crash era).
fn thread_windows<S>(
    history: &History<S::Op, S::Resp>,
    idx: &[usize],
    mut frontier: Frontier<S>,
) -> Result<Option<Frontier<S>>, CheckError>
where
    S: SequentialSpec + Hash + Eq,
{
    let span: History<S::Op, S::Resp> = idx.iter().map(|&i| history.ops()[i].clone()).collect();
    span.validate().map_err(CheckError::Invalid)?;
    let windows = quiescent_windows(&span);
    for window in &windows {
        if window.len() > MAX_OPS {
            return Err(CheckError::TooManyOps { ops: window.len() });
        }
        let sub: History<S::Op, S::Resp> = window.iter().map(|&k| span.ops()[k].clone()).collect();
        let precede = precede_masks(&sub);
        let mut next: Frontier<S> = Vec::new();
        let mut seen: HashSet<S> = HashSet::new();
        for (state, prefix) in &frontier {
            for (out_state, local) in enumerate_states(&sub, &precede, state.clone()) {
                if seen.insert(out_state.clone()) {
                    let mut w = prefix.clone();
                    w.extend(local.iter().map(|&k| idx[window[k]]));
                    next.push((out_state, w));
                }
            }
        }
        if next.is_empty() {
            return Ok(None);
        }
        frontier = next;
    }
    Ok(Some(frontier))
}

/// Check **durable linearizability** of a history interleaved with
/// full-system crashes at the given timestamps.
///
/// The crash–restart model (DESIGN.md §9) strengthens Definition 3.1's
/// balanced extension: a crash at time `c` splits the history into *eras*,
/// and
///
/// * every operation completed before `c` must linearize before `c`,
/// * an operation in flight at `c` may take effect — but only before `c` —
///   or vanish entirely; it can never linearize into a later era, and
/// * recovery re-execution after restart is a *new* operation, recorded in
///   the next era with its own invocation.
///
/// Implemented by partitioning operations into eras by invocation time
/// (sorted `crashes` as cut points) and threading the feasible-state
/// frontier of [`check_windowed`] across era boundaries: pending operations
/// are confined to their own era's sub-history, so the frontier carries only
/// "took effect by the crash" or "vanished" into the next era.
///
/// Each era is validated separately — the full history may legally contain
/// a pending operation followed by later operations of the same processor
/// (the processor crashed and came back), which [`History::validate`] would
/// reject as an intra-processor overlap.
///
/// An operation invoked exactly at a crash timestamp counts as in flight at
/// that crash; recorded clocks are strictly monotonic so ties never arise in
/// practice. With `crashes` empty this is exactly [`check_windowed`].
pub fn check_durable<S>(
    history: &History<S::Op, S::Resp>,
    init: S,
    crashes: &[u64],
) -> Result<CheckResult, CheckError>
where
    S: SequentialSpec + Hash + Eq,
{
    let mut cuts = crashes.to_vec();
    cuts.sort_unstable();
    cuts.dedup();
    let mut eras: Vec<Vec<usize>> = vec![Vec::new(); cuts.len() + 1];
    for (i, r) in history.iter().enumerate() {
        let era = cuts.partition_point(|&c| c < r.invoke);
        if let Some(ret) = r.ret {
            if cuts.partition_point(|&c| c < ret) != era {
                return Err(CheckError::SpansCrash {
                    pid: r.pid,
                    invoke: r.invoke,
                    ret,
                });
            }
        }
        eras[era].push(i);
    }
    let mut frontier: Vec<(S, Vec<usize>)> = vec![(init, Vec::new())];
    for idx in &eras {
        match thread_windows(history, idx, frontier)? {
            Some(next) => frontier = next,
            None => return Ok(CheckResult::NotLinearizable),
        }
    }
    let (_, witness) = frontier.swap_remove(0);
    Ok(CheckResult::Linearizable { witness })
}

/// Brute-force reference checker: tries every permutation of every subset
/// that contains all completed operations. Exponential; intended for
/// histories of at most ~8 operations in tests.
pub fn check_brute_force<S>(history: &History<S::Op, S::Resp>, init: S) -> CheckResult
where
    S: SequentialSpec,
{
    let n = history.len();
    assert!(n <= 16, "brute force checker limited to 16 ops");

    fn rec<S>(
        history: &History<S::Op, S::Resp>,
        completed_mask: u32,
        mask: u32,
        state: &S,
        witness: &mut Vec<usize>,
    ) -> bool
    where
        S: SequentialSpec,
    {
        if mask & completed_mask == completed_mask {
            return true;
        }
        for i in 0..history.len() {
            let bit = 1u32 << i;
            if mask & bit != 0 {
                continue;
            }
            // Real-time order: everything that precedes i must already be in.
            let ok = (0..history.len())
                .all(|j| j == i || mask & (1 << j) != 0 || !history.precedes(j, i));
            if !ok {
                continue;
            }
            let rec_i = &history.ops()[i];
            let mut next = state.clone();
            let resp = next.apply(&rec_i.op);
            if let Some(expected) = &rec_i.resp {
                if resp != *expected {
                    continue;
                }
            }
            witness.push(i);
            if rec(history, completed_mask, mask | bit, &next, witness) {
                return true;
            }
            witness.pop();
        }
        false
    }

    let completed_mask: u32 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_completed())
        .fold(0u32, |m, (i, _)| m | (1u32 << i));
    let mut witness = Vec::new();
    if rec(history, completed_mask, 0, &init, &mut witness) {
        CheckResult::Linearizable { witness }
    } else {
        CheckResult::NotLinearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::specs::{
        CounterOp, CounterSpec, QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp,
        RegisterSpec,
    };
    use crate::Pid;

    fn reg_completed(
        pid: usize,
        op: RegisterOp,
        resp: RegisterResp,
        invoke: u64,
        ret: u64,
    ) -> OpRecord<RegisterOp, RegisterResp> {
        OpRecord::completed(Pid(pid), op, resp, invoke, ret)
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<RegisterOp, RegisterResp> = History::new();
        assert!(check(&h, RegisterSpec::new()).is_linearizable());
    }

    #[test]
    fn sequential_legal_history() {
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(1), 2, 3),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1][..]));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        // Write(1) completes strictly before the Read, yet the Read sees 0.
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 2, 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, RegisterSpec::new()), CheckResult::NotLinearizable);
    }

    #[test]
    fn overlapping_read_may_see_either_value() {
        for seen in [0u64, 1] {
            let h: History<_, _> = [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 10),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(seen), 5, 6),
            ]
            .into_iter()
            .collect();
            assert!(
                check(&h, RegisterSpec::new()).is_linearizable(),
                "read of {seen} during write should linearize"
            );
        }
    }

    #[test]
    fn pending_op_may_take_effect() {
        // A crashed Write(7) never returned, but a later Read sees 7: legal.
        let h: History<_, _> = [
            OpRecord::pending(Pid(0), RegisterOp::Write(7), 0),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(7), 5, 6),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1][..]));
    }

    #[test]
    fn pending_op_may_be_dropped() {
        let h: History<_, _> = [
            OpRecord::pending(Pid(0), RegisterOp::Write(7), 0),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 5, 6),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[1][..]));
    }

    #[test]
    fn duplicated_dequeue_is_caught() {
        // Two concurrent dequeues both return the same element: not
        // linearizable for a queue holding a single 5.
        let mut init = QueueSpec::new();
        use crate::SequentialSpec;
        init.apply(&QueueOp::Enqueue(5));
        let h: History<_, _> = [
            OpRecord::completed(Pid(0), QueueOp::Dequeue, QueueResp::Value(5), 0, 10),
            OpRecord::completed(Pid(1), QueueOp::Dequeue, QueueResp::Value(5), 1, 9),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, init), CheckResult::NotLinearizable);
    }

    #[test]
    fn concurrent_increments_must_be_distinct() {
        // Two Incs both returning 1 is illegal even fully concurrent.
        let h: History<_, _> = [
            OpRecord::completed(Pid(0), CounterOp::Inc, 1u64, 0, 10),
            OpRecord::completed(Pid(1), CounterOp::Inc, 1u64, 1, 9),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, CounterSpec::new()), CheckResult::NotLinearizable);

        let h2: History<_, _> = [
            OpRecord::completed(Pid(0), CounterOp::Inc, 2u64, 0, 10),
            OpRecord::completed(Pid(1), CounterOp::Inc, 1u64, 1, 9),
        ]
        .into_iter()
        .collect();
        assert!(check(&h2, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn witness_respects_real_time_order() {
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(0, RegisterOp::Write(2), RegisterResp::Ack, 2, 3),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(2), 4, 5),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn brute_force_agrees_on_small_cases() {
        let cases: Vec<History<RegisterOp, RegisterResp>> = vec![
            [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 10),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(1), 5, 6),
                reg_completed(2, RegisterOp::Read, RegisterResp::Value(0), 7, 8),
            ]
            .into_iter()
            .collect(),
            [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 2),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 3, 4),
            ]
            .into_iter()
            .collect(),
        ];
        for h in &cases {
            assert_eq!(
                check(h, RegisterSpec::new()).is_linearizable(),
                check_brute_force(h, RegisterSpec::new()).is_linearizable()
            );
        }
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::specs::{RegisterOp, RegisterResp, RegisterSpec};
    use crate::Pid;

    #[test]
    #[should_panic(expected = "exceeds MAX_OPS")]
    fn oversized_histories_are_rejected() {
        let h: History<RegisterOp, RegisterResp> = (0..129)
            .map(|i| {
                OpRecord::completed(
                    Pid(i),
                    RegisterOp::Write(0),
                    RegisterResp::Ack,
                    2 * i as u64,
                    2 * i as u64 + 1,
                )
            })
            .collect();
        check(&h, RegisterSpec::new());
    }

    #[test]
    #[should_panic(expected = "structurally invalid")]
    fn invalid_histories_are_rejected() {
        let h: History<RegisterOp, RegisterResp> = [
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 0, 10),
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 5, 15),
        ]
        .into_iter()
        .collect();
        check(&h, RegisterSpec::new());
    }

    #[test]
    fn try_check_reports_oversize_as_typed_error() {
        let ok: History<RegisterOp, RegisterResp> = (0..MAX_OPS)
            .map(|i| {
                OpRecord::completed(
                    Pid(i),
                    RegisterOp::Write(0),
                    RegisterResp::Ack,
                    2 * i as u64,
                    2 * i as u64 + 1,
                )
            })
            .collect();
        assert!(try_check(&ok, RegisterSpec::new())
            .expect("exactly MAX_OPS ops must be accepted")
            .is_linearizable());

        let over: History<RegisterOp, RegisterResp> = (0..MAX_OPS + 1)
            .map(|i| {
                OpRecord::completed(
                    Pid(i),
                    RegisterOp::Write(0),
                    RegisterResp::Ack,
                    2 * i as u64,
                    2 * i as u64 + 1,
                )
            })
            .collect();
        assert_eq!(
            try_check(&over, RegisterSpec::new()),
            Err(CheckError::TooManyOps { ops: MAX_OPS + 1 })
        );
    }

    #[test]
    fn try_check_reports_invalid_as_typed_error() {
        let h: History<RegisterOp, RegisterResp> = [
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 0, 10),
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 5, 15),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            try_check(&h, RegisterSpec::new()),
            Err(CheckError::Invalid(_))
        ));
        let msg = CheckError::TooManyOps { ops: 200 }.to_string();
        assert!(msg.contains("200") && msg.contains("MAX_OPS"));
    }

    #[test]
    fn check_result_accessors() {
        let r = CheckResult::Linearizable {
            witness: vec![1, 0],
        };
        assert!(r.is_linearizable());
        assert_eq!(r.witness(), Some(&[1, 0][..]));
        let n = CheckResult::NotLinearizable;
        assert!(!n.is_linearizable());
        assert_eq!(n.witness(), None);
    }
}

#[cfg(test)]
mod windowed_tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::specs::{RegisterOp, RegisterResp, RegisterSpec};
    use crate::Pid;

    fn w(pid: usize, v: u64, invoke: u64, ret: u64) -> OpRecord<RegisterOp, RegisterResp> {
        OpRecord::completed(
            Pid(pid),
            RegisterOp::Write(v),
            RegisterResp::Ack,
            invoke,
            ret,
        )
    }

    fn r(pid: usize, v: u64, invoke: u64, ret: u64) -> OpRecord<RegisterOp, RegisterResp> {
        OpRecord::completed(
            Pid(pid),
            RegisterOp::Read,
            RegisterResp::Value(v),
            invoke,
            ret,
        )
    }

    #[test]
    fn windows_cut_at_quiescence_only() {
        // [0,1] and [2,9] overlap nothing; [4,9] overlaps [2,9] → one window.
        let h: History<_, _> = [w(0, 1, 0, 1), w(0, 2, 2, 9), r(1, 2, 4, 9)]
            .into_iter()
            .collect();
        assert_eq!(quiescent_windows(&h), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn pending_op_suppresses_all_later_cuts() {
        let h: History<_, _> = [
            w(0, 1, 0, 1),
            OpRecord::pending(Pid(1), RegisterOp::Write(7), 2),
            r(2, 7, 10, 11),
            r(2, 7, 20, 21),
        ]
        .into_iter()
        .collect();
        // The pending write spans forever: everything after it is one window.
        assert_eq!(quiescent_windows(&h), vec![vec![0], vec![1, 2, 3]]);
        let res = check_windowed(&h, RegisterSpec::new()).unwrap();
        assert!(res.is_linearizable());
        // Take-effect: the pending op (index 1) must appear in the witness.
        assert!(res.witness().unwrap().contains(&1));
    }

    #[test]
    fn pending_op_may_be_dropped_across_windows() {
        let h: History<_, _> = [
            w(0, 1, 0, 1),
            OpRecord::pending(Pid(1), RegisterOp::Write(7), 2),
            r(2, 1, 10, 11),
        ]
        .into_iter()
        .collect();
        let res = check_windowed(&h, RegisterSpec::new()).unwrap();
        assert!(res.is_linearizable());
        // The read saw the old value, so the pending write either stays out
        // (dropped) or takes effect only after the read.
        let wit = res.witness().unwrap();
        let pos_read = wit.iter().position(|&i| i == 2).unwrap();
        if let Some(pos_pend) = wit.iter().position(|&i| i == 1) {
            assert!(pos_pend > pos_read, "write(7) cannot precede read of 1");
        }
    }

    #[test]
    fn frontier_threads_all_states_not_a_greedy_witness() {
        // Window 1: two concurrent writes (either order legal, two distinct
        // final states). Window 2: a read pinning the *less greedy* one. A
        // single-witness windowed checker gets this wrong.
        for seen in [1u64, 2] {
            let h: History<_, _> = [w(0, 1, 0, 10), w(1, 2, 0, 10), r(2, seen, 20, 21)]
                .into_iter()
                .collect();
            let res = check_windowed(&h, RegisterSpec::new()).unwrap();
            assert!(res.is_linearizable(), "read of {seen} must linearize");
        }
        // And a value written by neither must still be rejected.
        let h: History<_, _> = [w(0, 1, 0, 10), w(1, 2, 0, 10), r(2, 3, 20, 21)]
            .into_iter()
            .collect();
        assert_eq!(
            check_windowed(&h, RegisterSpec::new()).unwrap(),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn windowed_catches_cross_window_stale_read() {
        let h: History<_, _> = [w(0, 5, 0, 1), r(1, 0, 10, 11)].into_iter().collect();
        assert_eq!(
            check_windowed(&h, RegisterSpec::new()).unwrap(),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn windowed_witness_is_a_legal_global_order() {
        let h: History<_, _> = [
            w(0, 1, 0, 10),
            w(1, 2, 0, 10),
            r(2, 2, 20, 21),
            w(0, 3, 30, 31),
            r(1, 3, 40, 41),
        ]
        .into_iter()
        .collect();
        let res = check_windowed(&h, RegisterSpec::new()).unwrap();
        let wit = res.witness().expect("linearizable").to_vec();
        assert_eq!(wit.len(), 5);
        // Replay the witness: responses must match and real-time order hold.
        let mut st = RegisterSpec::new();
        use crate::SequentialSpec;
        for (k, &i) in wit.iter().enumerate() {
            let rec = &h.ops()[i];
            assert_eq!(st.apply(&rec.op), *rec.resp.as_ref().unwrap());
            for &j in &wit[..k] {
                assert!(!h.precedes(i, j), "witness violates real-time order");
            }
        }
    }

    #[test]
    fn oversized_single_window_is_a_typed_error() {
        // MAX_OPS + 1 mutually overlapping ops: no quiescent cut exists.
        let h: History<RegisterOp, RegisterResp> =
            (0..MAX_OPS + 1).map(|i| w(i, 0, 0, 1000)).collect();
        assert_eq!(
            check_windowed(&h, RegisterSpec::new()),
            Err(CheckError::TooManyOps { ops: MAX_OPS + 1 })
        );
    }

    #[test]
    fn linearization_states_enumerates_all_outcomes() {
        let h: History<_, _> = [w(0, 1, 0, 10), w(1, 2, 0, 10)].into_iter().collect();
        let mut states: Vec<u64> = linearization_states(&h, RegisterSpec::new())
            .unwrap()
            .into_iter()
            .map(|(s, _)| {
                use crate::SequentialSpec;
                let mut s = s;
                match s.apply(&RegisterOp::Read) {
                    RegisterResp::Value(v) => v,
                    other => panic!("unexpected {other:?}"),
                }
            })
            .collect();
        states.sort_unstable();
        assert_eq!(states, vec![1, 2]);
    }

    #[test]
    fn durable_is_stricter_than_plain_linearizability() {
        use crate::specs::{CounterOp, CounterSpec};
        // A pending Inc in flight at the crash, then Read→0 followed by
        // Read→1 after restart. Plain linearizability lets the pending Inc
        // linearize *between* the reads (it overlaps everything after its
        // invocation); durably it must take effect before the crash or
        // vanish, and either way the two reads contradict each other.
        let h: History<CounterOp, u64> = [
            OpRecord::pending(Pid(0), CounterOp::Inc, 3),
            OpRecord::completed(Pid(1), CounterOp::Read, 0u64, 6, 7),
            OpRecord::completed(Pid(2), CounterOp::Read, 1u64, 8, 9),
        ]
        .into_iter()
        .collect();
        assert!(check(&h, CounterSpec::new()).is_linearizable());
        assert_eq!(
            check_durable(&h, CounterSpec::new(), &[5]).unwrap(),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn in_flight_op_may_commit_or_vanish_at_the_crash() {
        use crate::specs::{CounterOp, CounterSpec};
        for seen in [0u64, 1] {
            let h: History<CounterOp, u64> = [
                OpRecord::pending(Pid(0), CounterOp::Inc, 3),
                OpRecord::completed(Pid(1), CounterOp::Read, seen, 6, 7),
            ]
            .into_iter()
            .collect();
            let res = check_durable(&h, CounterSpec::new(), &[5]).unwrap();
            assert!(res.is_linearizable(), "read of {seen} after crash");
            // The pending Inc is in the witness iff it took effect.
            assert_eq!(res.witness().unwrap().contains(&0), seen == 1);
        }
    }

    #[test]
    fn completed_op_spanning_a_crash_is_a_typed_error() {
        let h: History<_, _> = [r(0, 0, 3, 7)].into_iter().collect();
        assert_eq!(
            check_durable(&h, RegisterSpec::new(), &[5]),
            Err(CheckError::SpansCrash {
                pid: Pid(0),
                invoke: 3,
                ret: 7
            })
        );
    }

    #[test]
    fn durable_with_no_crashes_agrees_with_windowed() {
        let histories: Vec<History<RegisterOp, RegisterResp>> = vec![
            [w(0, 1, 0, 10), w(1, 2, 0, 10), r(2, 2, 20, 21)]
                .into_iter()
                .collect(),
            [w(0, 5, 0, 1), r(1, 0, 10, 11)].into_iter().collect(),
            [
                w(0, 1, 0, 1),
                OpRecord::pending(Pid(1), RegisterOp::Write(7), 2),
                r(2, 7, 10, 11),
            ]
            .into_iter()
            .collect(),
        ];
        for h in &histories {
            assert_eq!(
                check_durable(h, RegisterSpec::new(), &[])
                    .unwrap()
                    .is_linearizable(),
                check_windowed(h, RegisterSpec::new())
                    .unwrap()
                    .is_linearizable()
            );
        }
    }

    #[test]
    fn frontier_threads_across_eras() {
        // Two concurrent writes in era 0: both orders feasible at the crash.
        // A post-restart read may pin either, but not a value never written.
        for (seen, want) in [(1u64, true), (2, true), (3, false)] {
            let h: History<_, _> = [w(0, 1, 0, 10), w(1, 2, 0, 10), r(2, seen, 20, 21)]
                .into_iter()
                .collect();
            let res = check_durable(&h, RegisterSpec::new(), &[15]).unwrap();
            assert_eq!(res.is_linearizable(), want, "read of {seen} across crash");
        }
    }

    #[test]
    fn recovery_by_the_crashed_processor_is_accepted() {
        // pid 0 crashes with a Write(7) in flight and, after restart, reads.
        // The whole history fails History::validate (pending op followed by
        // more ops of the same pid) — per-era validation must accept it.
        for (seen, committed) in [(7u64, true), (0, false)] {
            let h: History<_, _> = [
                OpRecord::pending(Pid(0), RegisterOp::Write(7), 2),
                r(0, seen, 6, 7),
            ]
            .into_iter()
            .collect();
            assert!(matches!(
                try_check(&h, RegisterSpec::new()),
                Err(CheckError::Invalid(_))
            ));
            let res = check_durable(&h, RegisterSpec::new(), &[5]).unwrap();
            assert!(res.is_linearizable(), "post-restart read of {seen}");
            assert_eq!(res.witness().unwrap().contains(&0), committed);
        }
    }

    #[test]
    fn durable_witness_is_a_legal_per_era_order() {
        let h: History<_, _> = [
            w(0, 1, 0, 10),
            w(1, 2, 0, 10),
            r(2, 2, 20, 21),
            w(0, 3, 30, 31),
            r(1, 3, 40, 41),
        ]
        .into_iter()
        .collect();
        let res = check_durable(&h, RegisterSpec::new(), &[25]).unwrap();
        let wit = res.witness().expect("linearizable").to_vec();
        assert_eq!(wit.len(), 5);
        let mut st = RegisterSpec::new();
        use crate::SequentialSpec;
        for (k, &i) in wit.iter().enumerate() {
            let rec = &h.ops()[i];
            assert_eq!(st.apply(&rec.op), *rec.resp.as_ref().unwrap());
            for &j in &wit[..k] {
                assert!(!h.precedes(i, j), "witness violates real-time order");
            }
        }
        // Era-0 ops (invoked before the crash at 25) all precede era-1 ops.
        let era1_start = wit.iter().position(|&i| h.ops()[i].invoke > 25).unwrap();
        assert!(wit[..era1_start].iter().all(|&i| h.ops()[i].invoke < 25));
    }

    #[test]
    fn windowed_handles_hundred_thousand_ops() {
        let mut ops: Vec<OpRecord<RegisterOp, RegisterResp>> = Vec::with_capacity(100_000);
        let mut t = 0u64;
        let mut last = 0u64;
        for i in 0..100_000u64 {
            if i % 3 == 0 {
                last = i;
                ops.push(w((i % 7) as usize, last, t, t + 1));
            } else {
                ops.push(r((i % 7) as usize, last, t, t + 1));
            }
            t += 2;
        }
        let h: History<_, _> = ops.into_iter().collect();
        let res = check_windowed(&h, RegisterSpec::new()).unwrap();
        assert!(res.is_linearizable());
        assert_eq!(res.witness().unwrap().len(), 100_000);
    }
}
