//! Linearizability (the paper's **atomicity**, Definition 3.1) checking.
//!
//! Given a concurrent [`History`] and a [`SequentialSpec`], decide whether
//! there is a sequential schedule `S` with the same operations such that
//! `≺_H ⊆ ≺_S` and `S` is legal for the specification. Pending operations
//! (crashed processors) may either take effect — with whatever response the
//! specification yields — or be dropped, per the "balanced extension" in
//! Definition 3.1.
//!
//! The main entry point [`check`] implements the Wing–Gong search with
//! memoization on `(linearized-set, state)`; [`check_brute_force`] enumerates
//! permutations directly and serves as the oracle in property tests.

use crate::history::History;
use crate::SequentialSpec;
use std::collections::HashSet;
use std::hash::Hash;

/// Maximum number of operations [`check`] accepts (the linearized-set is a
/// `u128` bitmask).
pub const MAX_OPS: usize = 128;

/// Result of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// A witness order exists: indices into the history's records, in
    /// linearization order. Pending operations absent from the witness were
    /// dropped (they never took effect).
    Linearizable {
        /// Linearization order (indices into `History::ops`).
        witness: Vec<usize>,
    },
    /// No linearization exists.
    NotLinearizable,
}

impl CheckResult {
    /// Whether the history is linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, CheckResult::Linearizable { .. })
    }

    /// The witness order, if linearizable.
    pub fn witness(&self) -> Option<&[usize]> {
        match self {
            CheckResult::Linearizable { witness } => Some(witness),
            CheckResult::NotLinearizable => None,
        }
    }
}

/// Check linearizability of `history` against the specification starting in
/// state `init`.
///
/// # Panics
///
/// Panics if the history has more than [`MAX_OPS`] operations or fails
/// [`History::validate`]. Call sites that record histories through the
/// simulator always satisfy both.
pub fn check<S>(history: &History<S::Op, S::Resp>, init: S) -> CheckResult
where
    S: SequentialSpec + Hash + Eq,
{
    assert!(
        history.len() <= MAX_OPS,
        "history of {} ops exceeds MAX_OPS = {MAX_OPS}",
        history.len()
    );
    history
        .validate()
        .expect("structurally invalid history passed to linearizability checker");

    let n = history.len();
    let completed_mask: u128 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_completed())
        .fold(0u128, |m, (i, _)| m | (1u128 << i));

    // precede[i] = bitmask of ops that must be linearized before op i may be.
    let precede: Vec<u128> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && history.precedes(j, i))
                .fold(0u128, |m, j| m | (1u128 << j))
        })
        .collect();

    let mut memo: HashSet<(u128, S)> = HashSet::new();
    let mut witness = Vec::with_capacity(n);

    fn dfs<S>(
        history: &History<S::Op, S::Resp>,
        completed_mask: u128,
        precede: &[u128],
        memo: &mut HashSet<(u128, S)>,
        witness: &mut Vec<usize>,
        mask: u128,
        state: &S,
    ) -> bool
    where
        S: SequentialSpec + Hash + Eq,
    {
        if mask & completed_mask == completed_mask {
            return true;
        }
        if !memo.insert((mask, state.clone())) {
            return false;
        }
        for i in 0..history.len() {
            let bit = 1u128 << i;
            if mask & bit != 0 || precede[i] & !mask != 0 {
                continue;
            }
            let rec = &history.ops()[i];
            let mut next = state.clone();
            let resp = next.apply(&rec.op);
            // Completed ops must reproduce their observed response; pending
            // ops may take effect with any response.
            if let Some(expected) = &rec.resp {
                if resp != *expected {
                    continue;
                }
            }
            witness.push(i);
            if dfs(
                history,
                completed_mask,
                precede,
                memo,
                witness,
                mask | bit,
                &next,
            ) {
                return true;
            }
            witness.pop();
        }
        false
    }

    if dfs(
        history,
        completed_mask,
        &precede,
        &mut memo,
        &mut witness,
        0,
        &init,
    ) {
        CheckResult::Linearizable { witness }
    } else {
        CheckResult::NotLinearizable
    }
}

/// Brute-force reference checker: tries every permutation of every subset
/// that contains all completed operations. Exponential; intended for
/// histories of at most ~8 operations in tests.
pub fn check_brute_force<S>(history: &History<S::Op, S::Resp>, init: S) -> CheckResult
where
    S: SequentialSpec,
{
    let n = history.len();
    assert!(n <= 16, "brute force checker limited to 16 ops");

    fn rec<S>(
        history: &History<S::Op, S::Resp>,
        completed_mask: u32,
        mask: u32,
        state: &S,
        witness: &mut Vec<usize>,
    ) -> bool
    where
        S: SequentialSpec,
    {
        if mask & completed_mask == completed_mask {
            return true;
        }
        for i in 0..history.len() {
            let bit = 1u32 << i;
            if mask & bit != 0 {
                continue;
            }
            // Real-time order: everything that precedes i must already be in.
            let ok = (0..history.len())
                .all(|j| j == i || mask & (1 << j) != 0 || !history.precedes(j, i));
            if !ok {
                continue;
            }
            let rec_i = &history.ops()[i];
            let mut next = state.clone();
            let resp = next.apply(&rec_i.op);
            if let Some(expected) = &rec_i.resp {
                if resp != *expected {
                    continue;
                }
            }
            witness.push(i);
            if rec(history, completed_mask, mask | bit, &next, witness) {
                return true;
            }
            witness.pop();
        }
        false
    }

    let completed_mask: u32 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_completed())
        .fold(0u32, |m, (i, _)| m | (1u32 << i));
    let mut witness = Vec::new();
    if rec(history, completed_mask, 0, &init, &mut witness) {
        CheckResult::Linearizable { witness }
    } else {
        CheckResult::NotLinearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::specs::{
        CounterOp, CounterSpec, QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp,
        RegisterSpec,
    };
    use crate::Pid;

    fn reg_completed(
        pid: usize,
        op: RegisterOp,
        resp: RegisterResp,
        invoke: u64,
        ret: u64,
    ) -> OpRecord<RegisterOp, RegisterResp> {
        OpRecord::completed(Pid(pid), op, resp, invoke, ret)
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<RegisterOp, RegisterResp> = History::new();
        assert!(check(&h, RegisterSpec::new()).is_linearizable());
    }

    #[test]
    fn sequential_legal_history() {
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(1), 2, 3),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1][..]));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        // Write(1) completes strictly before the Read, yet the Read sees 0.
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 2, 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, RegisterSpec::new()), CheckResult::NotLinearizable);
    }

    #[test]
    fn overlapping_read_may_see_either_value() {
        for seen in [0u64, 1] {
            let h: History<_, _> = [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 10),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(seen), 5, 6),
            ]
            .into_iter()
            .collect();
            assert!(
                check(&h, RegisterSpec::new()).is_linearizable(),
                "read of {seen} during write should linearize"
            );
        }
    }

    #[test]
    fn pending_op_may_take_effect() {
        // A crashed Write(7) never returned, but a later Read sees 7: legal.
        let h: History<_, _> = [
            OpRecord::pending(Pid(0), RegisterOp::Write(7), 0),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(7), 5, 6),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1][..]));
    }

    #[test]
    fn pending_op_may_be_dropped() {
        let h: History<_, _> = [
            OpRecord::pending(Pid(0), RegisterOp::Write(7), 0),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 5, 6),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[1][..]));
    }

    #[test]
    fn duplicated_dequeue_is_caught() {
        // Two concurrent dequeues both return the same element: not
        // linearizable for a queue holding a single 5.
        let mut init = QueueSpec::new();
        use crate::SequentialSpec;
        init.apply(&QueueOp::Enqueue(5));
        let h: History<_, _> = [
            OpRecord::completed(Pid(0), QueueOp::Dequeue, QueueResp::Value(5), 0, 10),
            OpRecord::completed(Pid(1), QueueOp::Dequeue, QueueResp::Value(5), 1, 9),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, init), CheckResult::NotLinearizable);
    }

    #[test]
    fn concurrent_increments_must_be_distinct() {
        // Two Incs both returning 1 is illegal even fully concurrent.
        let h: History<_, _> = [
            OpRecord::completed(Pid(0), CounterOp::Inc, 1u64, 0, 10),
            OpRecord::completed(Pid(1), CounterOp::Inc, 1u64, 1, 9),
        ]
        .into_iter()
        .collect();
        assert_eq!(check(&h, CounterSpec::new()), CheckResult::NotLinearizable);

        let h2: History<_, _> = [
            OpRecord::completed(Pid(0), CounterOp::Inc, 2u64, 0, 10),
            OpRecord::completed(Pid(1), CounterOp::Inc, 1u64, 1, 9),
        ]
        .into_iter()
        .collect();
        assert!(check(&h2, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn witness_respects_real_time_order() {
        let h: History<_, _> = [
            reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
            reg_completed(0, RegisterOp::Write(2), RegisterResp::Ack, 2, 3),
            reg_completed(1, RegisterOp::Read, RegisterResp::Value(2), 4, 5),
        ]
        .into_iter()
        .collect();
        let r = check(&h, RegisterSpec::new());
        assert_eq!(r.witness(), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn brute_force_agrees_on_small_cases() {
        let cases: Vec<History<RegisterOp, RegisterResp>> = vec![
            [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 10),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(1), 5, 6),
                reg_completed(2, RegisterOp::Read, RegisterResp::Value(0), 7, 8),
            ]
            .into_iter()
            .collect(),
            [
                reg_completed(0, RegisterOp::Write(1), RegisterResp::Ack, 0, 2),
                reg_completed(1, RegisterOp::Read, RegisterResp::Value(0), 3, 4),
            ]
            .into_iter()
            .collect(),
        ];
        for h in &cases {
            assert_eq!(
                check(h, RegisterSpec::new()).is_linearizable(),
                check_brute_force(h, RegisterSpec::new()).is_linearizable()
            );
        }
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::specs::{RegisterOp, RegisterResp, RegisterSpec};
    use crate::Pid;

    #[test]
    #[should_panic(expected = "exceeds MAX_OPS")]
    fn oversized_histories_are_rejected() {
        let h: History<RegisterOp, RegisterResp> = (0..129)
            .map(|i| {
                OpRecord::completed(
                    Pid(i),
                    RegisterOp::Write(0),
                    RegisterResp::Ack,
                    2 * i as u64,
                    2 * i as u64 + 1,
                )
            })
            .collect();
        check(&h, RegisterSpec::new());
    }

    #[test]
    #[should_panic(expected = "structurally invalid")]
    fn invalid_histories_are_rejected() {
        let h: History<RegisterOp, RegisterResp> = [
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 0, 10),
            OpRecord::completed(Pid(0), RegisterOp::Read, RegisterResp::Value(0), 5, 15),
        ]
        .into_iter()
        .collect();
        check(&h, RegisterSpec::new());
    }

    #[test]
    fn check_result_accessors() {
        let r = CheckResult::Linearizable {
            witness: vec![1, 0],
        };
        assert!(r.is_linearizable());
        assert_eq!(r.witness(), Some(&[1, 0][..]));
        let n = CheckResult::NotLinearizable;
        assert!(!n.is_linearizable());
        assert_eq!(n.witness(), None);
    }
}
