//! An ordered key-value map.

use crate::SequentialSpec;
use std::collections::BTreeMap;

/// Commands accepted by [`KvSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// Insert or overwrite a binding, returning the previous value if any.
    Put(u64, u64),
    /// Look up a key.
    Get(u64),
    /// Remove a binding, returning the removed value if any.
    Remove(u64),
    /// Number of bindings.
    Len,
}

/// Responses produced by [`KvSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvResp {
    /// The previous/current/removed value, or `None` if the key was unbound.
    Value(Option<u64>),
    /// The number of bindings.
    Len(usize),
}

/// A word-keyed, word-valued map.
///
/// Backed by a `BTreeMap` so the state is `Hash`-able (required by the
/// memoizing linearizability checker) and iteration order is deterministic.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{KvSpec, KvOp, KvResp}};
/// let mut m = KvSpec::new();
/// assert_eq!(m.apply(&KvOp::Put(1, 10)), KvResp::Value(None));
/// assert_eq!(m.apply(&KvOp::Get(1)), KvResp::Value(Some(10)));
/// assert_eq!(m.apply(&KvOp::Remove(1)), KvResp::Value(Some(10)));
/// assert_eq!(m.apply(&KvOp::Get(1)), KvResp::Value(None));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct KvSpec {
    map: BTreeMap<u64, u64>,
}

impl KvSpec {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl SequentialSpec for KvSpec {
    type Op = KvOp;
    type Resp = KvResp;

    fn apply(&mut self, op: &KvOp) -> KvResp {
        match *op {
            KvOp::Put(k, v) => KvResp::Value(self.map.insert(k, v)),
            KvOp::Get(k) => KvResp::Value(self.map.get(&k).copied()),
            KvOp::Remove(k) => KvResp::Value(self.map.remove(&k)),
            KvOp::Len => KvResp::Len(self.map.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut m = KvSpec::new();
        assert_eq!(m.apply(&KvOp::Put(5, 50)), KvResp::Value(None));
        assert_eq!(m.apply(&KvOp::Put(5, 51)), KvResp::Value(Some(50)));
        assert_eq!(m.apply(&KvOp::Len), KvResp::Len(1));
        assert_eq!(m.apply(&KvOp::Remove(5)), KvResp::Value(Some(51)));
        assert!(m.is_empty());
    }

    #[test]
    fn get_missing_key() {
        let mut m = KvSpec::new();
        assert_eq!(m.apply(&KvOp::Get(99)), KvResp::Value(None));
        assert_eq!(m.apply(&KvOp::Remove(99)), KvResp::Value(None));
    }
}
