//! A compare-and-swap register.

use crate::SequentialSpec;

/// Commands accepted by [`CasSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CasOp {
    /// If the value equals `expect`, replace it with `new`.
    Cas {
        /// Expected current value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
    /// Unconditional write.
    Write(u64),
    /// Read the current value.
    Read,
}

/// Responses produced by [`CasSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CasResp {
    /// CAS outcome: whether the swap happened, plus the witnessed value.
    Swapped {
        /// `true` iff the exchange took place.
        ok: bool,
        /// The value observed at the linearization point (old value).
        witness: u64,
    },
    /// Acknowledgement of a write.
    Ack,
    /// The value returned by a read.
    Value(u64),
}

/// A 64-bit register with compare-and-swap.
///
/// CAS has infinite consensus number; obtaining it wait-free from 3-valued
/// sticky bits via the universal construction is the constructive content of
/// the paper's "RMW hierarchy collapses" claim (Section 7) — see `sbu-rmw`.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{CasSpec, CasOp, CasResp}};
/// let mut r = CasSpec::new();
/// assert_eq!(
///     r.apply(&CasOp::Cas { expect: 0, new: 5 }),
///     CasResp::Swapped { ok: true, witness: 0 }
/// );
/// assert_eq!(
///     r.apply(&CasOp::Cas { expect: 0, new: 9 }),
///     CasResp::Swapped { ok: false, witness: 5 }
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CasSpec {
    value: u64,
}

impl CasSpec {
    /// A CAS register initialized to zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A CAS register initialized to `value`.
    pub fn with_value(value: u64) -> Self {
        Self { value }
    }
}

impl SequentialSpec for CasSpec {
    type Op = CasOp;
    type Resp = CasResp;

    fn apply(&mut self, op: &CasOp) -> CasResp {
        match *op {
            CasOp::Cas { expect, new } => {
                let witness = self.value;
                let ok = witness == expect;
                if ok {
                    self.value = new;
                }
                CasResp::Swapped { ok, witness }
            }
            CasOp::Write(v) => {
                self.value = v;
                CasResp::Ack
            }
            CasOp::Read => CasResp::Value(self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_succeeds_only_on_match() {
        let mut r = CasSpec::with_value(3);
        assert_eq!(
            r.apply(&CasOp::Cas { expect: 4, new: 9 }),
            CasResp::Swapped {
                ok: false,
                witness: 3
            }
        );
        assert_eq!(
            r.apply(&CasOp::Cas { expect: 3, new: 9 }),
            CasResp::Swapped {
                ok: true,
                witness: 3
            }
        );
        assert_eq!(r.apply(&CasOp::Read), CasResp::Value(9));
    }

    #[test]
    fn write_is_unconditional() {
        let mut r = CasSpec::with_value(3);
        assert_eq!(r.apply(&CasOp::Write(100)), CasResp::Ack);
        assert_eq!(r.apply(&CasOp::Read), CasResp::Value(100));
    }
}
