//! The sequential specification of the Sticky Bit itself (Definition 4.1).

use crate::SequentialSpec;
use std::fmt;

/// The three-valued domain of a sticky bit: `⊥`, `0`, or `1`.
///
/// The paper's Definition 4.1. `Undef` is the initial "undefined" value that
/// the first successful [`Jam`](StickyOp::Jam) replaces forever (until a
/// `Flush`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// The undefined initial value `⊥`.
    #[default]
    Undef,
    /// The bit value 0.
    Zero,
    /// The bit value 1.
    One,
}

impl Tri {
    /// Lift a boolean into the defined half of the domain.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// The defined value as a boolean, or `None` for `⊥`.
    pub fn bit(self) -> Option<bool> {
        match self {
            Tri::Undef => None,
            Tri::Zero => Some(false),
            Tri::One => Some(true),
        }
    }

    /// Whether the value is still `⊥`.
    pub fn is_undef(self) -> bool {
        self == Tri::Undef
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tri::Undef => write!(f, "⊥"),
            Tri::Zero => write!(f, "0"),
            Tri::One => write!(f, "1"),
        }
    }
}

/// Commands accepted by [`StickySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StickyOp {
    /// `Jam(v)`: if the value is `⊥` or already `v`, set it to `v` and
    /// succeed; otherwise fail.
    Jam(bool),
    /// Return the current value.
    Read,
    /// Reset to `⊥`. In the *atomic sequential* spec this is just another
    /// operation; the real object's Flush is non-atomic, which is exactly the
    /// gap the GRAB/INIT protocol of Section 6 closes.
    Flush,
}

/// Responses produced by [`StickySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StickyResp {
    /// The jam stuck (value was `⊥` or agreed).
    Success,
    /// The jam disagreed with the already-written value.
    Fail,
    /// The current value.
    Value(Tri),
    /// Acknowledgement of a flush.
    Flushed,
}

/// Sequential specification of the atomic Sticky Bit (Definition 4.1).
///
/// Used to validate primitive sticky-bit implementations (native atomics,
/// simulated, consensus-based) with the linearizability checker.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{StickySpec, StickyOp, StickyResp, Tri}};
/// let mut s = StickySpec::new();
/// assert_eq!(s.apply(&StickyOp::Jam(true)), StickyResp::Success);
/// assert_eq!(s.apply(&StickyOp::Jam(true)), StickyResp::Success); // agreeing re-jam
/// assert_eq!(s.apply(&StickyOp::Jam(false)), StickyResp::Fail);
/// assert_eq!(s.apply(&StickyOp::Read), StickyResp::Value(Tri::One));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StickySpec {
    value: Tri,
}

impl StickySpec {
    /// A sticky bit holding `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value.
    pub fn value(&self) -> Tri {
        self.value
    }
}

impl SequentialSpec for StickySpec {
    type Op = StickyOp;
    type Resp = StickyResp;

    fn apply(&mut self, op: &StickyOp) -> StickyResp {
        match *op {
            StickyOp::Jam(bit) => {
                let v = Tri::from_bit(bit);
                if self.value == Tri::Undef || self.value == v {
                    self.value = v;
                    StickyResp::Success
                } else {
                    StickyResp::Fail
                }
            }
            StickyOp::Read => StickyResp::Value(self.value),
            StickyOp::Flush => {
                self.value = Tri::Undef;
                StickyResp::Flushed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_jam_wins_forever() {
        let mut s = StickySpec::new();
        assert_eq!(s.apply(&StickyOp::Read), StickyResp::Value(Tri::Undef));
        assert_eq!(s.apply(&StickyOp::Jam(false)), StickyResp::Success);
        assert_eq!(s.apply(&StickyOp::Jam(true)), StickyResp::Fail);
        assert_eq!(s.apply(&StickyOp::Jam(false)), StickyResp::Success);
        assert_eq!(s.apply(&StickyOp::Read), StickyResp::Value(Tri::Zero));
    }

    #[test]
    fn flush_resets_to_undef() {
        let mut s = StickySpec::new();
        s.apply(&StickyOp::Jam(true));
        assert_eq!(s.apply(&StickyOp::Flush), StickyResp::Flushed);
        assert_eq!(s.value(), Tri::Undef);
        assert_eq!(s.apply(&StickyOp::Jam(false)), StickyResp::Success);
    }

    #[test]
    fn tri_helpers() {
        assert_eq!(Tri::from_bit(true), Tri::One);
        assert_eq!(Tri::from_bit(false), Tri::Zero);
        assert_eq!(Tri::One.bit(), Some(true));
        assert_eq!(Tri::Zero.bit(), Some(false));
        assert_eq!(Tri::Undef.bit(), None);
        assert!(Tri::Undef.is_undef());
        assert_eq!(
            format!("{} {} {}", Tri::Undef, Tri::Zero, Tri::One),
            "⊥ 0 1"
        );
    }
}
