//! A FIFO queue.

use crate::SequentialSpec;
use std::collections::VecDeque;

/// Commands accepted by [`QueueSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Append a value at the tail.
    Enqueue(u64),
    /// Remove and return the head, or report emptiness.
    Dequeue,
    /// Return the current length.
    Len,
}

/// Responses produced by [`QueueSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueResp {
    /// Acknowledgement of an enqueue.
    Ack,
    /// The dequeued value.
    Value(u64),
    /// Dequeue on an empty queue (the paper's "exception" convention, §3).
    Empty,
    /// The length.
    Len(usize),
}

/// An unbounded FIFO queue of 64-bit words.
///
/// The paper's (and Herlihy's) canonical example of an object with no
/// wait-free implementation from safe registers, and therefore the flagship
/// client of the universal construction.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{QueueSpec, QueueOp, QueueResp}};
/// let mut q = QueueSpec::new();
/// q.apply(&QueueOp::Enqueue(1));
/// q.apply(&QueueOp::Enqueue(2));
/// assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Value(1));
/// assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Value(2));
/// assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Empty);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QueueSpec {
    items: VecDeque<u64>,
}

impl QueueSpec {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialSpec for QueueSpec {
    type Op = QueueOp;
    type Resp = QueueResp;

    fn apply(&mut self, op: &QueueOp) -> QueueResp {
        match *op {
            QueueOp::Enqueue(v) => {
                self.items.push_back(v);
                QueueResp::Ack
            }
            QueueOp::Dequeue => match self.items.pop_front() {
                Some(v) => QueueResp::Value(v),
                None => QueueResp::Empty,
            },
            QueueOp::Len => QueueResp::Len(self.items.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = QueueSpec::new();
        for v in [3, 1, 4, 1, 5] {
            assert_eq!(q.apply(&QueueOp::Enqueue(v)), QueueResp::Ack);
        }
        for v in [3, 1, 4, 1, 5] {
            assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Value(v));
        }
        assert_eq!(q.apply(&QueueOp::Dequeue), QueueResp::Empty);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = QueueSpec::new();
        assert!(q.is_empty());
        q.apply(&QueueOp::Enqueue(9));
        assert_eq!(q.apply(&QueueOp::Len), QueueResp::Len(1));
        assert_eq!(q.len(), 1);
    }
}
