//! A LIFO stack.

use crate::SequentialSpec;

/// Commands accepted by [`StackSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the most recently pushed value, or report emptiness.
    Pop,
    /// Return the top value without removing it.
    Peek,
}

/// Responses produced by [`StackSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackResp {
    /// Acknowledgement of a push.
    Ack,
    /// The popped or peeked value.
    Value(u64),
    /// Pop/peek on an empty stack.
    Empty,
}

/// An unbounded LIFO stack of 64-bit words.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{StackSpec, StackOp, StackResp}};
/// let mut s = StackSpec::new();
/// s.apply(&StackOp::Push(1));
/// s.apply(&StackOp::Push(2));
/// assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(2));
/// assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(1));
/// assert_eq!(s.apply(&StackOp::Pop), StackResp::Empty);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StackSpec {
    items: Vec<u64>,
}

impl StackSpec {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stacked items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stack holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialSpec for StackSpec {
    type Op = StackOp;
    type Resp = StackResp;

    fn apply(&mut self, op: &StackOp) -> StackResp {
        match *op {
            StackOp::Push(v) => {
                self.items.push(v);
                StackResp::Ack
            }
            StackOp::Pop => match self.items.pop() {
                Some(v) => StackResp::Value(v),
                None => StackResp::Empty,
            },
            StackOp::Peek => match self.items.last() {
                Some(&v) => StackResp::Value(v),
                None => StackResp::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = StackSpec::new();
        s.apply(&StackOp::Push(1));
        s.apply(&StackOp::Push(2));
        assert_eq!(s.apply(&StackOp::Peek), StackResp::Value(2));
        assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(2));
        assert_eq!(s.apply(&StackOp::Pop), StackResp::Value(1));
        assert!(s.is_empty());
    }

    #[test]
    fn empty_pop_is_exception_not_error() {
        let mut s = StackSpec::new();
        assert_eq!(s.apply(&StackOp::Pop), StackResp::Empty);
        assert_eq!(s.apply(&StackOp::Peek), StackResp::Empty);
        assert_eq!(s.len(), 0);
    }
}
