//! A min-priority queue.

use crate::SequentialSpec;
use std::collections::BTreeMap;

/// Commands accepted by [`PriorityQueueSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PqOp {
    /// Insert a value with a priority (lower = served first).
    Insert {
        /// Service priority (lower first; FIFO among equals).
        priority: u64,
        /// The payload.
        value: u64,
    },
    /// Remove and return the minimum-priority value.
    ExtractMin,
    /// Return the minimum-priority value without removing it.
    PeekMin,
    /// Number of queued items.
    Len,
}

/// Responses produced by [`PriorityQueueSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PqResp {
    /// Acknowledgement of an insert.
    Ack,
    /// `(priority, value)` of the served item.
    Item(u64, u64),
    /// Operation on an empty queue.
    Empty,
    /// The length.
    Len(usize),
}

/// A min-priority queue, FIFO within each priority class.
///
/// Backed by a `BTreeMap<priority, VecDeque-ish Vec>` so the state hashes
/// deterministically for the linearizability checker.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{PriorityQueueSpec, PqOp, PqResp}};
/// let mut pq = PriorityQueueSpec::new();
/// pq.apply(&PqOp::Insert { priority: 2, value: 20 });
/// pq.apply(&PqOp::Insert { priority: 1, value: 10 });
/// assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Item(1, 10));
/// assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Item(2, 20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PriorityQueueSpec {
    classes: BTreeMap<u64, Vec<u64>>,
    len: usize,
}

impl PriorityQueueSpec {
    /// An empty priority queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl SequentialSpec for PriorityQueueSpec {
    type Op = PqOp;
    type Resp = PqResp;

    fn apply(&mut self, op: &PqOp) -> PqResp {
        match *op {
            PqOp::Insert { priority, value } => {
                self.classes.entry(priority).or_default().push(value);
                self.len += 1;
                PqResp::Ack
            }
            PqOp::ExtractMin => {
                let Some((&p, _)) = self.classes.iter().next() else {
                    return PqResp::Empty;
                };
                let class = self.classes.get_mut(&p).expect("present");
                let v = class.remove(0);
                if class.is_empty() {
                    self.classes.remove(&p);
                }
                self.len -= 1;
                PqResp::Item(p, v)
            }
            PqOp::PeekMin => match self.classes.iter().next() {
                Some((&p, class)) => PqResp::Item(p, class[0]),
                None => PqResp::Empty,
            },
            PqOp::Len => PqResp::Len(self.len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_priority_order_fifo_within_class() {
        let mut pq = PriorityQueueSpec::new();
        pq.apply(&PqOp::Insert {
            priority: 5,
            value: 50,
        });
        pq.apply(&PqOp::Insert {
            priority: 1,
            value: 10,
        });
        pq.apply(&PqOp::Insert {
            priority: 1,
            value: 11,
        });
        assert_eq!(pq.apply(&PqOp::PeekMin), PqResp::Item(1, 10));
        assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Item(1, 10));
        assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Item(1, 11));
        assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Item(5, 50));
        assert_eq!(pq.apply(&PqOp::ExtractMin), PqResp::Empty);
        assert!(pq.is_empty());
    }

    #[test]
    fn len_tracks_inserts_and_extracts() {
        let mut pq = PriorityQueueSpec::new();
        for i in 0..5 {
            pq.apply(&PqOp::Insert {
                priority: i % 2,
                value: i,
            });
        }
        assert_eq!(pq.apply(&PqOp::Len), PqResp::Len(5));
        pq.apply(&PqOp::ExtractMin);
        assert_eq!(pq.len(), 4);
    }
}
