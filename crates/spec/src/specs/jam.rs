//! Sequential specification of the Figure 2 `Jam` word: a multi-valued
//! sticky register.
//!
//! This used to live in `sbu-stress`; it moved here so the sequential
//! model is available to every consumer of the spec crate (the torture
//! workloads, the scenario matrix, and the service wire codec) without a
//! dependency on the harness. The value domain is `u64` — the same width
//! as `sbu_mem::Word` — so no information is lost either way.

use crate::SequentialSpec;

/// Sequential specification of the Figure 2 `Jam` word: a multi-valued
/// sticky register. `Jam(v)` sticks the first value forever; later jams
/// succeed iff they agree (and always learn the stuck value).
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{JamWordSpec, JamWordOp, JamWordResp}};
/// let mut w = JamWordSpec::new();
/// assert_eq!(w.apply(&JamWordOp::Jam(7)), JamWordResp::Jam { won: true, value: 7 });
/// assert_eq!(w.apply(&JamWordOp::Jam(9)), JamWordResp::Jam { won: false, value: 7 });
/// assert_eq!(w.apply(&JamWordOp::Read), JamWordResp::Value(Some(7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct JamWordSpec {
    value: Option<u64>,
}

/// Commands accepted by [`JamWordSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JamWordOp {
    /// Stick `v` if the word is still `⊥`.
    Jam(u64),
    /// Return the current value (`None` = `⊥`).
    Read,
}

/// Responses produced by [`JamWordSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JamWordResp {
    /// Outcome of a jam: whether it stuck, and the word's (final) value.
    Jam {
        /// `true` iff the final value equals the jammed value.
        won: bool,
        /// The value the word holds after the jam.
        value: u64,
    },
    /// The current value (`None` = `⊥`).
    Value(Option<u64>),
}

impl JamWordSpec {
    /// A word holding `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value (`None` = `⊥`).
    pub fn value(&self) -> Option<u64> {
        self.value
    }
}

impl SequentialSpec for JamWordSpec {
    type Op = JamWordOp;
    type Resp = JamWordResp;

    fn apply(&mut self, op: &JamWordOp) -> JamWordResp {
        match *op {
            JamWordOp::Jam(v) => {
                let value = *self.value.get_or_insert(v);
                JamWordResp::Jam {
                    won: value == v,
                    value,
                }
            }
            JamWordOp::Read => JamWordResp::Value(self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_jam_sticks_forever() {
        let mut w = JamWordSpec::new();
        assert_eq!(w.apply(&JamWordOp::Read), JamWordResp::Value(None));
        assert_eq!(
            w.apply(&JamWordOp::Jam(3)),
            JamWordResp::Jam {
                won: true,
                value: 3
            }
        );
        assert_eq!(
            w.apply(&JamWordOp::Jam(5)),
            JamWordResp::Jam {
                won: false,
                value: 3
            }
        );
        assert_eq!(
            w.apply(&JamWordOp::Jam(3)),
            JamWordResp::Jam {
                won: true,
                value: 3
            }
        );
        assert_eq!(w.value(), Some(3));
    }
}
