//! A toy bank: the motivating "realistic" object for examples and demos.

use crate::SequentialSpec;

/// Commands accepted by [`BankSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankOp {
    /// Add funds to an account.
    Deposit {
        /// Target account index.
        account: usize,
        /// Amount to add.
        amount: u64,
    },
    /// Remove funds if the balance suffices.
    Withdraw {
        /// Source account index.
        account: usize,
        /// Amount to remove.
        amount: u64,
    },
    /// Atomically move funds between two accounts.
    Transfer {
        /// Source account index.
        from: usize,
        /// Destination account index.
        to: usize,
        /// Amount to move.
        amount: u64,
    },
    /// Read one balance.
    Balance(usize),
    /// Read the sum of all balances (a global invariant probe).
    Total,
}

/// Responses produced by [`BankSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankResp {
    /// The operation took effect.
    Ok,
    /// Withdraw/transfer rejected for lack of funds.
    InsufficientFunds,
    /// Unknown account index.
    NoSuchAccount,
    /// A balance or total.
    Amount(u64),
}

/// A fixed set of accounts with conservation-checked transfers.
///
/// `Transfer` must be atomic: a lock-free bank built from per-account atomics
/// cannot express it, which makes `BankSpec` a good showcase for the
/// universal construction. `Total` lets tests assert conservation of money
/// across arbitrary concurrent histories.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{BankSpec, BankOp, BankResp}};
/// let mut b = BankSpec::new(2, 100);
/// assert_eq!(b.apply(&BankOp::Transfer { from: 0, to: 1, amount: 30 }), BankResp::Ok);
/// assert_eq!(b.apply(&BankOp::Balance(1)), BankResp::Amount(130));
/// assert_eq!(b.apply(&BankOp::Total), BankResp::Amount(200));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BankSpec {
    balances: Vec<u64>,
}

impl BankSpec {
    /// `accounts` accounts, each holding `initial` units.
    pub fn new(accounts: usize, initial: u64) -> Self {
        Self {
            balances: vec![initial; accounts],
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// Sum of all balances.
    pub fn total(&self) -> u64 {
        self.balances.iter().sum()
    }
}

impl SequentialSpec for BankSpec {
    type Op = BankOp;
    type Resp = BankResp;

    fn apply(&mut self, op: &BankOp) -> BankResp {
        match *op {
            BankOp::Deposit { account, amount } => match self.balances.get_mut(account) {
                Some(b) => {
                    *b = b.saturating_add(amount);
                    BankResp::Ok
                }
                None => BankResp::NoSuchAccount,
            },
            BankOp::Withdraw { account, amount } => match self.balances.get_mut(account) {
                Some(b) if *b >= amount => {
                    *b -= amount;
                    BankResp::Ok
                }
                Some(_) => BankResp::InsufficientFunds,
                None => BankResp::NoSuchAccount,
            },
            BankOp::Transfer { from, to, amount } => {
                if from >= self.balances.len() || to >= self.balances.len() {
                    return BankResp::NoSuchAccount;
                }
                if self.balances[from] < amount {
                    return BankResp::InsufficientFunds;
                }
                if from != to {
                    self.balances[from] -= amount;
                    self.balances[to] = self.balances[to].saturating_add(amount);
                }
                BankResp::Ok
            }
            BankOp::Balance(account) => match self.balances.get(account) {
                Some(&b) => BankResp::Amount(b),
                None => BankResp::NoSuchAccount,
            },
            BankOp::Total => BankResp::Amount(self.total()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_conserve_money() {
        let mut b = BankSpec::new(3, 10);
        assert_eq!(
            b.apply(&BankOp::Transfer {
                from: 0,
                to: 2,
                amount: 10
            }),
            BankResp::Ok
        );
        assert_eq!(
            b.apply(&BankOp::Transfer {
                from: 0,
                to: 1,
                amount: 1
            }),
            BankResp::InsufficientFunds
        );
        assert_eq!(b.total(), 30);
    }

    #[test]
    fn self_transfer_is_identity() {
        let mut b = BankSpec::new(1, 5);
        assert_eq!(
            b.apply(&BankOp::Transfer {
                from: 0,
                to: 0,
                amount: 5
            }),
            BankResp::Ok
        );
        assert_eq!(b.apply(&BankOp::Balance(0)), BankResp::Amount(5));
    }

    #[test]
    fn bad_account_indices_are_rejected() {
        let mut b = BankSpec::new(1, 5);
        assert_eq!(
            b.apply(&BankOp::Deposit {
                account: 7,
                amount: 1
            }),
            BankResp::NoSuchAccount
        );
        assert_eq!(b.apply(&BankOp::Balance(7)), BankResp::NoSuchAccount);
        assert_eq!(
            b.apply(&BankOp::Transfer {
                from: 0,
                to: 9,
                amount: 1
            }),
            BankResp::NoSuchAccount
        );
    }

    #[test]
    fn withdraw_exact_balance() {
        let mut b = BankSpec::new(1, 5);
        assert_eq!(
            b.apply(&BankOp::Withdraw {
                account: 0,
                amount: 5
            }),
            BankResp::Ok
        );
        assert_eq!(b.apply(&BankOp::Balance(0)), BankResp::Amount(0));
    }
}
