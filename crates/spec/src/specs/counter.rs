//! A fetch-and-increment counter.

use crate::SequentialSpec;

/// Commands accepted by [`CounterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterOp {
    /// Increment by one and return the *new* value.
    Inc,
    /// Add an arbitrary amount and return the new value.
    Add(u64),
    /// Return the current value without modifying it.
    Read,
}

/// A wrapping 64-bit counter.
///
/// The simplest non-trivial sequential object: because `Inc` returns the new
/// value, concurrent increments must be totally ordered, which already
/// requires consensus — safe registers alone cannot implement it wait-free
/// (Section 1 of the paper).
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{CounterSpec, CounterOp}};
/// let mut c = CounterSpec::new();
/// assert_eq!(c.apply(&CounterOp::Inc), 1);
/// assert_eq!(c.apply(&CounterOp::Add(10)), 11);
/// assert_eq!(c.apply(&CounterOp::Read), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CounterSpec {
    value: u64,
}

impl CounterSpec {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter starting at `value`.
    pub fn with_value(value: u64) -> Self {
        Self { value }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl SequentialSpec for CounterSpec {
    type Op = CounterOp;
    type Resp = u64;

    fn apply(&mut self, op: &CounterOp) -> u64 {
        match *op {
            CounterOp::Inc => {
                self.value = self.value.wrapping_add(1);
                self.value
            }
            CounterOp::Add(k) => {
                self.value = self.value.wrapping_add(k);
                self.value
            }
            CounterOp::Read => self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_are_sequential() {
        let mut c = CounterSpec::new();
        for i in 1..=100 {
            assert_eq!(c.apply(&CounterOp::Inc), i);
        }
        assert_eq!(c.value(), 100);
    }

    #[test]
    fn add_wraps() {
        let mut c = CounterSpec::with_value(u64::MAX);
        assert_eq!(c.apply(&CounterOp::Inc), 0);
        assert_eq!(c.apply(&CounterOp::Add(u64::MAX)), u64::MAX);
    }

    #[test]
    fn read_does_not_mutate() {
        let mut c = CounterSpec::with_value(7);
        assert_eq!(c.apply(&CounterOp::Read), 7);
        assert_eq!(c.apply(&CounterOp::Read), 7);
    }
}
