//! An atomic snapshot object.

use crate::SequentialSpec;

/// Commands accepted by [`SnapshotSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SnapshotOp {
    /// Write component `index` (a per-processor segment in classic usage).
    Update {
        /// Which component to overwrite.
        index: usize,
        /// The new value.
        value: u64,
    },
    /// Atomically read all components.
    Scan,
}

/// Responses produced by [`SnapshotSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SnapshotResp {
    /// Acknowledgement of an update.
    Ack,
    /// The vector of all components, atomically observed.
    View(Vec<u64>),
    /// Update with an out-of-range index.
    OutOfRange,
}

/// An `m`-component atomic snapshot: `update(i, v)` and `scan() → [v_0..v_m)`.
///
/// Snapshots *are* implementable wait-free from atomic registers, but the
/// direct algorithms are subtle; obtaining one from the universal
/// construction is a one-liner, which is exactly the paper's point.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{SnapshotSpec, SnapshotOp, SnapshotResp}};
/// let mut s = SnapshotSpec::new(3);
/// s.apply(&SnapshotOp::Update { index: 1, value: 7 });
/// assert_eq!(s.apply(&SnapshotOp::Scan), SnapshotResp::View(vec![0, 7, 0]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotSpec {
    components: Vec<u64>,
}

impl SnapshotSpec {
    /// A snapshot object with `m` components, all zero.
    pub fn new(m: usize) -> Self {
        Self {
            components: vec![0; m],
        }
    }

    /// Number of components.
    pub fn width(&self) -> usize {
        self.components.len()
    }
}

impl SequentialSpec for SnapshotSpec {
    type Op = SnapshotOp;
    type Resp = SnapshotResp;

    fn apply(&mut self, op: &SnapshotOp) -> SnapshotResp {
        match op {
            SnapshotOp::Update { index, value } => {
                if let Some(slot) = self.components.get_mut(*index) {
                    *slot = *value;
                    SnapshotResp::Ack
                } else {
                    SnapshotResp::OutOfRange
                }
            }
            SnapshotOp::Scan => SnapshotResp::View(self.components.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_sees_all_updates() {
        let mut s = SnapshotSpec::new(2);
        s.apply(&SnapshotOp::Update { index: 0, value: 1 });
        s.apply(&SnapshotOp::Update { index: 1, value: 2 });
        assert_eq!(s.apply(&SnapshotOp::Scan), SnapshotResp::View(vec![1, 2]));
    }

    #[test]
    fn out_of_range_update_is_rejected() {
        let mut s = SnapshotSpec::new(1);
        assert_eq!(
            s.apply(&SnapshotOp::Update { index: 5, value: 1 }),
            SnapshotResp::OutOfRange
        );
        assert_eq!(s.apply(&SnapshotOp::Scan), SnapshotResp::View(vec![0]));
        assert_eq!(s.width(), 1);
    }
}
