//! Ready-made sequential object specifications.
//!
//! These are the "safe implementations of sequential objects" that the
//! universal construction (Sections 5–6 of the paper) turns into wait-free
//! atomic objects: plain, single-threaded Rust state machines. Each one
//! implements [`SequentialSpec`](crate::SequentialSpec) and derives
//! `Hash`/`Eq` so the linearizability checker can memoize on states.

mod bank;
mod cas;
mod counter;
mod deque;
mod jam;
mod kv;
mod pqueue;
mod queue;
mod register;
mod set;
mod snapshot;
mod stack;
mod sticky;

pub use bank::{BankOp, BankResp, BankSpec};
pub use cas::{CasOp, CasResp, CasSpec};
pub use counter::{CounterOp, CounterSpec};
pub use deque::{DequeOp, DequeResp, DequeSpec};
pub use jam::{JamWordOp, JamWordResp, JamWordSpec};
pub use kv::{KvOp, KvResp, KvSpec};
pub use pqueue::{PqOp, PqResp, PriorityQueueSpec};
pub use queue::{QueueOp, QueueResp, QueueSpec};
pub use register::{RegisterOp, RegisterResp, RegisterSpec};
pub use set::{SetOp, SetResp, SetSpec};
pub use snapshot::{SnapshotOp, SnapshotResp, SnapshotSpec};
pub use stack::{StackOp, StackResp, StackSpec};
pub use sticky::{StickyOp, StickyResp, StickySpec, Tri};
