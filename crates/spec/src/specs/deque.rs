//! A double-ended queue.

use crate::SequentialSpec;
use std::collections::VecDeque;

/// Commands accepted by [`DequeSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeOp {
    /// Insert at the front.
    PushFront(u64),
    /// Insert at the back.
    PushBack(u64),
    /// Remove from the front.
    PopFront,
    /// Remove from the back.
    PopBack,
    /// Current length.
    Len,
}

/// Responses produced by [`DequeSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeResp {
    /// Acknowledgement of a push.
    Ack,
    /// A popped value.
    Value(u64),
    /// Pop on an empty deque.
    Empty,
    /// The length.
    Len(usize),
}

/// An unbounded double-ended queue of 64-bit words.
///
/// Deques are a classic "hard" concurrent object (no simple lock-free
/// algorithm is known for the general case); through the universal
/// construction they come for free.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{DequeSpec, DequeOp, DequeResp}};
/// let mut d = DequeSpec::new();
/// d.apply(&DequeOp::PushBack(2));
/// d.apply(&DequeOp::PushFront(1));
/// assert_eq!(d.apply(&DequeOp::PopBack), DequeResp::Value(2));
/// assert_eq!(d.apply(&DequeOp::PopFront), DequeResp::Value(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DequeSpec {
    items: VecDeque<u64>,
}

impl DequeSpec {
    /// An empty deque.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the deque holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialSpec for DequeSpec {
    type Op = DequeOp;
    type Resp = DequeResp;

    fn apply(&mut self, op: &DequeOp) -> DequeResp {
        match *op {
            DequeOp::PushFront(v) => {
                self.items.push_front(v);
                DequeResp::Ack
            }
            DequeOp::PushBack(v) => {
                self.items.push_back(v);
                DequeResp::Ack
            }
            DequeOp::PopFront => match self.items.pop_front() {
                Some(v) => DequeResp::Value(v),
                None => DequeResp::Empty,
            },
            DequeOp::PopBack => match self.items.pop_back() {
                Some(v) => DequeResp::Value(v),
                None => DequeResp::Empty,
            },
            DequeOp::Len => DequeResp::Len(self.items.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ends_work() {
        let mut d = DequeSpec::new();
        d.apply(&DequeOp::PushBack(1));
        d.apply(&DequeOp::PushBack(2));
        d.apply(&DequeOp::PushFront(0));
        assert_eq!(d.apply(&DequeOp::Len), DequeResp::Len(3));
        assert_eq!(d.apply(&DequeOp::PopFront), DequeResp::Value(0));
        assert_eq!(d.apply(&DequeOp::PopBack), DequeResp::Value(2));
        assert_eq!(d.apply(&DequeOp::PopFront), DequeResp::Value(1));
        assert!(d.is_empty());
    }

    #[test]
    fn empty_pops_report_empty() {
        let mut d = DequeSpec::new();
        assert_eq!(d.apply(&DequeOp::PopFront), DequeResp::Empty);
        assert_eq!(d.apply(&DequeOp::PopBack), DequeResp::Empty);
        assert_eq!(d.len(), 0);
    }
}
