//! An ordered set with rank queries.

use crate::SequentialSpec;
use std::collections::BTreeSet;

/// Commands accepted by [`SetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// Insert; reports whether the element was new.
    Insert(u64),
    /// Remove; reports whether the element was present.
    Remove(u64),
    /// Membership test.
    Contains(u64),
    /// Smallest element ≥ the argument.
    Ceiling(u64),
    /// Number of elements.
    Len,
}

/// Responses produced by [`SetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetResp {
    /// Outcome of insert/remove/contains.
    Bool(bool),
    /// A found element, or `None`.
    Element(Option<u64>),
    /// The cardinality.
    Len(usize),
}

/// An ordered set of 64-bit words with a ceiling query.
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{SetSpec, SetOp, SetResp}};
/// let mut s = SetSpec::new();
/// assert_eq!(s.apply(&SetOp::Insert(10)), SetResp::Bool(true));
/// assert_eq!(s.apply(&SetOp::Insert(10)), SetResp::Bool(false));
/// assert_eq!(s.apply(&SetOp::Ceiling(5)), SetResp::Element(Some(10)));
/// assert_eq!(s.apply(&SetOp::Ceiling(11)), SetResp::Element(None));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SetSpec {
    items: BTreeSet<u64>,
}

impl SetSpec {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl SequentialSpec for SetSpec {
    type Op = SetOp;
    type Resp = SetResp;

    fn apply(&mut self, op: &SetOp) -> SetResp {
        match *op {
            SetOp::Insert(v) => SetResp::Bool(self.items.insert(v)),
            SetOp::Remove(v) => SetResp::Bool(self.items.remove(&v)),
            SetOp::Contains(v) => SetResp::Bool(self.items.contains(&v)),
            SetOp::Ceiling(v) => SetResp::Element(self.items.range(v..).next().copied()),
            SetOp::Len => SetResp::Len(self.items.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SetSpec::new();
        assert_eq!(s.apply(&SetOp::Contains(1)), SetResp::Bool(false));
        assert_eq!(s.apply(&SetOp::Insert(1)), SetResp::Bool(true));
        assert_eq!(s.apply(&SetOp::Contains(1)), SetResp::Bool(true));
        assert_eq!(s.apply(&SetOp::Remove(1)), SetResp::Bool(true));
        assert_eq!(s.apply(&SetOp::Remove(1)), SetResp::Bool(false));
        assert!(s.is_empty());
    }

    #[test]
    fn ceiling_finds_the_next_element() {
        let mut s = SetSpec::new();
        for v in [10, 20, 30] {
            s.apply(&SetOp::Insert(v));
        }
        assert_eq!(s.apply(&SetOp::Ceiling(0)), SetResp::Element(Some(10)));
        assert_eq!(s.apply(&SetOp::Ceiling(20)), SetResp::Element(Some(20)));
        assert_eq!(s.apply(&SetOp::Ceiling(21)), SetResp::Element(Some(30)));
        assert_eq!(s.apply(&SetOp::Ceiling(31)), SetResp::Element(None));
        assert_eq!(s.apply(&SetOp::Len), SetResp::Len(3));
    }
}
