//! A read/write register over 64-bit words.

use crate::SequentialSpec;

/// Commands accepted by [`RegisterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterOp {
    /// Return the current contents.
    Read,
    /// Overwrite the contents.
    Write(u64),
}

/// Responses produced by [`RegisterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterResp {
    /// Acknowledgement of a write.
    Ack,
    /// The value returned by a read.
    Value(u64),
}

/// A 64-bit read/write register (Lamport's canonical sequential object).
///
/// ```
/// use sbu_spec::{SequentialSpec, specs::{RegisterSpec, RegisterOp, RegisterResp}};
/// let mut r = RegisterSpec::new();
/// assert_eq!(r.apply(&RegisterOp::Write(42)), RegisterResp::Ack);
/// assert_eq!(r.apply(&RegisterOp::Read), RegisterResp::Value(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegisterSpec {
    value: u64,
}

impl RegisterSpec {
    /// A register initialized to zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A register initialized to `value`.
    pub fn with_value(value: u64) -> Self {
        Self { value }
    }
}

impl SequentialSpec for RegisterSpec {
    type Op = RegisterOp;
    type Resp = RegisterResp;

    fn apply(&mut self, op: &RegisterOp) -> RegisterResp {
        match *op {
            RegisterOp::Read => RegisterResp::Value(self.value),
            RegisterOp::Write(v) => {
                self.value = v;
                RegisterResp::Ack
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_write_wins() {
        let mut r = RegisterSpec::new();
        r.apply(&RegisterOp::Write(1));
        r.apply(&RegisterOp::Write(2));
        assert_eq!(r.apply(&RegisterOp::Read), RegisterResp::Value(2));
    }

    #[test]
    fn initial_value_is_zero() {
        let mut r = RegisterSpec::new();
        assert_eq!(r.apply(&RegisterOp::Read), RegisterResp::Value(0));
    }
}
