//! # sbu-spec — sequential specifications, histories, and atomicity
//!
//! This crate is the semantic foundation of the workspace. It provides:
//!
//! * [`SequentialSpec`] — the paper's notion of a *sequential object*
//!   (Section 3): a deterministic state machine mapping `(state, command)`
//!   to `(state, response)`. Concrete specifications for registers, counters,
//!   queues, stacks, key-value maps, snapshots and the sticky bit itself live
//!   in [`specs`].
//! * [`history`] — concurrent operation histories: invocation/response
//!   intervals on a logical clock, pending (crashed) operations, and the
//!   real-time precedence partial order `≺_H` of Definition 3.1.
//! * [`linearize`] — a Wing–Gong style linearizability checker (the paper's
//!   **atomicity**, Definition 3.1), with memoization, plus a brute-force
//!   reference used as a property-test oracle.
//! * [`schedule`] — the Section 2 port-automata formalism made executable:
//!   schedules of command/response actions, the *well-formed*, *sequential*
//!   and *balanced* predicates, and the "S is a linearization of H" check.
//!
//! The simulator (`sbu-sim`) records histories; every wait-free object built
//! in `sbu-sticky`, `sbu-rmw` and `sbu-core` is validated against its
//! sequential specification through this crate.
//!
//! ```
//! use sbu_spec::specs::CounterSpec;
//! use sbu_spec::{SequentialSpec, history::{History, OpRecord}, linearize::check};
//! use sbu_spec::Pid;
//!
//! // Two increments overlapping in real time: linearizable in either order.
//! let mut h = History::new();
//! h.push(OpRecord::completed(Pid(0), sbu_spec::specs::CounterOp::Inc, 1, 0, 3));
//! h.push(OpRecord::completed(Pid(1), sbu_spec::specs::CounterOp::Inc, 2, 1, 2));
//! assert!(check(&h, CounterSpec::new()).is_linearizable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod history;
pub mod linearize;
pub mod schedule;
pub mod specs;

/// Identifier of a participating processor (the paper's `p_i`).
///
/// Processor ids are dense indices `0..n`. They double as indices into the
/// announce arrays and per-processor register banks used throughout the
/// constructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(v: usize) -> Self {
        Pid(v)
    }
}

/// A sequential object specification (Section 3 of the paper).
///
/// A *sequential object* is one specified entirely by its sequential
/// schedules; equivalently, a deterministic transition function
/// `apply : State × Op → State × Resp`. Implementations of this trait are the
/// "safe implementations" that the universal construction of Sections 5–6
/// transforms into wait-free atomic ones: the construction invokes `apply`
/// only in contexts where no two invocations overlap, which is exactly the
/// guarantee a *safe* implementation requires.
///
/// The state must be `Clone` because the universal construction stores
/// snapshots of it in list cells, and `self` is the state.
pub trait SequentialSpec: Clone {
    /// A command (the paper's `cmd`): an operation request sent to the object.
    type Op: Clone + PartialEq + fmt::Debug;
    /// A response (`rsp`) returned by the object.
    type Resp: Clone + PartialEq + fmt::Debug;

    /// Apply one command, mutating the state and producing the response.
    ///
    /// Must be deterministic: the universal construction relies on every
    /// processor recomputing identical states from identical command
    /// sequences.
    fn apply(&mut self, op: &Self::Op) -> Self::Resp;

    /// Apply a whole sequence of commands, discarding responses.
    ///
    /// Convenience used when replaying suffixes of the cell list.
    fn apply_all<'a, I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = &'a Self::Op>,
        Self::Op: 'a,
    {
        for op in ops {
            self.apply(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{CounterOp, CounterSpec};

    #[test]
    fn pid_display_and_conversions() {
        let p: Pid = 3.into();
        assert_eq!(p, Pid(3));
        assert_eq!(p.to_string(), "p3");
        assert_eq!(Pid::default(), Pid(0));
    }

    #[test]
    fn apply_all_replays_commands() {
        let mut s = CounterSpec::new();
        s.apply_all([&CounterOp::Inc, &CounterOp::Inc, &CounterOp::Inc]);
        assert_eq!(s.apply(&CounterOp::Read), 3);
    }
}
