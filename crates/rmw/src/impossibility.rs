//! Executable separations: where each level of the hierarchy *fails*.
//!
//! Impossibility theorems cannot be proven by running code, but their
//! adversarial schedules can be *exhibited*. This module implements the
//! natural wait-free protocol attempts that the proofs rule out, and the
//! schedule explorer mechanically finds the interleavings on which they
//! disagree:
//!
//! * [`NaiveRegisterConsensus`] — 2-processor consensus from registers
//!   only. Any deterministic wait-free attempt must fail
//!   (Dolev–Dwork–Stockmeyer \[5\], Chor–Israeli–Li \[4\], FLP \[6\]); the
//!   explorer finds the classic "neither sees the other / both see each
//!   other" ambiguity.
//! * [`TasThreeConsensus`] — 3-processor consensus from a single
//!   test-and-set plus registers. TAS has consensus number 2 (Herlihy \[7\],
//!   Loui–Abu-Amara \[10\]): a loser that cannot yet see the winner's value
//!   must decide *something* (wait-freedom!), and the explorer produces the
//!   schedule where that guess is wrong.
//!
//! Contrast both with the sticky bit: `propose = Jam + Read` solves
//! n-processor consensus outright (`sbu_sticky::consensus`), which is the
//! content of the collapse theorem.

use sbu_mem::{Pid, SafeId, TasId, Word, WordMem};
use sbu_sticky::consensus::Consensus;

/// A doomed-but-natural 2-processor consensus from registers: announce my
/// value, then adopt the other's value if I can see it, else keep mine.
///
/// Deterministic, wait-free — and therefore *incorrect*: see
/// [`crate::impossibility`] module docs. Exists to be refuted by the
/// explorer (experiment E6).
#[derive(Debug, Clone, Copy)]
pub struct NaiveRegisterConsensus {
    /// `0 = ⊥`, else `value + 1`; single-writer each.
    proposals: [SafeId; 2],
}

impl NaiveRegisterConsensus {
    /// Allocate the two announcement registers.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            proposals: [mem.alloc_safe(0), mem.alloc_safe(0)],
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for NaiveRegisterConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(pid.0 < 2);
        mem.safe_write(pid, self.proposals[pid.0], value + 1);
        let other = mem.safe_read(pid, self.proposals[1 - pid.0]);
        if other != 0 {
            other - 1
        } else {
            value
        }
    }

    fn decision(&self, _mem: &M, _pid: Pid) -> Option<Word> {
        None // no well-defined decision exists; that is the point
    }
}

/// A doomed-but-natural 3-processor consensus from one TAS bit: the winner
/// publishes its value in a decision register; a loser takes the published
/// decision if visible, otherwise — forced by wait-freedom not to spin —
/// guesses its own value.
///
/// The explorer finds the schedule where the winner is suspended between
/// winning the TAS and publishing, so a loser's guess disagrees. This
/// window is exactly the obstruction in the consensus-number-2 proof.
#[derive(Debug, Clone, Copy)]
pub struct TasThreeConsensus {
    tas: TasId,
    /// `0 = ⊥`, else `value + 1`; written only by the TAS winner.
    decision: SafeId,
}

impl TasThreeConsensus {
    /// Allocate the TAS bit and the decision register.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            tas: mem.alloc_tas(),
            decision: mem.alloc_safe(0),
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for TasThreeConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        if !mem.tas_test_and_set(pid, self.tas) {
            mem.safe_write(pid, self.decision, value + 1);
            return value;
        }
        match mem.safe_read(pid, self.decision) {
            0 => value, // the fatal guess
            w => w - 1,
        }
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        match mem.safe_read(pid, self.decision) {
            0 => None,
            w => Some(w - 1),
        }
    }
}

/// Run a binary-consensus protocol over all schedules for `n` processors
/// (inputs `pid % 2`) and report whether agreement+validity ever break.
/// Returns `Ok(schedules)` if every schedule agreed, or `Err(script)` with
/// a counterexample.
pub fn find_consensus_counterexample<C, F>(
    n: usize,
    max_schedules: usize,
    make: F,
) -> Result<usize, Vec<usize>>
where
    C: Consensus<sbu_sim::SimMem<()>> + Clone + Send + Sync + 'static,
    F: Fn(&mut sbu_sim::SimMem<()>) -> C,
{
    use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
    let explorer = Explorer {
        max_schedules,
        max_failures: 1,
    };
    let report = explorer.explore(|script| {
        let mut mem: SimMem<()> = SimMem::new(n);
        let cons = make(&mut mem);
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            n,
            move |mem, pid| cons.propose(mem, pid, (pid.0 % 2) as Word),
        );
        let verdict = (|| {
            let ds: Vec<Word> = out.results().into_iter().copied().collect();
            if let Some(&first) = ds.first() {
                if !ds.iter().all(|&d| d == first) {
                    return Err(format!("disagreement {ds:?}"));
                }
                if first > 1 {
                    return Err(format!("invalid {first}"));
                }
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    match report.failures.into_iter().next() {
        Some((script, _)) => Err(script),
        None => Ok(report.schedules),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_sticky::consensus::{RmwConsensus, StickyBinaryConsensus};

    #[test]
    fn registers_alone_fail_two_consensus() {
        let result = find_consensus_counterexample(2, 100_000, NaiveRegisterConsensus::new);
        let script = result.expect_err("DDS/CIL: a disagreeing schedule must exist");
        assert!(!script.is_empty() || script.is_empty()); // counterexample found
    }

    #[test]
    fn tas_fails_three_consensus() {
        let result = find_consensus_counterexample(3, 500_000, TasThreeConsensus::new);
        result.expect_err("Herlihy/Loui–Abu-Amara: a disagreeing schedule must exist");
    }

    #[test]
    fn tas_succeeds_at_two_consensus() {
        // Positive control for the same harness: the 2-processor TAS
        // protocol survives every schedule.
        let result = find_consensus_counterexample(2, 500_000, |mem| {
            crate::two_consensus::TasTwoConsensus::new(mem)
        });
        let schedules = result.expect("TAS two-consensus is correct");
        assert!(schedules > 10);
    }

    #[test]
    fn sticky_bit_succeeds_at_three_consensus() {
        // The collapse: one sticky bit (≡ 3-valued RMW) handles 3 procs.
        let result = find_consensus_counterexample(3, 2_000_000, StickyBinaryConsensus::new);
        result.expect("sticky-bit consensus is correct for any n");
        let result = find_consensus_counterexample(3, 2_000_000, RmwConsensus::new);
        result.expect("3-valued RMW consensus is correct for any n");
    }
}
