//! 2-processor consensus from one test-and-set bit plus registers.
//!
//! The classic separation witness: level 1 of the RMW hierarchy (TAS)
//! strictly exceeds level 0 (registers). Each processor announces its
//! proposal in a single-writer register and then races on the TAS bit; the
//! winner decides its own value, the loser decides the winner's.
//!
//! This works *only* for two processors — the loser knows who the winner is
//! by elimination. With three processors the loser cannot identify the
//! winner through a single bit, which is the intuition behind
//! Herlihy/Loui–Abu-Amara's proof that TAS has consensus number exactly 2
//! (see [`crate::impossibility`] for the executable counterexample).

use sbu_mem::{Pid, SafeId, TasId, Word, WordMem};
use sbu_sticky::consensus::Consensus;

/// Wait-free 2-processor consensus from one TAS bit and two safe registers.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_rmw::TasTwoConsensus;
/// use sbu_sticky::Consensus;
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let c = TasTwoConsensus::new(&mut mem);
/// assert_eq!(c.propose(&mem, Pid(0), 42), 42);
/// assert_eq!(c.propose(&mem, Pid(1), 7), 42);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TasTwoConsensus {
    tas: TasId,
    /// Proposal announcements, single-writer; `0 = ⊥`, else `value + 1`.
    proposals: [SafeId; 2],
}

impl TasTwoConsensus {
    /// Allocate the TAS bit and the two proposal registers.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            tas: mem.alloc_tas(),
            proposals: [mem.alloc_safe(0), mem.alloc_safe(0)],
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for TasTwoConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(pid.0 < 2, "2-processor consensus");
        assert!(value < Word::MAX, "reserve MAX for ⊥");
        mem.safe_write(pid, self.proposals[pid.0], value + 1);
        if !mem.tas_test_and_set(pid, self.tas) {
            // Winner: my own value decides.
            value
        } else {
            // Loser: by elimination the other processor won; its proposal
            // register was written before it touched the TAS bit, and it
            // is never rewritten, so this read is overlap-free.
            let other = 1 - pid.0;
            let w = mem.safe_read(pid, self.proposals[other]);
            debug_assert_ne!(w, 0, "winner must have announced before winning");
            w - 1
        }
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        if !mem.tas_read(pid, self.tas) {
            return None;
        }
        // The bit is set, so some proposer won; at most one announcement
        // can still be missing (a proposer that crashed pre-announce never
        // reached the TAS).
        (0..2)
            .map(|j| mem.safe_read(pid, self.proposals[j]))
            .find(|&w| w != 0)
            .map(|w| w - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};

    #[test]
    fn exhaustive_agreement_validity_with_crash() {
        let explorer = Explorer {
            max_schedules: 2_000_000,
            max_failures: 1,
        };
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let c = TasTwoConsensus::new(&mut mem);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| c.propose(mem, pid, pid.0 as Word + 100),
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let ds: Vec<Word> = out.results().into_iter().copied().collect();
                if let Some(&first) = ds.first() {
                    if !ds.iter().all(|&d| d == first) {
                        return Err(format!("disagreement {ds:?}"));
                    }
                    if first != 100 && first != 101 {
                        return Err(format!("invalid decision {first}"));
                    }
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn decision_observation() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let c = TasTwoConsensus::new(&mut mem);
        assert_eq!(Consensus::<NativeMem<()>>::decision(&c, &mem, Pid(0)), None);
        assert_eq!(c.propose(&mem, Pid(1), 5), 5);
        assert_eq!(
            Consensus::<NativeMem<()>>::decision(&c, &mem, Pid(0)),
            Some(5)
        );
    }
}
