//! k-valued RMW registers and the collapse at k = 3.
//!
//! A *k-valued RMW register* holds one of `k` values and supports an atomic
//! read-modify-write with an arbitrary function on that domain. The paper's
//! hierarchy result: 2-valued RMW (a bit with TAS-like updates) cannot solve
//! 3-consensus, but a **3-valued** RMW already simulates a sticky bit
//! ([`RmwStickyBit`] below is the two-line simulation), and the sticky bit
//! is universal — so the hierarchy collapses at the third level.

use sbu_mem::{AtomicId, JamOutcome, Pid, Tri, Word, WordMem};

/// A k-valued RMW register: an atomic register whose every update goes
/// through [`KRmw::apply`], which enforces that values stay in `0..k`.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_rmw::KRmw;
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let r = KRmw::new(&mut mem, 3, 0);
/// // Saturating increment on the domain {0, 1, 2}.
/// let old = r.apply(&mem, Pid(0), |x| (x + 1).min(2));
/// assert_eq!(old, 0);
/// assert_eq!(r.read(&mem, Pid(0)), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KRmw {
    reg: AtomicId,
    k: Word,
}

impl KRmw {
    /// Allocate a register over the domain `0..k`, initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `init >= k`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, k: Word, init: Word) -> Self {
        assert!(k >= 2, "a register needs at least two values");
        assert!(init < k, "initial value outside the domain");
        Self {
            reg: mem.alloc_atomic(init),
            k,
        }
    }

    /// Domain size.
    pub fn k(&self) -> Word {
        self.k
    }

    /// Atomically replace the contents `x` by `f(x)`, returning `x`.
    ///
    /// # Panics
    ///
    /// Panics (inside the atomic step) if `f` leaves the domain — the type
    /// system cannot see `k`, so this is enforced dynamically.
    pub fn apply<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, f: impl Fn(Word) -> Word) -> Word {
        let k = self.k;
        mem.rmw(pid, self.reg, &move |x| {
            let y = f(x);
            assert!(y < k, "RMW result {y} outside domain 0..{k}");
            y
        })
    }

    /// Linearizable read.
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Word {
        mem.atomic_read(pid, self.reg)
    }

    /// Non-atomic reset.
    pub fn reset<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, value: Word) {
        assert!(value < self.k);
        mem.atomic_write(pid, self.reg, value);
    }
}

/// A sticky bit simulated by one **3-valued** RMW register — the paper's
/// observation that "an atomic Sticky-Bit is trivially simulated by an
/// atomic 2-bit RMW" (Section 7), i.e. the constructive half of the
/// hierarchy collapse: 3-valued RMW ⟹ sticky bit ⟹ universality.
///
/// Encoding: `0 = ⊥`, `1 = Zero`, `2 = One`.
#[derive(Debug, Clone, Copy)]
pub struct RmwStickyBit {
    cell: KRmw,
}

impl RmwStickyBit {
    /// Allocate the 3-valued register.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            cell: KRmw::new(mem, 3, 0),
        }
    }

    /// `Jam(v)` per Definition 4.1, in a single RMW.
    pub fn jam<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, v: bool) -> JamOutcome {
        let enc = v as Word + 1;
        let old = self
            .cell
            .apply(mem, pid, move |x| if x == 0 { enc } else { x });
        if old == 0 || old == enc {
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        }
    }

    /// `Read` per Definition 4.1.
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Tri {
        match self.cell.read(mem, pid) {
            0 => Tri::Undef,
            1 => Tri::Zero,
            _ => Tri::One,
        }
    }

    /// `Flush` (non-atomic, Definition 4.1 caveat).
    pub fn flush<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.cell.reset(mem, pid, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{
        run_uniform, EpisodeResult, Explorer, HistoryRecorder, RunOptions, Scripted, SimMem,
    };
    use sbu_spec::linearize::check;
    use sbu_spec::specs::{StickyOp, StickyResp, StickySpec};
    use std::sync::Arc;

    #[test]
    fn krmw_enforces_domain() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let r = KRmw::new(&mut mem, 4, 3);
        assert_eq!(r.k(), 4);
        assert_eq!(r.apply(&mem, Pid(0), |x| x.saturating_sub(1)), 3);
        assert_eq!(r.read(&mem, Pid(0)), 2);
        r.reset(&mem, Pid(0), 0);
        assert_eq!(r.read(&mem, Pid(0)), 0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn krmw_rejects_escaping_update() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let r = KRmw::new(&mut mem, 2, 0);
        r.apply(&mem, Pid(0), |x| x + 5);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn krmw_rejects_degenerate_domain() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let _ = KRmw::new(&mut mem, 1, 0);
    }

    #[test]
    fn rmw_sticky_bit_sequential_semantics() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let sb = RmwStickyBit::new(&mut mem);
        assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
        assert_eq!(sb.jam(&mem, Pid(0), true), JamOutcome::Success);
        assert_eq!(sb.jam(&mem, Pid(1), true), JamOutcome::Success);
        assert_eq!(sb.jam(&mem, Pid(2), false), JamOutcome::Fail);
        assert_eq!(sb.read(&mem, Pid(2)), Tri::One);
        sb.flush(&mem, Pid(0));
        assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
    }

    /// The collapse, checked: the 3-valued-RMW sticky bit is linearizable
    /// against the sticky-bit specification over all schedules (3 procs,
    /// one crash allowed).
    #[test]
    fn rmw_sticky_bit_exhaustively_linearizable() {
        let explorer = Explorer {
            max_schedules: 3_000_000,
            max_failures: 1,
        };
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(3);
            let sb = RmwStickyBit::new(&mut mem);
            let rec: Arc<HistoryRecorder<StickyOp, StickyResp>> = Arc::new(HistoryRecorder::new());
            let rec2 = Arc::clone(&rec);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                3,
                move |mem, pid| match pid.0 {
                    0 => {
                        rec2.record(mem, pid, StickyOp::Jam(true), || {
                            match sb.jam(mem, pid, true) {
                                JamOutcome::Success => StickyResp::Success,
                                JamOutcome::Fail => StickyResp::Fail,
                            }
                        });
                    }
                    1 => {
                        rec2.record(mem, pid, StickyOp::Jam(false), || {
                            match sb.jam(mem, pid, false) {
                                JamOutcome::Success => StickyResp::Success,
                                JamOutcome::Fail => StickyResp::Fail,
                            }
                        });
                    }
                    _ => {
                        rec2.record(mem, pid, StickyOp::Read, || {
                            StickyResp::Value(sb.read(mem, pid))
                        });
                    }
                },
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let h = rec.history();
                if !check(&h, StickySpec::new()).is_linearizable() {
                    return Err(format!("not linearizable: {h:?}"));
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn native_concurrent_jams_have_one_sticking_value() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let sb = RmwStickyBit::new(&mut mem);
        let mem = Arc::new(mem);
        let outcomes: Vec<(bool, JamOutcome)> = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let mem = Arc::clone(&mem);
                    s.spawn(move || {
                        let bit = i % 2 == 0;
                        (bit, sb.jam(&*mem, Pid(i), bit))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let winner = sb.read(&*mem, Pid(0)).bit().unwrap();
        for (bit, out) in outcomes {
            assert_eq!(out.is_success(), bit == winner);
        }
    }
}
