//! Test-and-set: the first level of the RMW hierarchy.
//!
//! A TAS bit supports `test_and_set()` (atomically set the bit, returning
//! the old value) and `read()`. The backends provide it as a primitive;
//! here we additionally *construct* it from sticky bits via leader election,
//! demonstrating that the universal primitive subsumes level 1.

use sbu_mem::{Pid, WordMem};
use sbu_spec::SequentialSpec;
use sbu_sticky::LeaderElection;

/// Sequential specification of a test-and-set bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TasSpec {
    set: bool,
}

/// Commands accepted by [`TasSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasOp {
    /// Set the bit; respond with its previous value.
    TestAndSet,
    /// Read the bit.
    Read,
}

/// Responses produced by [`TasSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasResp {
    /// Previous value returned by a test-and-set.
    Old(bool),
    /// Current value returned by a read.
    Value(bool),
}

impl TasSpec {
    /// A cleared TAS bit.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SequentialSpec for TasSpec {
    type Op = TasOp;
    type Resp = TasResp;

    fn apply(&mut self, op: &TasOp) -> TasResp {
        match op {
            TasOp::TestAndSet => {
                let old = self.set;
                self.set = true;
                TasResp::Old(old)
            }
            TasOp::Read => TasResp::Value(self.set),
        }
    }
}

/// A one-shot test-and-set bit built from sticky bits.
///
/// `test_and_set` runs a leader election among the callers (jamming ids
/// into a sticky byte, Section 4); the unique winner observes `false`, all
/// others — and all later callers — observe `true`. The linearization point
/// of the winner's operation is the step that completed the election.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_rmw::StickyTas;
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let t = StickyTas::new(&mut mem, 2);
/// assert!(!t.test_and_set(&mem, Pid(1))); // first caller wins
/// assert!(t.test_and_set(&mem, Pid(0)));
/// assert!(t.read(&mem, Pid(0)));
/// ```
#[derive(Debug, Clone)]
pub struct StickyTas {
    election: LeaderElection,
}

impl StickyTas {
    /// Allocate for processors `0..n`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize) -> Self {
        Self {
            election: LeaderElection::new(mem, n),
        }
    }

    /// Atomically set the bit, returning its previous value.
    pub fn test_and_set<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> bool {
        self.election.elect(mem, pid) != pid
    }

    /// Whether the bit is set.
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> bool {
        self.election.leader(mem, pid).is_some()
    }

    /// Non-atomic reset (Definition 4.1 caveat).
    pub fn reset<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.election.flush(mem, pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{
        run_uniform, EpisodeResult, Explorer, HistoryRecorder, RunOptions, Scripted, SimMem,
    };
    use sbu_spec::linearize::check;
    use std::sync::Arc;

    #[test]
    fn tas_spec_semantics() {
        let mut t = TasSpec::new();
        assert_eq!(t.apply(&TasOp::Read), TasResp::Value(false));
        assert_eq!(t.apply(&TasOp::TestAndSet), TasResp::Old(false));
        assert_eq!(t.apply(&TasOp::TestAndSet), TasResp::Old(true));
        assert_eq!(t.apply(&TasOp::Read), TasResp::Value(true));
    }

    #[test]
    fn exactly_one_winner_exhaustively_with_crashes() {
        let explorer = Explorer {
            max_schedules: 2_000_000,
            max_failures: 1,
        };
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let t = StickyTas::new(&mut mem, 2);
            let t2 = t.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| t2.test_and_set(mem, pid),
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let winners = out
                    .results()
                    .into_iter()
                    .filter(|&&got_true| !got_true)
                    .count();
                if winners > 1 {
                    return Err(format!("{winners} winners"));
                }
                if out.completed_count() == 2 && winners != 1 {
                    return Err("both completed but no winner".into());
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn linearizable_against_tas_spec() {
        let explorer = Explorer::new(2_000_000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let t = StickyTas::new(&mut mem, 2);
            let t2 = t.clone();
            let rec: Arc<HistoryRecorder<TasOp, TasResp>> = Arc::new(HistoryRecorder::new());
            let rec2 = Arc::clone(&rec);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    if pid.0 == 0 {
                        rec2.record(mem, pid, TasOp::TestAndSet, || {
                            TasResp::Old(t2.test_and_set(mem, pid))
                        });
                    } else {
                        rec2.record(mem, pid, TasOp::Read, || TasResp::Value(t2.read(mem, pid)));
                        rec2.record(mem, pid, TasOp::TestAndSet, || {
                            TasResp::Old(t2.test_and_set(mem, pid))
                        });
                    }
                },
            );
            let verdict = (|| {
                out.assert_clean();
                let h = rec.history();
                if !check(&h, TasSpec::new()).is_linearizable() {
                    return Err(format!("not linearizable: {h:?}"));
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn native_contention_has_one_winner() {
        for _ in 0..10 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let n = 8;
            let t = StickyTas::new(&mut mem, n);
            let mem = Arc::new(mem);
            let wins: usize = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        let t = t.clone();
                        s.spawn(move || !t.test_and_set(&*mem, Pid(i)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap() as usize)
                    .sum()
            });
            assert_eq!(wins, 1);
            assert!(t.read(&*mem, Pid(0)));
        }
    }

    #[test]
    fn reset_reopens_the_bit() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let t = StickyTas::new(&mut mem, 2);
        assert!(!t.test_and_set(&mem, Pid(0)));
        t.reset(&mem, Pid(1));
        assert!(!t.read(&mem, Pid(1)));
        assert!(!t.test_and_set(&mem, Pid(1)));
    }
}
