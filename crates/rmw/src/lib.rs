//! # sbu-rmw — the Read-Modify-Write hierarchy and its collapse (Sections 1 & 7)
//!
//! The paper's second headline result: although
//!
//! * safe registers cannot implement wait-free 2-processor consensus
//!   (Dolev–Dwork–Stockmeyer, Chor–Israeli–Li — the paper's refs \[4, 5\]),
//! * and 1-bit RMW (test-and-set) cannot implement wait-free 3-processor
//!   consensus (Herlihy, Loui–Abu-Amara — refs \[7, 10\]),
//!
//! the hierarchy **collapses at the third level**: a 3-valued RMW register
//! is enough to implement a sticky bit, the sticky bit is universal
//! (Sections 5–6, `sbu-core`), and therefore *any* RMW — indeed any
//! sequential object — has a bounded wait-free implementation from 3-valued
//! RMW.
//!
//! What this crate provides:
//!
//! * [`tas::StickyTas`] — test-and-set built from sticky bits via leader
//!   election (level 1 from the universal primitive), and
//!   [`tas::TasSpec`], its sequential specification;
//! * [`two_consensus::TasTwoConsensus`] — the classic 2-processor consensus
//!   from one TAS plus registers (level 1 *does* exceed level 0);
//! * [`kvalued::KRmw`] — a k-valued RMW register with domain enforcement,
//!   and [`kvalued::RmwStickyBit`] — a sticky bit from a 3-valued RMW
//!   (the constructive collapse; universality then follows via `sbu-core`);
//! * [`impossibility`] — *empirical* separations: natural wait-free
//!   protocols for 2-consensus-from-registers and
//!   3-consensus-from-TAS, with the schedule explorer exhibiting the
//!   adversarial interleavings the impossibility proofs construct. (A
//!   failing protocol is evidence, not proof — the module documents the
//!   correspondence to the published proofs.)
//!
//! The remaining direction of the collapse — an arbitrary k-valued RMW
//! object implemented *from sticky bits* — is an instance of the universal
//! construction and lives in `sbu-core` (see the `rmw_from_sticky` API and
//! the workspace integration tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod impossibility;
pub mod kvalued;
pub mod tas;
pub mod two_consensus;

pub use kvalued::{KRmw, RmwStickyBit};
pub use tas::{StickyTas, TasSpec};
pub use two_consensus::TasTwoConsensus;
