//! The locality fast paths (frontier cursor, helping-scan combining, GFC
//! free-list hints — `UniversalConfig::fast_paths`) are pure optimizations:
//! every hint is validated under the same grab/jam protocol as a full scan,
//! so the set of reachable outcomes must be *identical* to the paper's
//! full-scan construction. This file checks that mechanically:
//!
//! * DPOR exploration of both configurations on the same workload reports
//!   zero violations, and the outcome sets reached within the same
//!   schedule budget are identical, on 2 and 3 processors;
//! * a random-schedule sweep (cheap enough for hundreds of runs) shows the
//!   two configurations reach the identical and *complete* outcome set —
//!   every linearization order of the increments;
//! * a property test drives the combining helper with random schedules and
//!   checks no announced command is ever dropped or applied twice.

use proptest::prelude::*;
use sbu_core::{bounded::UniversalConfig, CellPayload, Universal};
use sbu_sim::{
    run_uniform, Adversary, EpisodeResult, Explorer, RandomAdversary, RunOptions, Scripted, SimMem,
};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::cell::RefCell;
use std::collections::BTreeSet;

type Mem = SimMem<CellPayload<CounterSpec>>;

/// One episode: `n` processors, one `Inc` each, under the given adversary.
/// The verdict (a schedule-equivalence invariant: responses and final
/// state only) checks the responses form a permutation of `1..=n`; the
/// reached response vector is added to `outcomes`.
fn episode(
    n: usize,
    config: UniversalConfig,
    adversary: Box<dyn Adversary>,
    outcomes: &RefCell<BTreeSet<Vec<u64>>>,
) -> EpisodeResult {
    let mut mem: Mem = SimMem::new(n);
    let obj = Universal::builder(n)
        .config(config)
        .build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        adversary,
        RunOptions {
            max_steps: 10_000_000,
        },
        n,
        move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
    );
    let verdict = (|| {
        if !out.violations.is_empty() {
            return Err(format!("violations: {:?}", out.violations));
        }
        if out.aborted {
            return Err("aborted (wait-freedom?)".into());
        }
        let responses: Vec<u64> = out.results().into_iter().copied().collect();
        let mut sorted = responses.clone();
        sorted.sort_unstable();
        if sorted != (1..=n as u64).collect::<Vec<_>>() {
            return Err(format!("responses {responses:?} not a permutation"));
        }
        outcomes.borrow_mut().insert(responses);
        Ok(())
    })();
    EpisodeResult::from_outcome(&out, verdict)
}

/// DPOR-explore a bounded prefix; panic on any violating schedule, return
/// the outcome set reached.
fn dpor_outcome_set(n: usize, config: UniversalConfig, budget: usize) -> BTreeSet<Vec<u64>> {
    let outcomes: RefCell<BTreeSet<Vec<u64>>> = RefCell::new(BTreeSet::new());
    let report = Explorer::new(budget).explore_dpor(|script| {
        episode(
            n,
            config,
            Box::new(Scripted::new(script.to_vec())),
            &outcomes,
        )
    });
    report.assert_no_failures();
    assert!(report.schedules >= budget.min(2), "exploration barely ran");
    outcomes.into_inner()
}

/// Run `seeds` random schedules; panic on any violating run, return the
/// outcome set reached.
fn random_outcome_set(n: usize, config: UniversalConfig, seeds: u64) -> BTreeSet<Vec<u64>> {
    let outcomes: RefCell<BTreeSet<Vec<u64>>> = RefCell::new(BTreeSet::new());
    for seed in 0..seeds {
        let result = episode(n, config, Box::new(RandomAdversary::new(seed)), &outcomes);
        if let Err(msg) = result.verdict {
            panic!("seed {seed}: {msg}");
        }
    }
    outcomes.into_inner()
}

/// Every permutation of `1..=n` as a response vector — the full outcome
/// set of `n` concurrent increments.
fn all_permutations(n: usize) -> BTreeSet<Vec<u64>> {
    fn go(rest: &mut Vec<u64>, acc: &mut Vec<u64>, out: &mut BTreeSet<Vec<u64>>) {
        if rest.is_empty() {
            out.insert(acc.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            acc.push(v);
            go(rest, acc, out);
            acc.pop();
            rest.insert(i, v);
        }
    }
    let mut out = BTreeSet::new();
    go(&mut (1..=n as u64).collect(), &mut Vec::new(), &mut out);
    out
}

/// Two processors: DPOR (one representative per Mazurkiewicz trace) over
/// the same bounded prefix finds zero violations in either configuration
/// and reaches the identical outcome set. The full trees are far too large
/// to exhaust, so completeness of the outcome set is the random sweep's
/// job below; here the claim is systematic exploration agrees.
#[test]
fn dpor_outcome_sets_match_on_two_procs() {
    let budget = 150;
    let fast = dpor_outcome_set(2, UniversalConfig::for_procs(2), budget);
    let paper = dpor_outcome_set(2, UniversalConfig::for_procs(2).paper_scans(), budget);
    assert_eq!(fast, paper, "fast paths changed the reachable outcomes");
}

/// Three processors: same property, smaller budget (episodes are longer
/// and DPOR's race analysis is quadratic in trace length).
#[test]
fn dpor_outcome_sets_match_on_three_procs() {
    let budget = 40;
    let fast = dpor_outcome_set(3, UniversalConfig::for_procs(3), budget);
    let paper = dpor_outcome_set(3, UniversalConfig::for_procs(3).paper_scans(), budget);
    assert_eq!(fast, paper, "fast paths changed the reachable outcomes");
}

/// Random schedules reach every linearization order cheaply; across
/// hundreds of them the fast-path and paper-scan outcome sets must both be
/// the complete permutation set — the fast paths neither add outcomes nor
/// lose reachable ones.
#[test]
fn random_schedules_reach_identical_complete_outcome_sets() {
    for n in [2usize, 3] {
        let seeds = 120;
        let fast = random_outcome_set(n, UniversalConfig::for_procs(n), seeds);
        let paper = random_outcome_set(n, UniversalConfig::for_procs(n).paper_scans(), seeds);
        assert_eq!(fast, paper, "n={n}: outcome sets diverge");
        assert_eq!(
            fast,
            all_permutations(n),
            "n={n}: some linearization order was never reached"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Combining soundness: under random schedules, every announced
    /// increment is applied exactly once — the counter's responses are
    /// exactly the multiset {1, …, total}, each processor's own responses
    /// strictly increase (its commands are not reordered), and the final
    /// total equals the number of operations issued. A dropped command
    /// would shrink the multiset; a duplicated one would repeat a value.
    #[test]
    fn combining_never_drops_or_duplicates_commands(
        n in 2usize..4,
        ops_per_proc in 1usize..4,
        script in prop::collection::vec(0usize..3, 0..160),
    ) {
        let mut mem: Mem = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let responses: std::sync::Arc<parking_lot::Mutex<Vec<Vec<u64>>>> =
            std::sync::Arc::new(parking_lot::Mutex::new(vec![Vec::new(); n]));
        let responses2 = std::sync::Arc::clone(&responses);
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script)),
            RunOptions { max_steps: 20_000_000 },
            n,
            move |mem, pid| {
                for _ in 0..ops_per_proc {
                    let r = obj2.apply(mem, pid, &CounterOp::Inc);
                    responses2.lock()[pid.0].push(r);
                }
            },
        );
        prop_assert!(out.violations.is_empty(), "{:?}", out.violations);
        prop_assert!(!out.aborted, "aborted (wait-freedom?)");

        let total = n * ops_per_proc;
        let per_proc = responses.lock().clone();
        for (i, rs) in per_proc.iter().enumerate() {
            prop_assert_eq!(rs.len(), ops_per_proc, "p{} lost a response", i);
            prop_assert!(
                rs.windows(2).all(|w| w[0] < w[1]),
                "p{}'s responses {:?} not strictly increasing", i, rs
            );
        }
        let mut all: Vec<u64> = per_proc.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(
            all,
            (1..=total as u64).collect::<Vec<_>>(),
            "a command was dropped or duplicated"
        );
        let read = obj.apply(&mem, sbu_mem::Pid(0), &CounterOp::Read);
        prop_assert_eq!(read, total as u64);
    }
}
