//! Unit-level checks of the Figures 4–6 protocols, driven through the
//! public `apply` surface with *scripted* schedules so specific interleaved
//! windows are exercised deterministically.

use sbu_core::{bounded::UniversalConfig, CellPayload, Universal};
use sbu_mem::{Pid, Tri};
use sbu_sim::{run_uniform, RoundRobin, RunOptions, Scripted, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};

type Mem = SimMem<CellPayload<CounterSpec>>;

fn build(n: usize) -> (Mem, Universal<CounterSpec>) {
    let mut mem: Mem = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    (mem, obj)
}

/// Sequential smoke through every protocol: the list grows, cells get
/// claimed, snapshots appear, reclamation eventually fires.
#[test]
fn protocol_lifecycle_sequential() {
    let (mem, obj) = build(2);
    // Interleave two processors round-robin for many ops.
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(RoundRobin::new()),
        RunOptions {
            max_steps: 50_000_000,
        },
        2,
        move |mem, pid| {
            for _ in 0..30 {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    out.assert_clean();
    assert_eq!(obj.apply(&mem, Pid(0), &CounterOp::Read), 60);
    // Reclamation kept the working set under the pool size despite 60 ops
    // through 36 cells.
    let live = obj.cells_in_use(&mem, Pid(0));
    assert!(live < obj.pool_size(), "live {live}");
}

/// GRAB blocks INIT (Lemma 6.1), exercised at the object level: the flush
/// overlap monitor stays silent across a full mixed run — if the handshake
/// were broken, the simulator would flag `flush during jam/read` on the
/// cells' sticky fields.
#[test]
fn reclamation_never_overlaps_access() {
    for seed in 0..15u64 {
        let (mem, obj) = build(3);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(sbu_sim::RandomAdversary::new(seed)),
            RunOptions {
                max_steps: 50_000_000,
            },
            3,
            move |mem, pid| {
                for _ in 0..12 {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        // The entire point: INIT's flushes raced nothing, ever.
        assert!(
            out.violations.is_empty(),
            "seed {seed}: GRAB/INIT handshake broken: {:?}",
            out.violations
        );
        assert!(!out.aborted);
    }
}

/// The anchor cell is never reclaimed: after heavy traffic it still holds
/// a state and stays claimed.
#[test]
fn anchor_is_immortal() {
    let (mem, obj) = build(2);
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(RoundRobin::new()),
        RunOptions {
            max_steps: 50_000_000,
        },
        2,
        move |mem, pid| {
            for _ in 0..25 {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    out.assert_clean();
    // Anchor = pool index 0; `cells_in_use` counts claimed cells and the
    // anchor is always claimed.
    assert!(obj.cells_in_use(&mem, Pid(0)) >= 1);
}

/// Deterministic single-step interleaving: two processors, fully scripted
/// lowest-pid-first schedule. p0 completes both its ops before p1 runs at
/// all; responses must be 1,2 then 3,4.
#[test]
fn scripted_sequentialization_orders_responses() {
    let (mem, obj) = build(2);
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(vec![])),
        RunOptions {
            max_steps: 50_000_000,
        },
        2,
        move |mem, pid| {
            let a = obj2.apply(mem, pid, &CounterOp::Inc);
            let b = obj2.apply(mem, pid, &CounterOp::Inc);
            (a, b)
        },
    );
    out.assert_clean();
    let rs: Vec<(u64, u64)> = out.results().into_iter().copied().collect();
    assert_eq!(rs, vec![(1, 2), (3, 4)]);
}

/// Pool exhaustion is loud, not silent: a deliberately undersized pool
/// makes the run abort at the step limit (GFC spins), never corrupts.
#[test]
fn undersized_pool_aborts_cleanly() {
    let n = 2;
    let mut mem: Mem = SimMem::new(n);
    // Minimum the constructor accepts: 2n+2 = 6 cells. Two processors
    // churning ops need more once marks lag.
    let obj = Universal::builder(n)
        .config(UniversalConfig::with_cells(2 * n + 2))
        .build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(RoundRobin::new()),
        RunOptions { max_steps: 400_000 },
        n,
        move |mem, pid| {
            for _ in 0..40 {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    // Either it manages (reclamation is tight) or it aborts; it must never
    // produce a wrong count or a violation.
    assert!(out.violations.is_empty());
    if !out.aborted {
        assert_eq!(obj.apply(&mem, Pid(0), &CounterOp::Read), 80);
    }
}

/// Post-run pool forensics: every claimed non-anchor cell belongs to a real
/// processor, and unclaimed cells hold no sticky residue that would confuse
/// a future GFC (ProcID may be prepared, but Next/Prev must be ⊥ on never-
/// appended cells).
#[test]
fn pool_invariants_after_run() {
    let (mem, obj) = build(3);
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(sbu_sim::RandomAdversary::new(99)),
        RunOptions {
            max_steps: 50_000_000,
        },
        3,
        move |mem, pid| {
            for _ in 0..8 {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    out.assert_clean();
    let snap = obj.debug_pool_snapshot(&mem, Pid(0));
    for (i, cell) in snap.iter().enumerate() {
        if let Some(owner) = cell.owner {
            assert!(owner <= 3, "cell {i}: owner {owner} out of range");
        }
        if cell.claimed == Tri::Undef {
            // Free or merely prepared: never linked into the list.
            assert!(
                cell.next.is_none() && cell.prev.is_none(),
                "cell {i}: unclaimed but linked"
            );
        }
    }
    let _ = mem.census();

    // Lemma 6.3 (one observation point): at most n cells are prepared for
    // any processor (ProcID = i, Claimed = ⊥) at a time.
    for i in 0..3u64 {
        let prepared = snap
            .iter()
            .filter(|c| c.owner == Some(i) && c.claimed == Tri::Undef)
            .count();
        assert!(prepared <= 3, "p{i}: {prepared} prepared cells (Lemma 6.3)");
    }
}

/// Bounded-exhaustive exploration of the universal construction itself:
/// two processors, one increment each, every schedule in a DFS prefix —
/// the strongest check we can afford on the full protocol (the complete
/// tree is astronomically large; the prefix systematically covers all the
/// early divergences, which is where GFC and APPEND race).
#[test]
fn bounded_exhaustive_prefix_of_universal_counter() {
    use sbu_sim::{EpisodeResult, Explorer};
    let explorer = Explorer::new(2_500);
    let report = explorer.explore(|script| {
        let mut mem: Mem = SimMem::new(2);
        let obj = Universal::builder(2).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions {
                max_steps: 10_000_000,
            },
            2,
            move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
        );
        let verdict = (|| {
            if !out.violations.is_empty() {
                return Err(format!("violations: {:?}", out.violations));
            }
            if out.aborted {
                return Err("aborted (wait-freedom?)".into());
            }
            let mut rs: Vec<u64> = out.results().into_iter().copied().collect();
            rs.sort_unstable();
            if rs != vec![1, 2] {
                return Err(format!("responses {rs:?}"));
            }
            let total = obj.apply(&mem, Pid(0), &CounterOp::Read);
            if total != 2 {
                return Err(format!("total {total}"));
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_no_failures();
    assert!(report.schedules >= 2_500, "prefix fully explored");
}

/// The same DFS prefix with one crash decision allowed anywhere.
#[test]
fn bounded_exhaustive_prefix_with_crashes() {
    use sbu_sim::{EpisodeResult, Explorer};
    let explorer = Explorer::new(1_500);
    let report = explorer.explore(|script| {
        let mut mem: Mem = SimMem::new(2);
        let obj = Universal::builder(2).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
            RunOptions {
                max_steps: 10_000_000,
            },
            2,
            move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
        );
        let verdict = (|| {
            if !out.violations.is_empty() {
                return Err(format!("violations: {:?}", out.violations));
            }
            if out.aborted {
                return Err("aborted (survivor wedged?)".into());
            }
            // Completed increments return distinct values; the total must
            // account for every completed op (crashed op may or may not
            // have landed).
            let completed: Vec<u64> = out.results().into_iter().copied().collect();
            let total = obj.apply(&mem, Pid(0), &CounterOp::Read);
            if (total as usize) < completed.len() || total > 2 {
                return Err(format!("total {total} vs completed {completed:?}"));
            }
            for r in &completed {
                if *r == 0 || *r > total {
                    return Err(format!("response {r} out of range (total {total})"));
                }
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_no_failures();
}

/// CHESS-style bounded-exhaustive exploration: ALL schedules of the
/// universal counter with at most one preemption. This covers every
/// "suspend a processor at an arbitrary protocol point and let the other
/// run to completion" scenario — the shape of most helping bugs — and the
/// tree is small enough to exhaust completely.
#[test]
fn exhaustive_all_one_preemption_schedules() {
    use sbu_sim::{EpisodeResult, Explorer};
    let explorer = Explorer {
        max_schedules: 100_000,
        max_failures: 1,
    };
    let report = explorer.explore(|script| {
        let mut mem: Mem = SimMem::new(2);
        let obj = Universal::builder(2).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec()).with_preemption_bound(1)),
            RunOptions {
                max_steps: 10_000_000,
            },
            2,
            move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
        );
        let verdict = (|| {
            out.assert_clean();
            let mut rs: Vec<u64> = out.results().into_iter().copied().collect();
            rs.sort_unstable();
            if rs != vec![1, 2] {
                return Err(format!("responses {rs:?}"));
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_all_ok();
    // The tree must be non-trivial (every suspension point × both starters).
    assert!(
        report.schedules > 500,
        "only {} schedules: preemption bounding broken?",
        report.schedules
    );
}

/// A bounded-exhaustive DFS prefix of the ≤2-preemption schedule tree —
/// one level beyond the complete 1-preemption exhaustion above, covering
/// "suspend, let the other run a while, suspend it too" shapes.
#[test]
fn bounded_exhaustive_two_preemption_prefix() {
    use sbu_sim::{EpisodeResult, Explorer};
    let explorer = Explorer {
        max_schedules: 4_000,
        max_failures: 1,
    };
    let report = explorer.explore(|script| {
        let mut mem: Mem = SimMem::new(2);
        let obj = Universal::builder(2).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec()).with_preemption_bound(2)),
            RunOptions {
                max_steps: 10_000_000,
            },
            2,
            move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
        );
        let verdict = (|| {
            out.assert_clean();
            let mut rs: Vec<u64> = out.results().into_iter().copied().collect();
            rs.sort_unstable();
            if rs != vec![1, 2] {
                return Err(format!("responses {rs:?}"));
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_no_failures();
}
