//! The consensus-parameterized universal construction: the title claim
//! checked with two very different consensus objects — one sticky word per
//! cell (deterministic) and randomized consensus from registers only.

use sbu_core::{CellPayload, ConsensusUniversal};
use sbu_mem::Pid;
use sbu_sim::{run_uniform, HistoryRecorder, RandomAdversary, RunOptions, SimMem};
use sbu_spec::linearize::check;
use sbu_spec::specs::{CounterOp, CounterSpec, QueueOp, QueueResp, QueueSpec};
use sbu_sticky::consensus::StickyWordConsensus;
use sbu_sticky::BitwiseConsensus;
use sbu_sticky::RandomizedConsensus;
use std::sync::Arc;

#[test]
fn sticky_word_consensus_universal_counter_fuzz() {
    for seed in 0..15 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj =
            ConsensusUniversal::new(&mut mem, n, 6, CounterSpec::new(), StickyWordConsensus::new);
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed).with_crashes(1, 5_000)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for _ in 0..3 {
                    rec2.record(mem, pid, CounterOp::Inc, || {
                        obj2.apply(mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        assert!(!out.aborted, "seed {seed}");
        assert!(
            out.violations.is_empty(),
            "seed {seed}: {:?}",
            out.violations
        );
        let h = rec.history();
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// The paper's randomized corollary, end to end: a wait-free queue whose
/// only agreement mechanism is randomized consensus over atomic registers.
#[test]
fn randomized_registers_only_universal_queue() {
    for seed in 0..8 {
        let n = 2;
        let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
        // Successor consensus = multi-valued-from-binary over randomized
        // binary consensus: registers only, all the way down.
        let arena = 1 + n * 4;
        let width = 64 - (arena as u64).leading_zeros();
        let mut k = 0u64;
        let obj = ConsensusUniversal::new(&mut mem, n, 4, QueueSpec::new(), |mem| {
            BitwiseConsensus::new(mem, n, width, |mem| {
                k += 1;
                RandomizedConsensus::new(mem, n, seed * 1000 + k)
            })
        });
        // The register-only claim, verified structurally: no sticky
        // primitives of any kind were allocated.
        let (_, _, sticky_bits, sticky_words, tas, _) = mem.census();
        assert_eq!((sticky_bits, sticky_words, tas), (0, 0, 0));

        let rec: Arc<HistoryRecorder<QueueOp, QueueResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 0xBEE)),
            RunOptions {
                max_steps: 30_000_000,
            },
            n,
            move |mem, pid| {
                let ops = [
                    QueueOp::Enqueue(pid.0 as u64 + 10),
                    QueueOp::Dequeue,
                    QueueOp::Enqueue(pid.0 as u64 + 20),
                ];
                for op in ops {
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        assert!(!out.aborted, "seed {seed}");
        let h = rec.history();
        assert!(
            check(&h, QueueSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

#[test]
fn native_threads_on_consensus_universal() {
    let threads = 4;
    let per = 30;
    let mut mem = sbu_mem::native::NativeMem::new();
    let obj = ConsensusUniversal::new(
        &mut mem,
        threads,
        per + 4,
        CounterSpec::new(),
        StickyWordConsensus::new,
    );
    let mem = Arc::new(mem);
    let mut seen: Vec<u64> = std::thread::scope(|s| {
        (0..threads)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let obj = obj.clone();
                s.spawn(move || {
                    (0..per)
                        .map(|_| obj.apply(&*mem, Pid(i), &CounterOp::Inc))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    seen.sort_unstable();
    let expect: Vec<u64> = (1..=(threads * per) as u64).collect();
    assert_eq!(seen, expect, "increments are totally ordered");
}
