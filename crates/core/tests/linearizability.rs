//! The central correctness claim (Definition 3.1 / Theorem 6.6): under
//! adversarial scheduling — including hostile corrupt reads and crashes —
//! every history produced by the universal constructions linearizes
//! against the sequential specification.

use sbu_core::{bounded::UniversalConfig, CellPayload, UnboundedUniversal, Universal};
use sbu_mem::Pid;
use sbu_sim::{run_uniform, HistoryRecorder, RandomAdversary, RunOptions, SimMem};
use sbu_spec::linearize::check;
use sbu_spec::specs::{CounterOp, CounterSpec, QueueOp, QueueResp, QueueSpec};
use std::sync::Arc;

fn queue_ops_for(pid: Pid, k: usize) -> Vec<QueueOp> {
    (0..k)
        .map(|i| {
            if (pid.0 + i).is_multiple_of(2) {
                QueueOp::Enqueue((pid.0 * 100 + i) as u64)
            } else {
                QueueOp::Dequeue
            }
        })
        .collect()
}

/// Fuzz the bounded construction on a counter: agreement of responses with
/// some linearization, across many seeds.
#[test]
fn bounded_counter_linearizable_under_fuzz() {
    for seed in 0..25 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for _ in 0..3 {
                    rec2.record(mem, pid, CounterOp::Inc, || {
                        obj2.apply(mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert_eq!(h.len(), 9);
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// Same, with hostile corrupt words (valid-looking cell indices) and up to
/// two crashes.
#[test]
fn bounded_counter_linearizable_with_crashes_and_hostile_reads() {
    for seed in 0..25 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let pool = obj.pool_size() as u64;
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(
                RandomAdversary::new(seed)
                    .with_crashes(2, 3_000)
                    .with_corrupt_palette(vec![0, 1, pool - 1, pool, u64::MAX]),
            ),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for _ in 0..3 {
                    rec2.record(mem, pid, CounterOp::Inc, || {
                        obj2.apply(mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        assert!(!out.aborted, "seed {seed}: aborted (wait-freedom broken?)");
        assert!(
            out.violations.is_empty(),
            "seed {seed}: {:?}",
            out.violations
        );
        let h = rec.history();
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// A queue under the bounded construction: mixed enqueues/dequeues.
#[test]
fn bounded_queue_linearizable_under_fuzz() {
    for seed in 0..15 {
        let n = 3;
        let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, QueueSpec::new());
        let rec: Arc<HistoryRecorder<QueueOp, QueueResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 0x5EED)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for op in queue_ops_for(pid, 3) {
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert!(
            check(&h, QueueSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// The unbounded baseline must satisfy the same property.
#[test]
fn unbounded_counter_linearizable_under_fuzz_with_crashes() {
    for seed in 0..25 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = UnboundedUniversal::new(&mut mem, n, 8, CounterSpec::new());
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed).with_crashes(1, 5_000)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for _ in 0..4 {
                    rec2.record(mem, pid, CounterOp::Inc, || {
                        obj2.apply(mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        assert!(!out.aborted, "seed {seed}");
        assert!(
            out.violations.is_empty(),
            "seed {seed}: {:?}",
            out.violations
        );
        let h = rec.history();
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// A queue on the unbounded baseline.
#[test]
fn unbounded_queue_linearizable_under_fuzz() {
    for seed in 0..15 {
        let n = 3;
        let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
        let obj = UnboundedUniversal::new(&mut mem, n, 8, QueueSpec::new());
        let rec: Arc<HistoryRecorder<QueueOp, QueueResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed * 31)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for op in queue_ops_for(pid, 3) {
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert!(
            check(&h, QueueSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// Two processors, heavier per-seed load, on the bounded construction —
/// cell reuse kicks in within a single run.
#[test]
fn bounded_two_procs_long_run_linearizable() {
    for seed in 0..10 {
        let n = 2;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 0xFACE)),
            RunOptions {
                max_steps: 10_000_000,
            },
            n,
            move |mem, pid| {
                for i in 0..20 {
                    let op = if i % 5 == 4 {
                        CounterOp::Read
                    } else {
                        CounterOp::Inc
                    };
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert_eq!(h.len(), 40);
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}"
        );
        // Reuse must have happened: 40 ops through a 36-cell pool.
        assert!(obj.pool_size() < 40);
    }
}

/// The locality fast paths (§7 extension) must not change correctness:
/// same fuzz as above, hints enabled, crashes and hostile reads included.
#[test]
fn bounded_with_head_hints_linearizable() {
    for seed in 0..20 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n)
            .config(UniversalConfig::for_procs(n).with_fast_paths())
            .build(&mut mem, CounterSpec::new());
        let pool = obj.pool_size() as u64;
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(
                RandomAdversary::new(seed ^ 0x41B1)
                    .with_crashes(1, 3_000)
                    .with_corrupt_palette(vec![0, 1, pool - 1, pool, u64::MAX]),
            ),
            RunOptions {
                max_steps: 20_000_000,
            },
            n,
            move |mem, pid| {
                for i in 0..4 {
                    let op = if i % 4 == 3 {
                        CounterOp::Read
                    } else {
                        CounterOp::Inc
                    };
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        assert!(!out.aborted, "seed {seed}");
        assert!(out.violations.is_empty(), "seed {seed}");
        let h = rec.history();
        assert!(
            check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}
