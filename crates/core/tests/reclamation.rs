//! Theorem 6.6's space claim, exercised: the bounded construction reuses
//! its Θ(n²) pool indefinitely, while the unbounded baseline consumes one
//! cell per operation forever.

use sbu_core::{CellPayload, UnboundedUniversal, Universal};
use sbu_mem::Pid;
use sbu_sim::{run_uniform, RandomAdversary, RoundRobin, RunOptions, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};

/// Many more operations than pool cells: reuse must work, live cells must
/// stay bounded.
#[test]
fn bounded_pool_is_reused_forever() {
    let n = 2;
    let ops_each = 60; // 120 ops through a 36-cell pool
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(RoundRobin::new()),
        RunOptions {
            max_steps: 50_000_000,
        },
        n,
        move |mem, pid| {
            for _ in 0..ops_each {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    out.assert_clean();
    assert_eq!(
        obj.apply(&mem, Pid(0), &CounterOp::Read),
        (n * ops_each) as u64
    );
    // Live cells bounded well below total ops.
    let live = obj.cells_in_use(&mem, Pid(0));
    assert!(
        live <= obj.pool_size(),
        "live {live} exceeds pool {}",
        obj.pool_size()
    );
    assert!(
        live < n * ops_each / 2,
        "live {live}: reclamation is not keeping up"
    );
}

/// Same workload under an adversarial schedule.
#[test]
fn bounded_pool_reuse_under_adversary() {
    for seed in 0..5 {
        let n = 3;
        let ops_each = 25;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed)),
            RunOptions {
                max_steps: 50_000_000,
            },
            n,
            move |mem, pid| {
                for _ in 0..ops_each {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        out.assert_clean();
        assert_eq!(
            obj.apply(&mem, Pid(0), &CounterOp::Read),
            (n * ops_each) as u64,
            "seed {seed}"
        );
        // 75 ops >> 88-cell pool is fine; the point is it never exhausts.
        assert!(obj.cells_in_use(&mem, Pid(0)) <= obj.pool_size());
    }
}

/// The unbounded construction's memory grows linearly with operations —
/// the paper's critique, measured.
#[test]
fn unbounded_consumes_one_cell_per_op() {
    let n = 2;
    let ops_each = 10;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = UnboundedUniversal::new(&mut mem, n, ops_each, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(RoundRobin::new()),
        RunOptions::default(),
        n,
        move |mem, pid| {
            for _ in 0..ops_each {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    out.assert_clean();
    assert_eq!(obj.cells_consumed(&mem, Pid(0)), n * ops_each);
}

/// Exhausting the unbounded arena panics loudly (that *is* the critique).
#[test]
fn unbounded_arena_exhaustion_is_loud() {
    let mut mem: sbu_mem::native::NativeMem<CellPayload<CounterSpec>> =
        sbu_mem::native::NativeMem::new();
    let obj = UnboundedUniversal::new(&mut mem, 1, 3, CounterSpec::new());
    for _ in 0..3 {
        obj.apply(&mem, Pid(0), &CounterOp::Inc);
    }
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        obj.apply(&mem, Pid(0), &CounterOp::Inc)
    }));
    assert!(res.is_err(), "4th op must exhaust the 3-op arena");
}

/// A crashed processor leaks at most a bounded number of cells: the pool
/// still serves many subsequent operations by survivors.
#[test]
fn crash_leaks_are_bounded() {
    for seed in 0..5 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed).with_crashes(2, 2_000)),
            RunOptions {
                max_steps: 50_000_000,
            },
            n,
            move |mem, pid| {
                for _ in 0..20 {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        assert!(!out.aborted, "seed {seed}: pool exhausted after crashes?");
        assert!(out.violations.is_empty(), "seed {seed}");
    }
}
