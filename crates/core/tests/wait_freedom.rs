//! Definition 3.2, observed: every operation completes in a bounded number
//! of its own steps, no matter what the other processors do — including
//! doing nothing at all (solo termination) or dying mid-operation.
//! Contrast with the lock-based construction, which wedges.

use sbu_core::{CellPayload, SpinLockUniversal, Universal};
use sbu_mem::Pid;
use sbu_sim::{run, run_uniform, CrashPlan, RoundRobin, RunOptions, Scripted, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};

/// Solo termination: the adversary only ever schedules processor 0 (the
/// scripted policy picks the lowest waiting pid); its operations must
/// complete without anyone else taking a single step.
#[test]
fn solo_termination_under_total_starvation_of_others() {
    let n = 3;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run(
        &mem,
        // Empty script = always option 0 = lowest waiting pid: pid 0 runs
        // to completion before pid 1 starts, etc. — each runs solo.
        Box::new(Scripted::new(vec![])),
        RunOptions::default(),
        (0..n)
            .map(|_| {
                let obj = obj2.clone();
                move |mem: &SimMem<CellPayload<CounterSpec>>, pid: Pid| {
                    let mut last = 0;
                    for _ in 0..5 {
                        last = obj.apply(mem, pid, &CounterOp::Inc);
                    }
                    last
                }
            })
            .collect(),
    );
    out.assert_clean();
    assert_eq!(out.completed_count(), n);
    assert_eq!(*out.results()[2], 15);
}

/// Crash both other processors mid-operation; the survivor finishes all its
/// operations in bounded steps.
#[test]
fn survivor_completes_after_everyone_else_dies_mid_op() {
    let n = 3;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        // Let everyone run round-robin briefly, then kill pids 1 and 2.
        Box::new(CrashPlan::new(
            vec![(Pid(1), 400), (Pid(2), 800)],
            RoundRobin::new(),
        )),
        RunOptions::default(),
        n,
        move |mem, pid| {
            for _ in 0..6 {
                obj2.apply(mem, pid, &CounterOp::Inc);
            }
        },
    );
    assert!(!out.aborted);
    assert!(out.violations.is_empty());
    assert!(out.outcomes[1].is_crashed() && out.outcomes[2].is_crashed());
    assert!(out.outcomes[0].completed().is_some());
    // The survivor's operations all linearized; crashed ops may or may not
    // have. Final count ∈ [6, 18].
    let total = obj.apply(&mem, Pid(0), &CounterOp::Read);
    assert!((6..=18).contains(&total), "total {total}");
}

/// Per-operation step bound: across adversarial schedules, the maximum
/// steps any single operation consumes is bounded by a fixed budget for
/// fixed n (we measure a generous envelope; E4 measures the growth curve).
#[test]
fn per_op_steps_are_bounded() {
    let n = 3;
    let mut worst = 0u64;
    for seed in 0..10 {
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let steps = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        let steps2 = std::sync::Arc::clone(&steps);
        let out = run_uniform(
            &mem,
            Box::new(sbu_sim::RandomAdversary::new(seed)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                use sbu_mem::WordMem;
                for _ in 0..3 {
                    let t0 = mem.op_invoke(pid);
                    obj2.apply(mem, pid, &CounterOp::Inc);
                    let t1 = mem.op_return(pid);
                    steps2.lock().push(t1 - t0);
                }
            },
        );
        out.assert_clean();
        for s in steps.lock().iter() {
            worst = worst.max(*s);
        }
    }
    // Envelope: the pool has 88 cells; a full GFC + APPEND + scan is a few
    // thousand register steps under contention. The bound's existence (not
    // its constant) is the wait-freedom claim.
    assert!(worst > 0);
    assert!(
        worst < 200_000,
        "a single operation took {worst} steps — wait-freedom regression?"
    );
}

/// The lock-based strawman is NOT wait-free: identical crash scenario, and
/// the survivors never finish.
#[test]
fn lock_based_object_is_not_wait_free() {
    let n = 2;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = SpinLockUniversal::new(&mut mem, CounterSpec::new());
    let out = run_uniform(
        &mem,
        Box::new(CrashPlan::new(vec![(Pid(0), 1)], RoundRobin::new())),
        RunOptions { max_steps: 20_000 },
        n,
        move |mem, pid| obj.apply::<CounterSpec, _>(mem, pid, &CounterOp::Inc),
    );
    assert!(out.aborted, "the survivor must spin forever");
    assert_eq!(out.completed_count(), 0);
}

/// The same scenario on the bounded universal construction completes.
#[test]
fn universal_object_survives_the_lock_killer_scenario() {
    let n = 2;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    let out = run_uniform(
        &mem,
        Box::new(CrashPlan::new(vec![(Pid(0), 1)], RoundRobin::new())),
        RunOptions::default(),
        n,
        move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
    );
    assert!(!out.aborted);
    assert!(out.outcomes[1].completed().is_some());
}
