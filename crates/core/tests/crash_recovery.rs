//! Crash–restart recovery for the bounded universal construction
//! (the crash–restart PR's `sbu-core` tentpole piece).
//!
//! Shape of every test: a simulated run in which the adversary fail-stops
//! one or more processors mid-operation, then — at the quiescent point —
//! the crash is applied to the [`DurableMem`] persistency bookkeeping, the
//! victims restart, run [`Universal::recover`], and a second run issues new
//! operations from everyone. The combined two-era history must satisfy
//! **durable linearizability** ([`check_durable`]): operations completed
//! before the crash keep their effects, in-flight operations either take
//! effect (recovery re-executes an interrupted append) or vanish, and the
//! pool never wedges on the dead incarnation's announcements or grab bits.

use sbu_core::{CellPayload, Universal};
use sbu_mem::{DurableMem, Pid, TornPersist, WordMem};
use sbu_sim::{
    run_uniform, CrashPlan, HistoryRecorder, RandomAdversary, RoundRobin, RunOptions, SimMem,
};
use sbu_spec::linearize::check_durable;
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::sync::Arc;

type Mem = SimMem<CellPayload<CounterSpec>>;

struct Fixture {
    sim: Mem,
    dmem: Arc<DurableMem<Mem>>,
    obj: Universal<CounterSpec>,
    rec: Arc<HistoryRecorder<CounterOp, u64>>,
}

fn fixture(n: usize) -> Fixture {
    let sim: Mem = SimMem::new(n);
    let mut dmem = DurableMem::with_policy(sim.clone(), TornPersist::Persist);
    let obj = Universal::builder(n).build(&mut dmem, CounterSpec::new());
    Fixture {
        sim,
        dmem: Arc::new(dmem),
        obj,
        rec: Arc::new(HistoryRecorder::new()),
    }
}

impl Fixture {
    /// One simulated era: every processor runs `ops` recorded increments.
    fn era(&self, adversary: Box<dyn sbu_sim::Adversary>, n: usize, ops: usize) -> Vec<Pid> {
        let (obj, dmem, rec) = (
            self.obj.clone(),
            Arc::clone(&self.dmem),
            Arc::clone(&self.rec),
        );
        let out = run_uniform(
            &self.sim,
            adversary,
            RunOptions::default(),
            n,
            move |_, pid| {
                for _ in 0..ops {
                    rec.record(&*dmem, pid, CounterOp::Inc, || {
                        obj.apply(&*dmem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        assert!(
            !out.aborted,
            "run aborted — wait-freedom or wedge regression"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        out.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_crashed())
            .map(|(i, _)| Pid(i))
            .collect()
    }

    /// Apply the crash to the persistency model at the quiescent point,
    /// restart the victims, and run recovery. Returns the era cut.
    fn crash_restart_recover(&self, crashed: &[Pid]) -> u64 {
        let cut = self.dmem.op_invoke(Pid(0));
        if !crashed.is_empty() {
            self.dmem.crash::<CellPayload<CounterSpec>>(crashed);
            for &p in crashed {
                self.dmem.restart(p);
                self.obj.recover(&*self.dmem, p);
            }
        }
        assert!(
            self.dmem.violations().is_empty(),
            "{:?}",
            self.dmem.violations()
        );
        cut
    }
}

/// Fuzzed single-crash runs: the two-era history durably linearizes and the
/// crashed processor comes back as a full participant.
#[test]
fn bounded_counter_crash_recover_durably_linearizable() {
    for seed in 0..20 {
        let n = 3;
        let fx = fixture(n);
        let crashed = fx.era(
            Box::new(RandomAdversary::new(seed).with_crashes(1, 2_000)),
            n,
            2,
        );
        let cut = fx.crash_restart_recover(&crashed);
        let crashed2 = fx.era(Box::new(RandomAdversary::new(seed + 1_000)), n, 2);
        assert!(crashed2.is_empty(), "second era runs crash-free");

        let h = fx.rec.history();
        // A victim crashed inside op k never begins ops k+1.. of era one.
        assert!(h.len() >= 3 * n && h.len() <= 4 * n, "{}", h.len());
        let res = check_durable(&h, CounterSpec::new(), &[cut]).unwrap();
        assert!(
            res.is_linearizable(),
            "seed {seed}: two-era history not durably linearizable: {h:?}"
        );
    }
}

/// Both processors of a 2-processor system die mid-operation; each recovery
/// must close over its own interrupted append *and* the other's announced
/// one (the re-run helping pass), and the object must stay usable.
#[test]
fn full_system_crash_recovers_and_resumes() {
    for seed in 0..20 {
        let n = 2;
        let fx = fixture(n);
        let crashed = fx.era(
            Box::new(RandomAdversary::new(seed).with_crashes(2, 300)),
            n,
            2,
        );
        let cut = fx.crash_restart_recover(&crashed);
        fx.era(Box::new(RandomAdversary::new(seed + 1_000)), n, 2);

        let h = fx.rec.history();
        let res = check_durable(&h, CounterSpec::new(), &[cut]).unwrap();
        assert!(res.is_linearizable(), "seed {seed}: {h:?}");
    }
}

/// Repeated crash–recover cycles: stale announcements or grab bits from any
/// dead incarnation would wedge reclamation and (with a Θ(n²) pool) abort a
/// later run; leaked never-appended cells must stay within the pool's
/// padding. Multi-cut durable linearizability across every era.
#[test]
fn repeated_crash_recover_cycles_do_not_wedge_the_pool() {
    let n = 2;
    let fx = fixture(n);
    let mut cuts = Vec::new();
    for cycle in 0..6u64 {
        let victim = Pid((cycle % 2) as usize);
        // Fail-stop the victim a few steps into its first operation; the
        // round-robin baseline keeps both processors active until then.
        let crashed = fx.era(
            Box::new(CrashPlan::new(
                vec![(victim, 3 + 2 * cycle)],
                RoundRobin::new(),
            )),
            n,
            2,
        );
        assert_eq!(crashed, vec![victim], "cycle {cycle}");
        cuts.push(fx.crash_restart_recover(&crashed));
    }
    // A final clean era: every processor still completes operations.
    fx.era(Box::new(RandomAdversary::new(9)), n, 2);

    let h = fx.rec.history();
    let res = check_durable(&h, CounterSpec::new(), &cuts).unwrap();
    assert!(res.is_linearizable(), "multi-era history: {h:?}");
    // The pool absorbed every leak: claimed cells stay within capacity.
    let in_use = fx.obj.cells_in_use(&*fx.dmem, Pid(0));
    assert!(
        in_use < fx.obj.pool_size(),
        "{in_use} of {} cells claimed — leaks outgrew the padding",
        fx.obj.pool_size()
    );
}
