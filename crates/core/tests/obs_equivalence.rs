//! Observability is free at the schedule level for the bounded universal
//! construction: attaching a metrics registry through
//! `Universal::builder(n).obs(&registry)` never issues a shared-memory
//! step, so an instrumented object and a bare one explore *identical*
//! DPOR schedule trees and reach identical outcome sets. This is the
//! contract that lets the stress harness and experiments run with
//! metrics on without invalidating anything the model checker proved
//! about the bare object. (The sticky-byte counterpart lives in
//! `crates/sticky/tests/obs_equivalence.rs`.)

use proptest::prelude::*;
use sbu_core::{CellPayload, Universal};
use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::cell::RefCell;
use std::collections::BTreeSet;

type Mem = SimMem<CellPayload<CounterSpec>>;

/// DPOR-explore a bounded prefix of the 2-processor increment workload,
/// optionally with instruments attached, returning the schedule count and
/// the reached response-vector set.
fn explore_counter(attach: bool, budget: usize) -> (usize, BTreeSet<Vec<u64>>) {
    let n = 2;
    let registry = sbu_obs::Registry::new(n);
    let outcomes: RefCell<BTreeSet<Vec<u64>>> = RefCell::new(BTreeSet::new());
    let report = Explorer::new(budget).explore_dpor(|script| {
        let mut mem: Mem = SimMem::new(n);
        let mut builder = Universal::builder(n);
        if attach {
            builder = builder.obs(&registry);
        }
        let obj = builder.build(&mut mem, CounterSpec::new());
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions {
                max_steps: 10_000_000,
            },
            n,
            move |mem, pid| obj.apply(mem, pid, &CounterOp::Inc),
        );
        let verdict = if out.violations.is_empty() && !out.aborted {
            outcomes
                .borrow_mut()
                .insert(out.results().into_iter().copied().collect());
            Ok(())
        } else {
            Err(format!(
                "aborted={} violations={:?}",
                out.aborted, out.violations
            ))
        };
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_no_failures();
    assert!(report.schedules >= budget.min(2), "exploration barely ran");
    (report.schedules, outcomes.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// With and without instruments, DPOR visits the same number of
    /// schedules and reaches the same outcome set within the same budget —
    /// the instruments are invisible to the schedule space. (The budget is
    /// varied by the property so the equality is checked at several
    /// exploration depths, not just one.)
    #[test]
    fn instruments_do_not_perturb_the_dpor_tree(depth in 0usize..3) {
        let budget = [40usize, 90, 150][depth];
        let (bare_schedules, bare_outcomes) = explore_counter(false, budget);
        let (obs_schedules, obs_outcomes) = explore_counter(true, budget);
        prop_assert_eq!(bare_schedules, obs_schedules);
        prop_assert_eq!(bare_outcomes, obs_outcomes);
    }
}

/// Sanity check on the check itself: with the `obs` feature on, the
/// attached exploration really records (the apply loop always consults
/// the frontier, so the cursor instruments must fire) — the equivalence
/// above is not vacuous.
#[cfg(feature = "obs")]
#[test]
fn attached_exploration_actually_records() {
    let registry = sbu_obs::Registry::new(2);
    let (_, _) = {
        let outcomes: RefCell<BTreeSet<Vec<u64>>> = RefCell::new(BTreeSet::new());
        let report = Explorer::new(60).explore_dpor(|script| {
            let mut mem: Mem = SimMem::new(2);
            let obj = Universal::builder(2)
                .obs(&registry)
                .build(&mut mem, CounterSpec::new());
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions {
                    max_steps: 10_000_000,
                },
                2,
                move |mem, pid| obj.apply(mem, pid, &CounterOp::Inc),
            );
            outcomes
                .borrow_mut()
                .insert(out.results().into_iter().copied().collect());
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        report.assert_no_failures();
        (report.schedules, outcomes.into_inner())
    };
    let snap = registry.snapshot();
    assert!(
        snap.counter("core.frontier_hit") + snap.counter("core.frontier_fallback") > 0,
        "FIND-HEAD instruments must fire during exploration: {snap:?}"
    );
    assert!(
        snap.histogram("core.combine_batch")
            .is_some_and(|h| h.count > 0),
        "the helping scan must record batch sizes: {snap:?}"
    );
}
