//! Real-thread stress on the native backend: high-level invariants that
//! any linearizable implementation must keep (totals, per-producer FIFO,
//! CAS winner uniqueness, conservation of money).

use sbu_core::objects::{WaitFreeBank, WaitFreeCas, WaitFreeCounter, WaitFreeQueue};
use sbu_core::{CellPayload, Universal};
use sbu_mem::native::NativeMem;
use sbu_mem::Pid;
use sbu_spec::specs::{BankResp, BankSpec, CasSpec, CounterSpec, QueueSpec};
use std::sync::Arc;

const THREADS: usize = 4;

#[test]
fn counter_total_is_exact() {
    let per = 50;
    let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
    let obj = Universal::builder(THREADS).build(&mut mem, CounterSpec::new());
    let counter = WaitFreeCounter::new(obj);
    let mem = Arc::new(mem);
    let mut seen: Vec<u64> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let counter = counter.clone();
                s.spawn(move || {
                    (0..per)
                        .map(|_| counter.inc(&*mem, Pid(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    // Every increment returned a distinct value 1..=N: a total order on
    // concurrent increments, which is consensus at work.
    seen.sort_unstable();
    let expect: Vec<u64> = (1..=(THREADS * per) as u64).collect();
    assert_eq!(seen, expect);
    assert_eq!(counter.read(&*mem, Pid(0)), (THREADS * per) as u64);
}

#[test]
fn queue_preserves_per_producer_fifo_and_loses_nothing() {
    let per = 30;
    let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
    let obj = Universal::builder(THREADS).build(&mut mem, QueueSpec::new());
    let queue = WaitFreeQueue::new(obj);
    let mem = Arc::new(mem);
    // Producers enqueue tagged values; consumers dequeue everything.
    // Each consumer's stream is collected separately: linearizability
    // guarantees each consumer sees each producer's items in order.
    let per_consumer: Vec<Vec<u64>> = std::thread::scope(|s| {
        let producers: Vec<_> = (0..2)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let queue = queue.clone();
                s.spawn(move || {
                    for k in 0..per {
                        queue.enqueue(&*mem, Pid(i), (i as u64) << 32 | k as u64);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (2..4)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let queue = queue.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    // Keep draining until producers are done and the queue
                    // is empty.
                    let mut empties = 0;
                    while empties < 3 {
                        match queue.dequeue(&*mem, Pid(i)) {
                            Some(v) => {
                                empties = 0;
                                got.push(v);
                            }
                            None => {
                                empties += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut streams: Vec<Vec<u64>> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        // Drain any stragglers as one more "consumer".
        let mut rest = Vec::new();
        while let Some(v) = queue.dequeue(&*mem, Pid(0)) {
            rest.push(v);
        }
        streams.push(rest);
        streams
    });
    let total: usize = per_consumer.iter().map(Vec::len).sum();
    assert_eq!(total, 2 * per, "no loss, no duplication");
    let mut all: Vec<u64> = per_consumer.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 2 * per, "every element is distinct");
    // Per-producer FIFO within each consumer's stream.
    for (ci, stream) in per_consumer.iter().enumerate() {
        for tag in 0..2u64 {
            let ks: Vec<u64> = stream
                .iter()
                .filter(|v| *v >> 32 == tag)
                .map(|v| v & 0xFFFF_FFFF)
                .collect();
            let mut sorted = ks.clone();
            sorted.sort_unstable();
            assert_eq!(ks, sorted, "consumer {ci} saw producer {tag} out of order");
        }
    }
}

#[test]
fn cas_register_elects_exactly_one_winner_per_generation() {
    let mut mem: NativeMem<CellPayload<CasSpec>> = NativeMem::new();
    let obj = Universal::builder(THREADS).build(&mut mem, CasSpec::new());
    let cas = WaitFreeCas::new(obj);
    let mem = Arc::new(mem);
    for generation in 0..10u64 {
        let winners: usize = std::thread::scope(|s| {
            (0..THREADS)
                .map(|i| {
                    let mem = Arc::clone(&mem);
                    let cas = cas.clone();
                    s.spawn(move || cas.cas(&*mem, Pid(i), generation, generation + 1).0 as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1, "generation {generation}");
        assert_eq!(cas.read(&*mem, Pid(0)), generation + 1);
    }
}

#[test]
fn bank_conserves_money_under_concurrent_transfers() {
    let accounts = 4;
    let initial = 1000;
    let mut mem: NativeMem<CellPayload<BankSpec>> = NativeMem::new();
    let obj = Universal::builder(THREADS).build(&mut mem, BankSpec::new(accounts, initial));
    let bank = WaitFreeBank::new(obj);
    let mem = Arc::new(mem);
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let mem = Arc::clone(&mem);
            let bank = bank.clone();
            s.spawn(move || {
                for k in 0..40u64 {
                    let from = (i + k as usize) % accounts;
                    let to = (i + 1 + k as usize) % accounts;
                    let r = bank.transfer(&*mem, Pid(i), from, to, 1 + k % 7);
                    assert!(matches!(r, BankResp::Ok | BankResp::InsufficientFunds));
                }
            });
        }
    });
    assert_eq!(
        bank.total(&*mem, Pid(0)),
        accounts as u64 * initial,
        "money must be conserved"
    );
}

#[test]
fn mixed_backends_same_results_sequentially() {
    // Sanity: bounded vs unbounded vs lock-based agree on a sequential
    // script (differential test).
    use sbu_core::{SpinLockUniversal, UnboundedUniversal};
    use sbu_spec::specs::CounterOp;
    let script: Vec<CounterOp> = (0..30)
        .map(|i| match i % 4 {
            0 | 1 => CounterOp::Inc,
            2 => CounterOp::Add(5),
            _ => CounterOp::Read,
        })
        .collect();

    let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
    let a = Universal::builder(1).build(&mut mem, CounterSpec::new());
    let b = UnboundedUniversal::new(&mut mem, 1, 64, CounterSpec::new());
    let c = SpinLockUniversal::new(&mut mem, CounterSpec::new());
    for op in &script {
        let ra = a.apply(&mem, Pid(0), op);
        let rb = b.apply(&mem, Pid(0), op);
        let rc = c.apply::<CounterSpec, _>(&mem, Pid(0), op);
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
    }
}

/// Regression for a native-only TOCTOU cycle in the unbounded append: a
/// helper appends my cell mid-walk; the fallback candidate must not
/// re-propose it at the new end (this livelocked real-thread runs until
/// the post-walk self-validation was added). A watchdog turns any
/// recurrence into a fast failure instead of a hung test.
#[test]
fn unbounded_contended_queue_never_livelocks() {
    use sbu_core::UnboundedUniversal;
    use sbu_spec::specs::{QueueOp, QueueSpec};
    use std::sync::atomic::{AtomicBool, Ordering};

    let rounds = 600;
    let all_done = Arc::new(AtomicBool::new(false));
    let done_w = Arc::clone(&all_done);
    let watchdog = std::thread::spawn(move || {
        for _ in 0..1_200 {
            std::thread::sleep(std::time::Duration::from_millis(100));
            if done_w.load(Ordering::SeqCst) {
                return;
            }
        }
        panic!("unbounded contended queue livelocked (cycle regression)");
    });
    for _ in 0..rounds {
        let threads = 4;
        let per = 50;
        let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
        let obj = UnboundedUniversal::new(&mut mem, threads, per + 4, QueueSpec::new());
        let mem = Arc::new(mem);
        std::thread::scope(|s| {
            for i in 0..threads {
                let mem = Arc::clone(&mem);
                let obj = obj.clone();
                s.spawn(move || {
                    for k in 0..per {
                        let op = if k % 2 == 0 {
                            QueueOp::Enqueue(k as u64)
                        } else {
                            QueueOp::Dequeue
                        };
                        obj.apply(&*mem, Pid(i), &op);
                    }
                });
            }
        });
    }
    all_done.store(true, Ordering::SeqCst);
    watchdog.join().unwrap();
}
