//! Property-based fuzzing of the bounded universal construction: random
//! per-processor operation sequences, random schedules, linearizability as
//! the invariant.

use proptest::prelude::*;
use sbu_core::{bounded::UniversalConfig, CellPayload, Universal};
use sbu_sim::{run_uniform, HistoryRecorder, RunOptions, Scripted, SimMem};
use sbu_spec::linearize::check;
use sbu_spec::specs::{QueueOp, QueueResp, QueueSpec, StackOp, StackResp, StackSpec};
use std::sync::Arc;

fn arb_queue_program() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(QueueOp::Enqueue),
            Just(QueueOp::Dequeue),
        ],
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queue: random 2-processor programs under random scripted schedules
    /// stay linearizable; no violations, no aborts, always wait-free.
    #[test]
    fn universal_queue_random_programs(
        prog0 in arb_queue_program(),
        prog1 in arb_queue_program(),
        script in prop::collection::vec(0usize..2, 0..96),
    ) {
        let n = 2;
        let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, QueueSpec::new());
        let rec: Arc<HistoryRecorder<QueueOp, QueueResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let progs = [prog0, prog1];
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script)),
            RunOptions { max_steps: 20_000_000 },
            n,
            move |mem, pid| {
                for op in &progs[pid.0] {
                    rec2.record(mem, pid, *op, || obj2.apply(mem, pid, op));
                }
            },
        );
        prop_assert!(out.violations.is_empty(), "{:?}", out.violations);
        prop_assert!(!out.aborted);
        let h = rec.history();
        prop_assert!(
            check(&h, QueueSpec::new()).is_linearizable(),
            "history: {:?}", h
        );
    }

    /// Stack with the fast paths enabled: same property.
    #[test]
    fn universal_stack_random_programs_fast_paths(
        pushes in prop::collection::vec(0u64..32, 1..4),
        script in prop::collection::vec(0usize..2, 0..96),
    ) {
        let n = 2;
        let mut mem: SimMem<CellPayload<StackSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).config(UniversalConfig::for_procs(n).with_fast_paths()).build(&mut mem, StackSpec::new());
        let rec: Arc<HistoryRecorder<StackOp, StackResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let pushes2 = pushes.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script)),
            RunOptions { max_steps: 20_000_000 },
            n,
            move |mem, pid| {
                if pid.0 == 0 {
                    for v in &pushes2 {
                        rec2.record(mem, pid, StackOp::Push(*v), || {
                            obj2.apply(mem, pid, &StackOp::Push(*v))
                        });
                    }
                } else {
                    for _ in 0..pushes2.len() {
                        rec2.record(mem, pid, StackOp::Pop, || {
                            obj2.apply(mem, pid, &StackOp::Pop)
                        });
                    }
                }
            },
        );
        prop_assert!(out.violations.is_empty());
        prop_assert!(!out.aborted);
        let h = rec.history();
        prop_assert!(check(&h, StackSpec::new()).is_linearizable(), "{:?}", h);
    }
}
