//! # sbu-core — the wait-free universal construction (Sections 5–6)
//!
//! The paper's main theorem: **any** safe implementation of a sequential
//! object can be transformed into a wait-free atomic (linearizable) one
//! using O(n² log n) sticky bits and O(n²) state-sized cells
//! (Theorem 6.6). This crate implements that transformation, its baselines,
//! and ready-made wait-free objects built with it.
//!
//! * [`bounded::Universal`] — the paper's bounded-memory construction:
//!   a pool of reusable cells linked into a list by jamming sticky
//!   pointers, with three helping protocols —
//!   [GFC](bounded) (get-free-cell, Figure 6),
//!   APPEND/FIND-HEAD (Figures 7–8), and the GRAB/RELEASE/INIT
//!   reclamation handshake (Figures 4–5) plus the distance-bit freeing rule
//!   of Section 5.
//! * [`unbounded::UnboundedUniversal`] — Herlihy's construction (the
//!   paper's Section 5 starting point and explicit foil): simpler, clearly
//!   correct, but memory grows with the number of operations.
//! * [`lock_based::SpinLockUniversal`] — the mutual-exclusion strawman from
//!   the introduction: atomic but *not* wait-free; one crash inside the
//!   critical section wedges every other processor (experiment E5 shows
//!   exactly this).
//! * [`objects`] — wait-free queue, stack, counter, KV store, CAS register
//!   and bank built by instantiating the universal construction — including
//!   [`objects::WaitFreeCas`], which closes the paper's hierarchy-collapse
//!   loop: an arbitrary-consensus-number RMW object implemented from
//!   3-valued sticky primitives.
//!
//! All constructions implement [`UniversalObject`] so tests, examples and
//! benches can swap them freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod consensus_universal;
pub mod lock_based;
pub mod objects;
pub mod unbounded;

use sbu_mem::{DataMem, Pid};
use sbu_spec::SequentialSpec;

pub use bounded::{Universal, UniversalBuilder};
pub use consensus_universal::ConsensusUniversal;
pub use lock_based::SpinLockUniversal;
pub use unbounded::UnboundedUniversal;

/// What a cell's data slot can hold: the appender's command, or a snapshot
/// of the object state *after* that command (Section 5: "the cells are read
/// until it encounters a cell that holds a state instead of a command").
#[derive(Debug, Clone, PartialEq)]
pub enum CellPayload<S: SequentialSpec> {
    /// The command stored by the invoking processor before appending.
    Cmd(S::Op),
    /// The state of the simulated object after applying the cell's command
    /// to everything behind it in the list.
    State(S),
}

/// A linearizable implementation of the sequential object `S`, produced by
/// one of this crate's constructions.
pub trait UniversalObject<S: SequentialSpec>: Send + Sync {
    /// Execute one operation; the implementation decides where in the
    /// concurrent order it takes effect (its linearization point).
    fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp;
}
