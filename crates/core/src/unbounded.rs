//! Herlihy's unbounded universal construction (the paper's Section 5
//! starting point, and its explicit foil).
//!
//! "Herlihy's construction … uses unbounded memory": every operation
//! consumes a fresh cell from a grow-only arena and nothing is ever
//! reclaimed — no GRAB/INIT handshake, no freeing protocol, no cell reuse.
//! In exchange the algorithm is much simpler, which makes it the perfect
//! differential-testing reference for the bounded construction and the
//! memory-growth baseline for experiment E3.
//!
//! Cells are linked *forward*: `succ` is a sticky word deciding the unique
//! next-appended cell (the paper's "atomic operation that prepends an
//! element to the beginning of a list", realized as consensus). Appending
//! uses the classic priority-helping rule: at sequence number `s`, every
//! appender tries to append the announced cell of processor `s mod n`
//! first, so an announced operation is appended within `n` rounds.
//!
//! Since registers cannot be allocated mid-run, the "unbounded" arena is
//! preallocated with a per-processor operation budget; exceeding it panics
//! (that *is* the bounded-memory critique, executably).

use crate::{CellPayload, UniversalObject};
use parking_lot::Mutex;
use sbu_mem::{DataId, DataMem, Pid, SafeId, StickyWordId};
use sbu_spec::SequentialSpec;
use std::sync::Arc;

struct ArenaCell {
    cmd: DataId,
    has_cmd: SafeId,
    state: DataId,
    has_state: SafeId,
    /// Consensus on the next appended cell (`⊥` at the list's end).
    succ: StickyWordId,
    /// Back-pointer to the predecessor; jammed (identically) by whoever
    /// links this cell, so helpers cannot tear it.
    pred: StickyWordId,
    /// Position in the list; jammed by the linkers.
    seq: StickyWordId,
}

struct Inner<S> {
    n: usize,
    ops_per_proc: usize,
    cells: Vec<ArenaCell>,
    /// Announced pending cell per processor: `0 = ⊥`, else index + 1.
    announce: Vec<SafeId>,
    locals: Vec<Mutex<ProcLocal>>,
    _spec: std::marker::PhantomData<fn() -> S>,
}

#[derive(Default)]
struct ProcLocal {
    /// Next unused cell in my arena region.
    used: usize,
    /// Hint: deepest list cell I have seen (walks resume here).
    head_hint: usize,
}

const ANCHOR: usize = 0;

/// Herlihy-style unbounded universal construction.
///
/// ```
/// use sbu_core::UnboundedUniversal;
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_spec::specs::{CounterSpec, CounterOp};
///
/// let mut mem = NativeMem::new();
/// let counter = UnboundedUniversal::new(&mut mem, 2, 16, CounterSpec::new());
/// assert_eq!(counter.apply(&mem, Pid(0), &CounterOp::Inc), 1);
/// assert_eq!(counter.apply(&mem, Pid(1), &CounterOp::Inc), 2);
/// ```
pub struct UnboundedUniversal<S: SequentialSpec> {
    inner: Arc<Inner<S>>,
}

impl<S: SequentialSpec> std::fmt::Debug for UnboundedUniversal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnboundedUniversal")
            .field("n_procs", &self.inner.n)
            .field("arena", &self.inner.cells.len())
            .finish_non_exhaustive()
    }
}

impl<S: SequentialSpec> Clone for UnboundedUniversal<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S> UnboundedUniversal<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    /// Build the object with an arena of `ops_per_proc` cells per
    /// processor ("unbounded", realized as a generous preallocation).
    pub fn new<M: DataMem<CellPayload<S>>>(
        mem: &mut M,
        n: usize,
        ops_per_proc: usize,
        initial: S,
    ) -> Self {
        assert!(n >= 1 && ops_per_proc >= 1);
        let total = 1 + n * ops_per_proc;
        let cells: Vec<ArenaCell> = (0..total)
            .map(|_| ArenaCell {
                cmd: mem.alloc_data(None),
                has_cmd: mem.alloc_safe(0),
                state: mem.alloc_data(None),
                has_state: mem.alloc_safe(0),
                succ: mem.alloc_sticky_word(),
                pred: mem.alloc_sticky_word(),
                seq: mem.alloc_sticky_word(),
            })
            .collect();
        let inner = Inner {
            n,
            ops_per_proc,
            cells,
            announce: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            locals: (0..n).map(|_| Mutex::new(ProcLocal::default())).collect(),
            _spec: std::marker::PhantomData,
        };
        let pid0 = Pid(0);
        mem.data_write(pid0, inner.cells[ANCHOR].state, CellPayload::State(initial));
        mem.safe_write(pid0, inner.cells[ANCHOR].has_state, 1);
        mem.sticky_word_jam(pid0, inner.cells[ANCHOR].seq, 0);
        Self {
            inner: Arc::new(inner),
        }
    }

    /// Total arena cells consumed so far (experiment E3's growth curve).
    pub fn cells_consumed<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid) -> usize {
        self.inner
            .cells
            .iter()
            .skip(1)
            .filter(|c| mem.safe_read(pid, c.has_cmd) != 0)
            .count()
    }

    /// Render the arena's link state for debugging.
    #[doc(hidden)]
    pub fn debug_dump<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid) -> String {
        use std::fmt::Write;
        let inner = &*self.inner;
        let mut s = String::new();
        for (i, c) in inner.cells.iter().enumerate() {
            let _ = writeln!(
                s,
                "cell {i}: has_cmd={} has_state={} succ={:?} pred={:?} seq={:?}",
                mem.safe_read(pid, c.has_cmd),
                mem.safe_read(pid, c.has_state),
                mem.sticky_word_read(pid, c.succ),
                mem.sticky_word_read(pid, c.pred),
                mem.sticky_word_read(pid, c.seq),
            );
        }
        for j in 0..inner.n {
            let _ = writeln!(s, "announce[{j}]={}", mem.safe_read(pid, inner.announce[j]));
        }
        s
    }

    /// Execute `op`; linearized when its cell's predecessor's `succ` is
    /// jammed with it.
    pub fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp {
        assert!(pid.0 < self.inner.n);
        let inner = &*self.inner;
        let mut local = inner.locals[pid.0].lock();

        // A fresh cell from my arena region.
        assert!(
            local.used < inner.ops_per_proc,
            "arena exhausted after {} ops by {pid}: the unbounded construction \
             really does need unbounded memory (raise ops_per_proc)",
            local.used
        );
        let cell = 1 + pid.0 * inner.ops_per_proc + local.used;
        local.used += 1;

        mem.data_write(pid, inner.cells[cell].cmd, CellPayload::Cmd(op.clone()));
        mem.safe_write(pid, inner.cells[cell].has_cmd, 1);
        mem.safe_write(pid, inner.announce[pid.0], cell as u64 + 1);

        // Append with priority helping until my cell is in.
        while mem.sticky_word_read(pid, inner.cells[cell].seq).is_none() {
            // Walk to the end of the list from my hint, repairing links on
            // the way: a jammer may be suspended (or dead) between deciding
            // `succ` and writing the winner's `pred`/`seq`, so every walker
            // re-jams them (idempotent — sticky fields, identical values).
            let mut head = local.head_hint;
            let mut head_seq = mem
                .sticky_word_read(pid, inner.cells[head].seq)
                .expect("the head hint always points at a fully linked cell");
            #[cfg(debug_assertions)]
            let mut visited = vec![false; inner.cells.len()];
            while let Some(s) = mem.sticky_word_read(pid, inner.cells[head].succ) {
                let s = s as usize;
                #[cfg(debug_assertions)]
                {
                    assert!(
                        !std::mem::replace(&mut visited[s], true),
                        "cycle in the list: cell {s} reached twice"
                    );
                }
                mem.sticky_word_jam(pid, inner.cells[s].pred, head as u64);
                mem.sticky_word_jam(pid, inner.cells[s].seq, head_seq + 1);
                head = s;
                head_seq += 1;
            }
            local.head_hint = head;
            // Post-walk self-validation. A helper may have appended my cell
            // *during* the walk — possibly mid-chain, with more cells
            // following. My own walk then repaired its `seq`, so this check
            // is authoritative in my program order. Without it the fallback
            // candidate below would propose my already-linked cell at the
            // fresh end, closing a cycle (found by the native stall probe:
            // the announced candidate is validated after the walk, but the
            // fallback `cand = cell` was not).
            if mem.sticky_word_read(pid, inner.cells[cell].seq).is_some() {
                break;
            }
            // Priority: the processor whose turn it is, else myself.
            let turn = ((head_seq + 1) % inner.n as u64) as usize;
            let cand = {
                let a = mem.safe_read(pid, inner.announce[turn]) as usize;
                let idx = a.wrapping_sub(1);
                if a != 0
                    && idx < inner.cells.len()
                    && idx != head
                    && mem.safe_read(pid, inner.cells[idx].has_cmd) != 0
                    && mem.sticky_word_read(pid, inner.cells[idx].seq).is_none()
                {
                    idx
                } else {
                    cell
                }
            };
            mem.sticky_word_jam(pid, inner.cells[head].succ, cand as u64);
            let winner = mem
                .sticky_word_read(pid, inner.cells[head].succ)
                .expect("just jammed") as usize;
            // Link the winner (idempotent sticky jams: all helpers agree).
            mem.sticky_word_jam(pid, inner.cells[winner].pred, head as u64);
            mem.sticky_word_jam(pid, inner.cells[winner].seq, head_seq + 1);
        }
        mem.safe_write(pid, inner.announce[pid.0], 0);

        // Compute my response: walk back to the nearest state snapshot.
        let mut chain: Vec<S::Op> = Vec::new();
        let mut cur = mem
            .sticky_word_read(pid, inner.cells[cell].pred)
            .expect("appended cells are linked") as usize;
        let base: S = loop {
            let c = &inner.cells[cur];
            if mem.safe_read(pid, c.has_state) != 0 {
                match mem.data_read(pid, c.state) {
                    Some(CellPayload::State(s)) => break s,
                    _ => panic!("cell {cur}: state slot missing or holding a command"),
                }
            }
            match mem.data_read(pid, c.cmd) {
                Some(CellPayload::Cmd(o)) => chain.push(o),
                _ => panic!("cell {cur}: command slot missing or holding a state"),
            }
            cur = mem
                .sticky_word_read(pid, c.pred)
                .expect("appended cells are linked") as usize;
        };
        let mut state = base;
        for o in chain.iter().rev() {
            state.apply(o);
        }
        let resp = state.apply(op);
        mem.data_write(pid, inner.cells[cell].state, CellPayload::State(state));
        mem.safe_write(pid, inner.cells[cell].has_state, 1);
        resp
    }
}

impl<S> UniversalObject<S> for UnboundedUniversal<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp {
        UnboundedUniversal::apply(self, mem, pid, op)
    }
}
