//! The mutual-exclusion strawman from the introduction.
//!
//! "One way to transform a safe implementation … is to use mutual
//! exclusion to lock the object before each access … the main
//! disadvantage is that it causes one processor to wait for another,
//! essentially reducing the speed of the system to the speed of the
//! slowest component, which can be zero if this component has failed."
//!
//! [`SpinLockUniversal`] is exactly that transformation: atomic
//! (trivially linearizable — operations are serialized by the lock) but
//! **not** wait-free. Experiment E5 crashes the lock holder and watches
//! every other processor spin forever, while the constructions of
//! Sections 5–6 sail on.

use crate::{CellPayload, UniversalObject};
use sbu_mem::{AtomicId, DataId, DataMem, Pid};
use sbu_spec::SequentialSpec;

/// Lock-based (atomic, blocking, non-wait-free) object.
///
/// ```
/// use sbu_core::SpinLockUniversal;
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_spec::specs::{CounterSpec, CounterOp};
///
/// let mut mem = NativeMem::new();
/// let counter = SpinLockUniversal::new(&mut mem, CounterSpec::new());
/// assert_eq!(counter.apply(&mem, Pid(0), &CounterOp::Inc), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpinLockUniversal {
    lock: AtomicId,
    state: DataId,
}

impl SpinLockUniversal {
    /// Build the object: one lock word plus one state cell.
    pub fn new<S, M>(mem: &mut M, initial: S) -> Self
    where
        S: SequentialSpec,
        M: DataMem<CellPayload<S>>,
    {
        let lock = mem.alloc_atomic(0);
        let state = mem.alloc_data(Some(CellPayload::State(initial)));
        Self { lock, state }
    }

    /// Execute `op` under the lock. **Blocks** (spins) while another
    /// processor holds the lock — including one that crashed inside it.
    pub fn apply<S, M>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp
    where
        S: SequentialSpec,
        M: DataMem<CellPayload<S>>,
    {
        // Acquire: RMW the lock word 0 → 1. The yield matters on few-core
        // hosts, where a pure spin burns a whole scheduling quantum per
        // lock handoff; under the simulator it is a no-op (the conductor
        // already owns scheduling).
        while mem.rmw(pid, self.lock, &|x| if x == 0 { 1 } else { x }) != 0 {
            std::thread::yield_now();
        }
        // Critical section: exclusive, so the safe data cell is never
        // accessed concurrently (the simulator verifies this).
        let mut state = match mem.data_read(pid, self.state) {
            Some(CellPayload::State(s)) => s,
            _ => panic!("state cell missing or holding a command"),
        };
        let resp = state.apply(op);
        mem.data_write(pid, self.state, CellPayload::State(state));
        // Release.
        mem.atomic_write(pid, self.lock, 0);
        resp
    }
}

impl<S> UniversalObject<S> for SpinLockUniversal
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp {
        SpinLockUniversal::apply::<S, M>(self, mem, pid, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, CrashPlan, RandomAdversary, RoundRobin, RunOptions, SimMem};
    use sbu_spec::specs::{CounterOp, CounterSpec};
    use std::sync::Arc;

    #[test]
    fn serializes_operations() {
        for seed in 0..10 {
            let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(3);
            let obj = SpinLockUniversal::new(&mut mem, CounterSpec::new());
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                3,
                move |mem, pid| obj.apply::<CounterSpec, _>(mem, pid, &CounterOp::Inc),
            );
            out.assert_clean();
            let mut responses: Vec<u64> = out.results().into_iter().copied().collect();
            responses.sort_unstable();
            assert_eq!(responses, vec![1, 2, 3]);
        }
    }

    /// The introduction's complaint, executable: crash the lock holder and
    /// the others never finish (the run hits the step limit).
    #[test]
    fn crash_under_lock_wedges_everyone() {
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(2);
        let obj = SpinLockUniversal::new(&mut mem, CounterSpec::new());
        // Let pid 0 acquire the lock (its first step is the RMW), then
        // crash it; pid 1 spins forever.
        let out = run_uniform(
            &mem,
            Box::new(CrashPlan::new(vec![(Pid(0), 1)], RoundRobin::new())),
            RunOptions { max_steps: 5_000 },
            2,
            move |mem, pid| obj.apply::<CounterSpec, _>(mem, pid, &CounterOp::Inc),
        );
        assert!(out.aborted, "survivor must be wedged at the step limit");
        assert_eq!(out.completed_count(), 0);
    }

    #[test]
    fn native_threads_count_correctly() {
        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let obj = SpinLockUniversal::new(&mut mem, CounterSpec::new());
        let mem = Arc::new(mem);
        let per = 200;
        std::thread::scope(|s| {
            for i in 0..4 {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    for _ in 0..per {
                        obj.apply::<CounterSpec, _>(&*mem, Pid(i), &CounterOp::Inc);
                    }
                });
            }
        });
        assert_eq!(
            obj.apply::<CounterSpec, _>(&*mem, Pid(0), &CounterOp::Read),
            4 * per
        );
    }
}
