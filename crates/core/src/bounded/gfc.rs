//! GFC — get a free cell, with helping (Figure 6 plus Section 5's freeing
//! rule).

use super::{Inner, ProcLocal, ANCHOR};
use sbu_mem::{DataMem, Pid, Tri};

impl<S> Inner<S> {
    /// Get a free cell for `pid`: reclaim eligible owned cells, announce,
    /// claim a cell, then prepare a cell for every processor still
    /// announced (the helping pass that yields Lemma 6.4's bound).
    pub(crate) fn gfc<P, M>(&self, mem: &M, pid: Pid, local: &mut ProcLocal) -> usize
    where
        P: Clone,
        M: DataMem<P> + ?Sized,
    {
        self.reclaim_owned(mem, pid, local);

        mem.safe_write(pid, self.announce_gfc[pid.0], 1);
        let cell = self.gfc_inner(mem, pid, local, pid.0);
        mem.sticky_jam(pid, self.cells[cell].claimed, true);
        self.mark_dirty(local, cell);
        self.release(mem, pid, local, cell);
        mem.safe_write(pid, self.announce_gfc[pid.0], 0);

        // Help: prepare (but do not claim) a cell for everyone searching.
        for j in 0..self.n {
            if j != pid.0 && mem.safe_read(pid, self.announce_gfc[j]) != 0 {
                let prepared = self.gfc_inner(mem, pid, local, j);
                self.release(mem, pid, local, prepared);
            }
        }

        local.owned.push(cell);
        cell
    }

    /// Reclaim owned cells whose distance bits are all set (Section 5):
    /// such a cell has n state snapshots ahead of it in the list, so no
    /// scan can reach it any more.
    fn reclaim_owned<P, M>(&self, mem: &M, pid: Pid, local: &mut ProcLocal)
    where
        P: Clone,
        M: DataMem<P> + ?Sized,
    {
        let owned = std::mem::take(&mut local.owned);
        for c in owned {
            let fully_marked =
                c != ANCHOR && (0..self.n).all(|d| mem.safe_read(pid, self.b(c, d)) != 0);
            if fully_marked && self.init(mem, pid, local, c) {
                if self.use_fast_paths {
                    local.free_hints.push(c);
                }
                continue; // reclaimed: drop from the owned list
            }
            local.owned.push(c);
        }
    }

    /// The search loop of Figure 6: first look for a cell already prepared
    /// for `target`, then race to jam `target` into unowned cells. The
    /// returned cell is owned by `target`, unclaimed, and still **grabbed**
    /// by the caller.
    pub(crate) fn gfc_inner<P, M>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        target: usize,
    ) -> usize
    where
        P: Clone,
        M: DataMem<P> + ?Sized,
    {
        // Fast path: retry cells this processor reclaimed itself (only for
        // its own allocations — helpers use the paper's scans). Sound: a
        // hint is just a candidate; it passes the same grab + ProcID-jam +
        // Claimed validation as a scan hit.
        if self.use_fast_paths && target == pid.0 {
            while let Some(c) = local.free_hints.pop() {
                if !self.grab(mem, pid, local, c) {
                    continue;
                }
                let cell = &self.cells[c];
                let won = match mem.sticky_word_read(pid, cell.proc_id) {
                    None => {
                        let stuck = mem
                            .sticky_word_jam(pid, cell.proc_id, target as u64)
                            .is_success();
                        self.mark_dirty(local, c);
                        stuck
                    }
                    Some(t) => t == target as u64,
                };
                if won && mem.sticky_read(pid, cell.claimed) == Tri::Undef {
                    self.obs.gfc_hint_hit.incr(pid.0);
                    return c;
                }
                self.release(mem, pid, local, c);
            }
        }
        // Pass 1: a cell previously prepared for `target`.
        for c in 0..self.cells.len() {
            if !self.grab(mem, pid, local, c) {
                continue;
            }
            if mem.sticky_word_read(pid, self.cells[c].proc_id) == Some(target as u64)
                && mem.sticky_read(pid, self.cells[c].claimed) == Tri::Undef
            {
                return c;
            }
            self.release(mem, pid, local, c);
        }
        // Pass 2: race for unowned cells until one sticks. Bounded in
        // expectation by Lemma 6.4 given the Θ(n²) pool; if the pool is
        // exhausted by leaks this spins, which the simulator's step limit
        // turns into a loud failure.
        let mut backoff = self.new_backoff(local);
        loop {
            for c in 0..self.cells.len() {
                if !self.grab(mem, pid, local, c) {
                    continue;
                }
                let cell = &self.cells[c];
                let owner = mem.sticky_word_read(pid, cell.proc_id);
                let won = match owner {
                    None => {
                        let stuck = mem
                            .sticky_word_jam(pid, cell.proc_id, target as u64)
                            .is_success();
                        self.mark_dirty(local, c);
                        stuck
                    }
                    Some(t) => t == target as u64,
                };
                if won && mem.sticky_read(pid, cell.claimed) == Tri::Undef {
                    return c;
                }
                self.release(mem, pid, local, c);
            }
            // Every cell was contended this sweep: back off locally before
            // re-racing the jam loop.
            let rounds = backoff.spin();
            self.note_contention(local);
            self.obs.backoff_spins.add(pid.0, u64::from(rounds));
        }
    }
}
