//! GRAB / RELEASE / INIT: the reclamation handshake (Figures 4–5).
//!
//! `Flush` on sticky fields is non-atomic, so reinitializing a cell while
//! anyone might operate on it is undefined behaviour (the simulator flags
//! it). The handshake: a processor *grabs* a cell before touching its
//! fields — raise `r_i`, double-checking the owner's `Init` flag around the
//! write — and the owner may only flush after raising `Init` and then
//! observing every `r_j` at 0 at least once (progress memoized in
//! `CountInit` across failed attempts, so repeated INIT calls make
//! monotone progress).
//!
//! Grabs here are re-entrant per processor (tracked in private memory):
//! the protocols of Figures 6–8 can hold up to three grabs at once, and a
//! full-pool scan may revisit a cell the scanner already holds; a plain
//! bit would be cleared by the inner release.

use super::{Inner, ProcLocal};
use sbu_mem::{Pid, WordMem};

impl<S> Inner<S> {
    /// GRAB (Figure 4): returns `true` if the cell is now protected from
    /// initialization until the matching [`Inner::release`].
    pub(crate) fn grab<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        c: usize,
    ) -> bool {
        if let Some((_, count)) = local.grabs.iter_mut().find(|(cell, _)| *cell == c) {
            *count += 1;
            return true;
        }
        let cell = &self.cells[c];
        if mem.safe_read(pid, cell.init_flag) != 0 {
            self.obs.grab_retry.incr(pid.0);
            return false;
        }
        mem.safe_write(pid, self.r(c, pid.0), 1);
        if mem.safe_read(pid, cell.init_flag) != 0 {
            mem.safe_write(pid, self.r(c, pid.0), 0);
            self.obs.grab_retry.incr(pid.0);
            return false;
        }
        local.grabs.push((c, 1));
        // Theorem 6.6's accounting: "each processor GRABs at most 3 cells
        // at any moment". A fourth concurrent grab is a protocol bug.
        debug_assert!(
            local.grabs.len() <= 3,
            "grab bound exceeded: {:?}",
            local
                .grabs
                .iter()
                .map(|(cell, _)| *cell)
                .collect::<Vec<_>>()
        );
        true
    }

    /// Record that this processor jammed a sticky field of cell `c` while
    /// holding a grab on it. No-op when `c` is not currently grabbed (the
    /// owner's jams into its own un-grabbed cell are fenced by the persist
    /// at the end of `apply` instead).
    pub(crate) fn mark_dirty(&self, local: &mut ProcLocal, c: usize) {
        if local.grabs.iter().any(|(cell, _)| *cell == c) && !local.dirty.contains(&c) {
            local.dirty.push(c);
        }
    }

    /// RELEASE (Figure 4): drop one level of grab; clears `r_i` when the
    /// last level is released.
    ///
    /// Flush-on-dependence: if this processor jammed any sticky field of
    /// the cell under the grab, those writes are fenced *before* `r_i` is
    /// cleared. The owner's INIT flushes only after observing every `r_j`
    /// at 0, so by then every foreign jam into the cell is durable and the
    /// non-atomic flush can never race an unfenced dependent write
    /// (DESIGN.md §9.4).
    pub(crate) fn release<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        c: usize,
    ) {
        let at = local
            .grabs
            .iter()
            .position(|(cell, _)| *cell == c)
            .expect("release without a matching grab");
        local.grabs[at].1 -= 1;
        if local.grabs[at].1 == 0 {
            local.grabs.swap_remove(at);
            if let Some(d) = local.dirty.iter().position(|cell| *cell == c) {
                local.dirty.swap_remove(d);
                mem.persist(pid);
            }
            mem.safe_write(pid, self.r(c, pid.0), 0);
        }
    }

    /// INIT (Figure 5): owner-only. Returns `true` once the cell has been
    /// fully reinitialized (all sticky fields flushed, data cleared); a
    /// `false` means some processor still holds (or raced) a grab — retry
    /// on a later call, resuming from `CountInit`.
    pub(crate) fn init<M, P>(&self, mem: &M, pid: Pid, local: &mut ProcLocal, c: usize) -> bool
    where
        P: Clone,
        M: sbu_mem::DataMem<P> + ?Sized,
    {
        let cell = &self.cells[c];
        if mem.safe_read(pid, cell.init_flag) == 0 {
            mem.safe_write(pid, cell.init_flag, 1);
        }
        // Figure 5 releases the caller's own grab first. No fence needed:
        // the caller is the owner, about to flush this very cell.
        if let Some(at) = local.grabs.iter().position(|(cell, _)| *cell == c) {
            local.grabs.swap_remove(at);
            if let Some(d) = local.dirty.iter().position(|cell| *cell == c) {
                local.dirty.swap_remove(d);
            }
            mem.safe_write(pid, self.r(c, pid.0), 0);
        }
        let mut j = mem.safe_read(pid, cell.count_init) as usize;
        while j < self.n && mem.safe_read(pid, self.r(c, j)) == 0 {
            j += 1;
        }
        mem.safe_write(pid, cell.count_init, j as u64);
        if j < self.n {
            return false;
        }
        // Quiesced: flush everything. This is the only place sticky fields
        // are reset, and the handshake guarantees no concurrent access.
        mem.sticky_flush(pid, cell.claimed);
        mem.sticky_flush(pid, cell.not_head);
        mem.sticky_word_flush(pid, cell.proc_id);
        mem.sticky_word_flush(pid, cell.next);
        mem.sticky_word_flush(pid, cell.prev);
        mem.data_clear(pid, cell.cmd);
        mem.data_clear(pid, cell.state);
        mem.safe_write(pid, cell.has_cmd, 0);
        mem.safe_write(pid, cell.has_state, 0);
        for d in 0..self.n {
            mem.safe_write(pid, self.b(c, d), 0);
        }
        mem.safe_write(pid, cell.count_init, 0);
        mem.safe_write(pid, cell.init_flag, 0);
        true
    }
}
