//! Observability instruments for the bounded construction's hot paths.
//!
//! Every instrument is a plain per-lane cell (`sbu-obs`): recording never
//! issues a [`sbu_mem::WordMem`] step, so attached and detached objects
//! execute byte-identical shared-memory schedules — the property
//! `crates/core/tests/obs_equivalence.rs` checks exhaustively.

/// Named instruments for GFC / FIND-HEAD / GRAB, registered by
/// [`super::UniversalBuilder::obs`] and recorded by the protocol code.
#[derive(Debug, Clone, Default)]
pub struct CoreObs {
    /// `core.frontier_hit`: FIND-HEAD resolved by walking from a cursor
    /// (the shared frontier or the private head hint).
    pub frontier_hit: sbu_obs::Counter,
    /// `core.frontier_miss`: a cursor walk went stale and was abandoned.
    pub frontier_miss: sbu_obs::Counter,
    /// `core.frontier_fallback`: FIND-HEAD fell back to the paper's full
    /// pool scan (every cursor was cold).
    pub frontier_fallback: sbu_obs::Counter,
    /// `core.grab_retry`: a GRAB failed against a raised `Init` flag and
    /// the caller had to move on.
    pub grab_retry: sbu_obs::Counter,
    /// `core.gfc_hint_hit`: GFC satisfied an allocation from the caller's
    /// own reclaimed-cell hints, skipping the pool scans.
    pub gfc_hint_hit: sbu_obs::Counter,
    /// `core.backoff_spins`: total local spin rounds burned in the
    /// FIND-HEAD and GFC pass-2 retry loops.
    pub backoff_spins: sbu_obs::Counter,
    /// `core.combine_batch`: announced appends folded into one helping
    /// pass (the combining scan's batch size, including empty passes).
    pub combine_batch: sbu_obs::Histogram,
}

impl CoreObs {
    /// Register the instruments against `registry`.
    pub fn register(registry: &sbu_obs::Registry) -> Self {
        Self {
            frontier_hit: registry.counter("core.frontier_hit"),
            frontier_miss: registry.counter("core.frontier_miss"),
            frontier_fallback: registry.counter("core.frontier_fallback"),
            grab_retry: registry.counter("core.grab_retry"),
            gfc_hint_hit: registry.counter("core.gfc_hint_hit"),
            backoff_spins: registry.counter("core.backoff_spins"),
            combine_batch: registry.histogram("core.combine_batch"),
        }
    }
}
