//! The paper's bounded-memory universal construction (Sections 5–6).
//!
//! A fixed pool of **cells** (Figure 3) is linked into a list: appending a
//! cell *is* the linearization of its operation. Every decision that must
//! be agreed on — who owns a cell, which cell succeeds the head, where a
//! cell points — is a sticky field, decided by jamming. Every protocol is
//! paired with a *helping* protocol so that a crashed processor can never
//! block anyone:
//!
//! * **GFC** (get free cell, Figure 6, `gfc.rs`) — announce, claim a cell by
//!   jamming your id into its `ProcID`, then prepare cells for everyone
//!   else still searching.
//! * **APPEND** (Figures 7–8, `list.rs`) — announce the cell, find the head
//!   (a full-pool scan for `Next ≠ ⊥ ∧ ¬NotHead`), jam the head's `Prev`
//!   to become its successor, then help every announced append.
//! * **GRAB/RELEASE/INIT** (Figures 4–5, `sync.rs`) — the reclamation
//!   handshake that makes the *non-atomic* `Flush` safe: a processor may
//!   only flush (reinitialize) a cell after observing every `r_j` bit at 0
//!   with the `Init` flag raised, so no reader can be inside the cell.
//! * **Freeing** (Section 5) — after writing its state snapshot, a
//!   processor marks distance bits `b_1..b_n` on the `n` cells behind it;
//!   an owner reclaims only fully-marked cells, which no scan can still
//!   reach.
//!
//! The `apply` loop itself is Section 5's six steps: get a cell, store the
//! command, append, scan back to the nearest state snapshot (at most `n`
//! command cells away), recompute, publish the new snapshot, mark, return.

mod cell;
mod gfc;
mod list;
mod obs;
mod sync;

pub use cell::UniversalConfig;
pub use obs::CoreObs;

use crate::{CellPayload, UniversalObject};
use cell::CellHandles;
use parking_lot::Mutex;
use sbu_mem::{AtomicId, Backoff, DataMem, Pid, SafeId, WordMem};
use sbu_spec::SequentialSpec;
use std::sync::Arc;

/// Index of the anchor cell, which holds the initial state and is never
/// reclaimed.
pub(crate) const ANCHOR: usize = 0;

/// One pool cell's observable (sticky/safe-flag) state — a read-only view
/// for tests and debugging; see [`Universal::debug_pool_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSnapshot {
    /// The `Claimed` sticky bit.
    pub claimed: sbu_mem::Tri,
    /// The `ProcID` sticky word (owner pid, or the anchor sentinel `n`).
    pub owner: Option<u64>,
    /// The `NotHead` sticky bit.
    pub not_head: sbu_mem::Tri,
    /// The `Next` pointer.
    pub next: Option<usize>,
    /// The `Prev` pointer.
    pub prev: Option<usize>,
    /// Whether a command has been published.
    pub has_cmd: bool,
    /// Whether a state snapshot has been published.
    pub has_state: bool,
}

/// Per-processor private memory (the paper's processors have local state;
/// none of this is shared).
///
/// The collections are plain `Vec`s, not hash maps: `grabs` holds at most
/// 3 entries (Theorem 6.6) and `dirty` at most as many, so linear search
/// beats hashing — and, more importantly for the service runtime, a fresh
/// `ProcLocal` is three empty `Vec`s (no heap allocation at all), keeping
/// bulk `Universal` construction cheap.
#[derive(Debug, Default)]
pub(crate) struct ProcLocal {
    /// Cells this processor has claimed and not yet reclaimed.
    owned: Vec<usize>,
    /// Re-entrant `(cell, count)` grab entries (a processor holds at most
    /// 3 grabs at once, Theorem 6.6's accounting).
    grabs: Vec<(usize, usize)>,
    /// Last head this processor observed (the FIND-HEAD fast path).
    head_hint: Option<usize>,
    /// Cells this processor reclaimed, retried first by GFC (fast path).
    free_hints: Vec<usize>,
    /// Grabbed cells this processor jammed a sticky field of. RELEASE
    /// fences such writes (flush-on-dependence) before clearing `r`, so
    /// the owner's INIT quiescence observation implies every foreign jam
    /// into the cell is already durable — see DESIGN.md §9.4.
    dirty: Vec<usize>,
    /// Adaptive backoff cap exponent (grows on observed contention, decays
    /// per operation; only consulted under
    /// [`UniversalConfig::adaptive_backoff`]).
    backoff_cap: u32,
}

pub(crate) struct Inner<S> {
    pub(crate) n: usize,
    pub(crate) use_fast_paths: bool,
    pub(crate) backoff_limit: u32,
    pub(crate) adaptive_backoff: bool,
    /// Shard id for multi-instance deployments (`sbu-service`): carried for
    /// labeling (Debug output, reports); `None` for standalone objects.
    pub(crate) shard: Option<usize>,
    pub(crate) cells: Vec<CellHandles>,
    /// Flat `cells.len() × n` slab of grab bits: `r_bits[c*n + j]` is cell
    /// `c`'s `r_j`. One allocation for the whole pool (see `CellHandles`).
    pub(crate) r_bits: Vec<SafeId>,
    /// Flat `cells.len() × n` slab of distance bits, laid out like `r_bits`.
    pub(crate) b_bits: Vec<SafeId>,
    pub(crate) announce_gfc: Vec<SafeId>,
    pub(crate) announce_append: Vec<SafeId>,
    pub(crate) announce_append_cell: Vec<SafeId>,
    /// The frontier cursor: an advisory atomic register holding the most
    /// recently appended cell any processor knows of. FIND-HEAD starts its
    /// walk here instead of scanning the pool from cell 0; every hit is
    /// still validated (`Next ≠ ⊥ ∧ ¬NotHead`) under a grab, so a stale
    /// cursor only costs time, never correctness.
    pub(crate) frontier: AtomicId,
    pub(crate) locals: Vec<Mutex<ProcLocal>>,
    /// Hot-path instruments (inert unless attached via the builder; never
    /// a shared-memory step either way).
    pub(crate) obs: CoreObs,
    pub(crate) _spec: std::marker::PhantomData<fn() -> S>,
}

/// The bounded wait-free universal construction (Theorem 6.6).
///
/// Transforms the *safe* sequential implementation `S` (a plain Rust state
/// machine) into a linearizable, wait-free shared object for `n`
/// processors, using only sticky primitives and safe registers.
///
/// ```
/// use sbu_core::Universal;
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_spec::specs::{CounterSpec, CounterOp};
///
/// let mut mem = NativeMem::new();
/// let counter = Universal::builder(2).build(&mut mem, CounterSpec::new());
/// assert_eq!(counter.apply(&mem, Pid(0), &CounterOp::Inc), 1);
/// assert_eq!(counter.apply(&mem, Pid(1), &CounterOp::Inc), 2);
/// ```
///
/// Non-default pool sizing and observability attach through the builder:
///
/// ```
/// use sbu_core::{Universal, bounded::UniversalConfig};
/// use sbu_mem::native::NativeMem;
/// use sbu_spec::specs::CounterSpec;
///
/// let registry = sbu_obs::Registry::new(2);
/// let mut mem = NativeMem::new();
/// let counter = Universal::builder(2)
///     .config(UniversalConfig::with_cells(40).paper_scans())
///     .obs(&registry)
///     .build(&mut mem, CounterSpec::new());
/// assert_eq!(counter.pool_size(), 40);
/// ```
pub struct Universal<S: SequentialSpec> {
    pub(crate) inner: Arc<Inner<S>>,
}

impl<S: SequentialSpec> std::fmt::Debug for Universal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Universal")
            .field("n_procs", &self.inner.n)
            .field("pool", &self.inner.cells.len())
            .field("fast_paths", &self.inner.use_fast_paths)
            .field("shard", &self.inner.shard)
            .finish_non_exhaustive()
    }
}

impl<S: SequentialSpec> Clone for Universal<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S> Universal<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    /// Start building the object for `n` processors: the default Θ(n²)
    /// pool, fast paths on, no observability. Chain
    /// [`UniversalBuilder::config`] and [`UniversalBuilder::obs`], then
    /// call [`UniversalBuilder::build`].
    pub fn builder(n: usize) -> UniversalBuilder<S> {
        UniversalBuilder {
            n,
            config: UniversalConfig::for_procs(n),
            obs: CoreObs::default(),
            shard: None,
            _spec: std::marker::PhantomData,
        }
    }

    /// Build the object with an explicit config (setup phase,
    /// single-threaded).
    ///
    /// **Superseded** by the builder — prefer
    /// `Universal::builder(n).config(config).build(mem, initial)`, which
    /// also exposes observability and shard labeling. Kept as a thin shim
    /// for older call sites.
    #[deprecated(
        since = "0.1.0",
        note = "use `Universal::builder(n).config(config).build(mem, initial)`"
    )]
    pub fn new<M: DataMem<CellPayload<S>>>(
        mem: &mut M,
        n: usize,
        config: UniversalConfig,
        initial: S,
    ) -> Self {
        Self::builder(n).config(config).build(mem, initial)
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.inner.n
    }

    /// The shard id this instance was built with (`None` for standalone
    /// objects; `sbu-service` sets it per shard for labeling).
    pub fn shard_id(&self) -> Option<usize> {
        self.inner.shard
    }

    /// Size of the cell pool.
    pub fn pool_size(&self) -> usize {
        self.inner.cells.len()
    }

    /// Number of pool cells currently claimed (live), for Theorem 6.6's
    /// space accounting (experiment E3). Counts the anchor.
    pub fn cells_in_use<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid) -> usize {
        self.inner
            .cells
            .iter()
            .filter(|c| !mem.sticky_read(pid, c.claimed).is_undef())
            .count()
    }

    /// Observable per-cell state, for tests and forensics.
    pub fn debug_pool_snapshot<M: DataMem<CellPayload<S>>>(
        &self,
        mem: &M,
        pid: Pid,
    ) -> Vec<CellSnapshot> {
        self.inner
            .cells
            .iter()
            .map(|c| CellSnapshot {
                claimed: mem.sticky_read(pid, c.claimed),
                owner: mem.sticky_word_read(pid, c.proc_id),
                not_head: mem.sticky_read(pid, c.not_head),
                next: mem.sticky_word_read(pid, c.next).map(|v| v as usize),
                prev: mem.sticky_word_read(pid, c.prev).map(|v| v as usize),
                has_cmd: mem.safe_read(pid, c.has_cmd) != 0,
                has_state: mem.safe_read(pid, c.has_state) != 0,
            })
            .collect()
    }

    /// Execute `op`, linearized at the step its cell is appended to the
    /// list. Wait-free: O(n) safe-implementation calls plus O(pool · n)
    /// register operations (Section 6.4).
    pub fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp {
        assert!(pid.0 < self.inner.n, "pid out of range");
        let mut local = self.inner.locals[pid.0].lock();
        let inner = &*self.inner;

        // Adaptive backoff decays one step per operation: a cap earned
        // during a burst drains away once the burst is over.
        if inner.adaptive_backoff {
            local.backoff_cap = local.backoff_cap.saturating_sub(1);
        }

        // Step 1: get a free cell (frees eligible owned cells first).
        let cell = inner.gfc(mem, pid, &mut local);

        // Step 2: store the command, then publish it (write-once, so no
        // reader can overlap the write).
        mem.data_write(pid, inner.cells[cell].cmd, CellPayload::Cmd(op.clone()));
        mem.safe_write(pid, inner.cells[cell].has_cmd, 1);

        // Steps 3–6 (shared with crash recovery, which re-executes them for
        // an operation interrupted after its command was published).
        let resp = inner.finish_apply(mem, pid, &mut local, cell, op);

        // Fence before acknowledging: every persistent write backing this
        // response (the jams of the append and the state/command data) must
        // survive a crash that arrives after the caller has seen the
        // result — the durable-linearizability contract for completed ops.
        mem.persist(pid);
        resp
    }

    /// Crash–restart recovery for `pid` (run once after
    /// [`sbu_mem::DurableMem::restart`], before any new [`Universal::apply`]
    /// call by this processor).
    ///
    /// A crash wipes the processor's volatile footprint: its private memory
    /// (grab counts, hints, the owned list) and the liveness of its shared
    /// volatile registers (announce flags, `r` grab bits) — left raised,
    /// those would make helpers prepare cells for a dead search forever and
    /// block the reclamation handshake. Recovery:
    ///
    /// 1. retracts both announcements and clears `r[pid]` on every cell;
    /// 2. rebuilds the owned list from the *persistent* `ProcID`/`Claimed`
    ///    fields, so cells claimed before the crash are reclaimed through
    ///    the unchanged distance-bit protocol once fully marked;
    /// 3. re-executes the interrupted operation, if one is found: a cell
    ///    owned by `pid` with a published command but no state snapshot was
    ///    crashed between publishing (step 2) and completing (step 5).
    ///    Re-running append + scan + snapshot is idempotent — jams agree,
    ///    the snapshot slot is write-once per incarnation — and makes the
    ///    in-flight operation *take effect* (its response is discarded; the
    ///    history records it as pending, which durable linearizability
    ///    allows to commit). Otherwise the helping pass of Figure 8 is
    ///    re-run, so announced appends by others never wait on the crash.
    ///
    /// A cell claimed without a published command (the crash landed inside
    /// step 2) is left on the owned list but can never be appended or
    /// marked; it leaks, absorbed by the padded Θ(n²) pool — the same
    /// budget that covers cells stranded by processors that never restart.
    pub fn recover<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid) {
        assert!(pid.0 < self.inner.n, "pid out of range");
        let inner = &*self.inner;
        let mut local = inner.locals[pid.0].lock();
        *local = ProcLocal::default();

        mem.safe_write(pid, inner.announce_gfc[pid.0], 0);
        mem.safe_write(pid, inner.announce_append[pid.0], 0);
        for c in 0..inner.cells.len() {
            mem.safe_write(pid, inner.r(c, pid.0), 0);
        }

        let mut in_flight = None;
        for (i, c) in inner.cells.iter().enumerate() {
            if i != ANCHOR
                && mem.sticky_word_read(pid, c.proc_id) == Some(pid.0 as u64)
                && mem.sticky_read(pid, c.claimed) == sbu_mem::Tri::One
            {
                local.owned.push(i);
                if mem.safe_read(pid, c.has_cmd) != 0 && mem.safe_read(pid, c.has_state) == 0 {
                    debug_assert!(in_flight.is_none(), "two incomplete cells for one pid");
                    in_flight = Some(i);
                }
            }
        }

        if let Some(cell) = in_flight {
            let op = match mem.data_read(pid, inner.cells[cell].cmd) {
                Some(CellPayload::Cmd(o)) => o,
                _ => panic!("cell {cell}: published command missing"),
            };
            inner.finish_apply(mem, pid, &mut local, cell, &op);
        } else {
            inner.help_appends(mem, pid, &mut local);
        }
        mem.persist(pid);
    }
}

/// Builder for [`Universal`] (start with [`Universal::builder`]).
///
/// Collects the construction-time choices — pool sizing / fast paths via
/// [`UniversalBuilder::config`], observability via
/// [`UniversalBuilder::obs`] — then allocates everything in
/// [`UniversalBuilder::build`].
#[derive(Debug)]
pub struct UniversalBuilder<S> {
    n: usize,
    config: UniversalConfig,
    obs: CoreObs,
    shard: Option<usize>,
    _spec: std::marker::PhantomData<fn() -> S>,
}

impl<S> UniversalBuilder<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    /// Override the pool sizing / fast-path config (default:
    /// [`UniversalConfig::for_procs`]).
    pub fn config(mut self, config: UniversalConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach hot-path instruments registered against `registry`
    /// (frontier hits/misses, combining batch sizes, grab retries, …; see
    /// [`CoreObs`]). Without this call the object records nothing.
    pub fn obs(mut self, registry: &sbu_obs::Registry) -> Self {
        self.obs = CoreObs::register(registry);
        self
    }

    /// Label the instance with a shard id (`sbu-service` builds one
    /// `Universal` per shard/key and labels each with the shard that owns
    /// it; standalone objects leave this unset). Purely advisory: shows up
    /// in `Debug` output and [`Universal::shard_id`], never in the
    /// protocol.
    pub fn shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Build the object: allocates the cell pool, the announce arrays, and
    /// the anchor cell holding `initial` (setup phase, single-threaded).
    pub fn build<M: DataMem<CellPayload<S>>>(self, mem: &mut M, initial: S) -> Universal<S> {
        let (n, config) = (self.n, self.config);
        assert!(n >= 1, "at least one processor");
        assert!(
            config.cells >= 2 * n + 2,
            "pool of {} cells is too small for {n} processors",
            config.cells
        );
        let mut r_bits = Vec::with_capacity(config.cells * n);
        let mut b_bits = Vec::with_capacity(config.cells * n);
        let cells: Vec<CellHandles> = (0..config.cells)
            .map(|_| CellHandles::new(mem, n, &mut r_bits, &mut b_bits))
            .collect();
        let inner = Inner {
            n,
            use_fast_paths: config.fast_paths,
            backoff_limit: config.backoff_limit,
            adaptive_backoff: config.adaptive_backoff,
            shard: self.shard,
            cells,
            r_bits,
            b_bits,
            announce_gfc: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            announce_append: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            announce_append_cell: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            frontier: mem.alloc_atomic(ANCHOR as u64),
            locals: (0..n).map(|_| Mutex::new(ProcLocal::default())).collect(),
            obs: self.obs,
            _spec: std::marker::PhantomData,
        };
        // The anchor: permanently claimed by the non-existent processor
        // `n`, holding the initial state, linked to itself so FIND-HEAD's
        // `Next ≠ ⊥` criterion matches it from the start.
        let anchor = &inner.cells[ANCHOR];
        let pid0 = Pid(0);
        mem.sticky_jam(pid0, anchor.claimed, true);
        mem.sticky_word_jam(pid0, anchor.proc_id, n as u64);
        mem.data_write(pid0, anchor.state, CellPayload::State(initial));
        mem.safe_write(pid0, anchor.has_state, 1);
        mem.sticky_word_jam(pid0, anchor.next, ANCHOR as u64);
        Universal {
            inner: Arc::new(inner),
        }
    }
}

impl<S> Inner<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    /// Steps 3–6 of the `apply` loop, from a claimed cell whose command is
    /// published: append, scan back, recompute, publish the snapshot, mark
    /// distance bits. Idempotent, so crash recovery re-runs it verbatim.
    fn finish_apply<M: DataMem<CellPayload<S>>>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        cell: usize,
        op: &S::Op,
    ) -> S::Resp {
        // Step 3: append — the linearization point.
        self.append(mem, pid, local, cell);

        // Step 4: scan back to the nearest state snapshot, collecting the
        // commands in between (at most ~n of them).
        let mut chain: Vec<S::Op> = Vec::new();
        let mut cur = self.next_of(mem, pid, cell);
        let base: S = loop {
            let ch = &self.cells[cur];
            if mem.safe_read(pid, ch.has_state) != 0 {
                match mem.data_read(pid, ch.state) {
                    Some(CellPayload::State(s)) => break s,
                    _ => panic!("cell {cur}: state slot missing or holding a command"),
                }
            }
            match mem.data_read(pid, ch.cmd) {
                Some(CellPayload::Cmd(o)) => chain.push(o),
                _ => panic!("cell {cur}: command slot missing or holding a state"),
            }
            cur = self.next_of(mem, pid, cur);
        };

        // Step 5: recompute the state (oldest command first), apply my own
        // command, publish the snapshot.
        let mut state = base;
        for o in chain.iter().rev() {
            state.apply(o);
        }
        let resp = state.apply(op);
        mem.data_write(pid, self.cells[cell].state, CellPayload::State(state));
        mem.safe_write(pid, self.cells[cell].has_state, 1);

        // Step 6: mark distance bits on the n cells behind me so their
        // owners can eventually reclaim them (Section 5).
        let mut cur = self.next_of(mem, pid, cell);
        for d in 0..self.n {
            if cur == ANCHOR {
                break;
            }
            mem.safe_write(pid, self.b(cur, d), 1);
            cur = self.next_of(mem, pid, cur);
        }
        resp
    }
}

impl<S> Inner<S> {
    /// Cell `c`'s grab bit `r_j` (flat-slab lookup).
    #[inline]
    pub(crate) fn r(&self, c: usize, j: usize) -> SafeId {
        self.r_bits[c * self.n + j]
    }

    /// Cell `c`'s distance bit `b_d` (flat-slab lookup).
    #[inline]
    pub(crate) fn b(&self, c: usize, d: usize) -> SafeId {
        self.b_bits[c * self.n + d]
    }

    /// A fresh backoff for a retry loop, capped by the configured limit —
    /// or, under adaptive backoff, by the processor's earned cap.
    pub(crate) fn new_backoff(&self, local: &ProcLocal) -> Backoff {
        let limit = if self.adaptive_backoff {
            local.backoff_cap.min(self.backoff_limit)
        } else {
            self.backoff_limit
        };
        Backoff::with_limit(limit)
    }

    /// Record that a retry loop actually had to pause: under adaptive
    /// backoff the processor earns a one-step-longer cap (up to the
    /// configured limit) for its next loops.
    pub(crate) fn note_contention(&self, local: &mut ProcLocal) {
        if self.adaptive_backoff && local.backoff_cap < self.backoff_limit {
            local.backoff_cap += 1;
        }
    }

    /// Follow a cell's `Next` pointer (must be defined — cells we walk are
    /// appended and, by the distance-bit argument, cannot be reclaimed
    /// while we can still reach them).
    pub(crate) fn next_of<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, c: usize) -> usize {
        let nxt = mem
            .sticky_word_read(pid, self.cells[c].next)
            .unwrap_or_else(|| panic!("cell {c}: followed a ⊥ Next pointer"))
            as usize;
        assert!(nxt < self.cells.len(), "cell {c}: Next out of range");
        nxt
    }
}

impl<S> UniversalObject<S> for Universal<S>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
{
    fn apply<M: DataMem<CellPayload<S>>>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp {
        Universal::apply(self, mem, pid, op)
    }
}
