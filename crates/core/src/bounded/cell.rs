//! The cell layout of Figure 3 (with the write-once data refinement).

use crate::CellPayload;
use sbu_mem::{DataId, DataMem, SafeId, StickyBitId, StickyWordId};
use sbu_spec::SequentialSpec;

/// Pool sizing for the bounded construction.
///
/// Theorem 6.6 proves Θ(n²) cells suffice; the default is a comfortably
/// padded 4n² + 8n + 4 to absorb leaks from crashed processors (a crash
/// permanently strands at most its claimed cell and up to three grabs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalConfig {
    /// Number of cells in the pool (including the anchor).
    pub cells: usize,
    /// Enable the locality fast paths (an answer to the paper's §7 open
    /// problem on time complexity):
    /// * FIND-HEAD first walks from the shared **frontier cursor** (the
    ///   most recently appended cell any processor published) and then
    ///   from this processor's last-seen head, instead of scanning the
    ///   whole pool;
    /// * the helping pass **combines**: it snapshots all announced pending
    ///   appends first and folds them into one warm-cursor pass;
    /// * GFC first retries cells this processor itself reclaimed.
    ///
    /// All of them fall back to the paper's full scans whenever a hint is
    /// stale, so correctness is identical (experiments E4c/E8 measure the
    /// gain; `crates/core/tests/fastpath_equivalence.rs` checks the
    /// outcome sets match exhaustively).
    pub fast_paths: bool,
}

impl UniversalConfig {
    /// The default Θ(n²) pool for `n` processors, fast paths enabled.
    pub fn for_procs(n: usize) -> Self {
        Self {
            cells: 4 * n * n + 8 * n + 4,
            fast_paths: true,
        }
    }

    /// Override the pool size (experiment E3 sweeps this to find the real
    /// high-water mark). Fast paths stay enabled; chain
    /// [`UniversalConfig::paper_scans`] to disable them.
    pub fn with_cells(cells: usize) -> Self {
        Self {
            cells,
            fast_paths: true,
        }
    }

    /// Enable the locality fast paths.
    pub fn with_fast_paths(mut self) -> Self {
        self.fast_paths = true;
        self
    }

    /// Disable every fast path: run the paper's full scans verbatim (the
    /// baseline arm of E4c/E8, and the reference side of the equivalence
    /// tests).
    pub fn paper_scans(mut self) -> Self {
        self.fast_paths = false;
        self
    }
}

/// Handles to one cell's registers (Figure 3).
///
/// | field       | kind        | decided by                              |
/// |-------------|-------------|------------------------------------------|
/// | `claimed`   | sticky bit  | owner takes the cell                     |
/// | `proc_id`   | sticky word | GFC jam race: who owns the cell          |
/// | `not_head`  | sticky bit  | set once the cell has a successor        |
/// | `next`      | sticky word | the cell appended just before this one   |
/// | `prev`      | sticky word | consensus on this cell's successor       |
/// | `init_flag` | safe        | owner is reinitializing (Figure 5)       |
/// | `count_init`| safe        | owner's progress through the `r` bits    |
/// | `r[n]`      | safe        | `r_j`: processor j holds a grab          |
/// | `b[n]`      | safe        | `b_d`: the d-th successor wrote a state  |
/// | `cmd`       | data        | the command (write-once per incarnation) |
/// | `has_cmd`   | safe        | `cmd` is stable                          |
/// | `state`     | data        | the state snapshot (write-once)          |
/// | `has_state` | safe        | `state` is stable                        |
pub(crate) struct CellHandles {
    pub claimed: StickyBitId,
    pub proc_id: StickyWordId,
    pub not_head: StickyBitId,
    pub next: StickyWordId,
    pub prev: StickyWordId,
    pub init_flag: SafeId,
    pub count_init: SafeId,
    pub r: Vec<SafeId>,
    pub b: Vec<SafeId>,
    pub cmd: DataId,
    pub has_cmd: SafeId,
    pub state: DataId,
    pub has_state: SafeId,
}

impl CellHandles {
    /// Allocate one cell's registers out of `mem` (named `new` per the
    /// crate-wide convention documented in `sbu_mem::prelude`: constructors
    /// are `new`, even when they allocate out of a backend).
    pub fn new<S: SequentialSpec, M: DataMem<CellPayload<S>>>(mem: &mut M, n: usize) -> Self {
        Self {
            claimed: mem.alloc_sticky_bit(),
            proc_id: mem.alloc_sticky_word(),
            not_head: mem.alloc_sticky_bit(),
            next: mem.alloc_sticky_word(),
            prev: mem.alloc_sticky_word(),
            init_flag: mem.alloc_safe(0),
            count_init: mem.alloc_safe(0),
            r: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            b: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            cmd: mem.alloc_data(None),
            has_cmd: mem.alloc_safe(0),
            state: mem.alloc_data(None),
            has_state: mem.alloc_safe(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_is_quadratic() {
        assert_eq!(UniversalConfig::for_procs(1).cells, 16);
        assert_eq!(UniversalConfig::for_procs(2).cells, 36);
        assert_eq!(UniversalConfig::for_procs(4).cells, 100);
        let big = UniversalConfig::for_procs(16).cells;
        assert!(big >= 4 * 16 * 16);
        assert_eq!(UniversalConfig::with_cells(7).cells, 7);
    }
}
