//! The cell layout of Figure 3 (with the write-once data refinement).

use crate::CellPayload;
use sbu_mem::{DataId, DataMem, SafeId, StickyBitId, StickyWordId};
use sbu_spec::SequentialSpec;

/// Pool sizing for the bounded construction.
///
/// Theorem 6.6 proves Θ(n²) cells suffice; the default is a comfortably
/// padded 4n² + 8n + 4 to absorb leaks from crashed processors (a crash
/// permanently strands at most its claimed cell and up to three grabs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalConfig {
    /// Number of cells in the pool (including the anchor).
    pub cells: usize,
    /// Enable the locality fast paths (an answer to the paper's §7 open
    /// problem on time complexity):
    /// * FIND-HEAD first walks from the shared **frontier cursor** (the
    ///   most recently appended cell any processor published) and then
    ///   from this processor's last-seen head, instead of scanning the
    ///   whole pool;
    /// * the helping pass **combines**: it snapshots all announced pending
    ///   appends first and folds them into one warm-cursor pass;
    /// * GFC first retries cells this processor itself reclaimed.
    ///
    /// All of them fall back to the paper's full scans whenever a hint is
    /// stale, so correctness is identical (experiments E4c/E8 measure the
    /// gain; `crates/core/tests/fastpath_equivalence.rs` checks the
    /// outcome sets match exhaustively).
    pub fast_paths: bool,
    /// Cap exponent for the bounded exponential backoff in the FIND-HEAD
    /// and GFC retry loops: one backoff pause never exceeds `2^backoff_limit`
    /// spin rounds (the `core.backoff_spins` counter attributes the cost).
    /// Purely local spinning — no shared-memory step is ever skipped, so
    /// the wait-freedom bound is unchanged by any value. Default
    /// [`sbu_mem::Backoff::DEFAULT_LIMIT`]; E10 sweeps this to tune the
    /// 4–8 thread `native_jam` contention cliff.
    pub backoff_limit: u32,
    /// Drive the effective backoff cap adaptively from *observed*
    /// contention instead of starting every retry loop at the full
    /// `backoff_limit`: each processor keeps a private cap that grows by
    /// one (up to `backoff_limit`) every time a retry loop actually has to
    /// pause, and decays by one at the start of each `apply`. Uncontended
    /// instances therefore pause for a single round; only sustained
    /// contention earns long pauses. Off by default.
    pub adaptive_backoff: bool,
}

impl UniversalConfig {
    /// The default Θ(n²) pool for `n` processors, fast paths enabled.
    pub fn for_procs(n: usize) -> Self {
        Self {
            cells: 4 * n * n + 8 * n + 4,
            fast_paths: true,
            backoff_limit: sbu_mem::Backoff::DEFAULT_LIMIT,
            adaptive_backoff: false,
        }
    }

    /// Override the pool size (experiment E3 sweeps this to find the real
    /// high-water mark). Fast paths stay enabled; chain
    /// [`UniversalConfig::paper_scans`] to disable them.
    pub fn with_cells(cells: usize) -> Self {
        Self {
            cells,
            ..Self::for_procs(0)
        }
    }

    /// Enable the locality fast paths.
    pub fn with_fast_paths(mut self) -> Self {
        self.fast_paths = true;
        self
    }

    /// Disable every fast path: run the paper's full scans verbatim (the
    /// baseline arm of E4c/E8, and the reference side of the equivalence
    /// tests).
    pub fn paper_scans(mut self) -> Self {
        self.fast_paths = false;
        self
    }

    /// Cap one backoff pause at `2^limit` spin rounds (see
    /// [`UniversalConfig::backoff_limit`]).
    pub fn with_backoff_limit(mut self, limit: u32) -> Self {
        self.backoff_limit = limit;
        self
    }

    /// Let observed contention drive the backoff cap (see
    /// [`UniversalConfig::adaptive_backoff`]).
    pub fn adaptive_backoff(mut self) -> Self {
        self.adaptive_backoff = true;
        self
    }
}

/// Handles to one cell's registers (Figure 3).
///
/// | field       | kind        | decided by                              |
/// |-------------|-------------|------------------------------------------|
/// | `claimed`   | sticky bit  | owner takes the cell                     |
/// | `proc_id`   | sticky word | GFC jam race: who owns the cell          |
/// | `not_head`  | sticky bit  | set once the cell has a successor        |
/// | `next`      | sticky word | the cell appended just before this one   |
/// | `prev`      | sticky word | consensus on this cell's successor       |
/// | `init_flag` | safe        | owner is reinitializing (Figure 5)       |
/// | `count_init`| safe        | owner's progress through the `r` bits    |
/// | `r[n]`      | safe        | `r_j`: processor j holds a grab          |
/// | `b[n]`      | safe        | `b_d`: the d-th successor wrote a state  |
/// | `cmd`       | data        | the command (write-once per incarnation) |
/// | `has_cmd`   | safe        | `cmd` is stable                          |
/// | `state`     | data        | the state snapshot (write-once)          |
/// | `has_state` | safe        | `state` is stable                        |
///
/// The per-processor `r`/`b` arrays are *not* stored here: they live in two
/// flat `Inner`-level vectors (`r_bits`/`b_bits`, one slab of `cells × n`
/// handles each) so that building an instance costs a constant number of
/// heap allocations instead of two `Vec`s per cell — the service runtime
/// creates `Universal` instances in bulk, one per live key. Allocation
/// *order* inside the backend is unchanged: [`CellHandles::new`] pushes
/// this cell's `r` and `b` handles into the slabs at exactly the point the
/// per-cell `Vec`s used to allocate them, so simulator location ids (and
/// every recorded `.sbu-sched` schedule) are identical.
pub(crate) struct CellHandles {
    pub claimed: StickyBitId,
    pub proc_id: StickyWordId,
    pub not_head: StickyBitId,
    pub next: StickyWordId,
    pub prev: StickyWordId,
    pub init_flag: SafeId,
    pub count_init: SafeId,
    pub cmd: DataId,
    pub has_cmd: SafeId,
    pub state: DataId,
    pub has_state: SafeId,
}

impl CellHandles {
    /// Allocate one cell's registers out of `mem` (named `new` per the
    /// crate-wide convention documented in `sbu_mem::prelude`: constructors
    /// are `new`, even when they allocate out of a backend), appending the
    /// cell's `n` grab bits and `n` distance bits to the shared slabs.
    pub fn new<S: SequentialSpec, M: DataMem<CellPayload<S>>>(
        mem: &mut M,
        n: usize,
        r_bits: &mut Vec<SafeId>,
        b_bits: &mut Vec<SafeId>,
    ) -> Self {
        let claimed = mem.alloc_sticky_bit();
        let proc_id = mem.alloc_sticky_word();
        let not_head = mem.alloc_sticky_bit();
        let next = mem.alloc_sticky_word();
        let prev = mem.alloc_sticky_word();
        let init_flag = mem.alloc_safe(0);
        let count_init = mem.alloc_safe(0);
        r_bits.extend((0..n).map(|_| mem.alloc_safe(0)));
        b_bits.extend((0..n).map(|_| mem.alloc_safe(0)));
        Self {
            claimed,
            proc_id,
            not_head,
            next,
            prev,
            init_flag,
            count_init,
            cmd: mem.alloc_data(None),
            has_cmd: mem.alloc_safe(0),
            state: mem.alloc_data(None),
            has_state: mem.alloc_safe(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_is_quadratic() {
        assert_eq!(UniversalConfig::for_procs(1).cells, 16);
        assert_eq!(UniversalConfig::for_procs(2).cells, 36);
        assert_eq!(UniversalConfig::for_procs(4).cells, 100);
        let big = UniversalConfig::for_procs(16).cells;
        assert!(big >= 4 * 16 * 16);
        assert_eq!(UniversalConfig::with_cells(7).cells, 7);
    }
}
