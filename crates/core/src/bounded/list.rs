//! FIND-HEAD and APPEND, with helping (Figures 7–8).

use super::{Inner, ProcLocal};
use sbu_mem::{Pid, Tri, WordMem};

impl<S> Inner<S> {
    /// FIND-HEAD (Figure 7): scan the pool for the cell that is fully
    /// linked (`Next ≠ ⊥`) but has no successor yet (`¬NotHead`). Returns
    /// the head **grabbed**, or `None` if `my_cell` got appended meanwhile
    /// (a helper finished our job). Bounded by Lemma 6.5: at most n cells
    /// are appended after we announce, so some scan sees a quiescent list.
    ///
    /// Under fast paths, two cursors are tried before the paper's full
    /// scan: the shared frontier (the most recently appended cell *any*
    /// processor published) and this processor's private last-seen head.
    /// Both walks validate their result under a grab exactly like a scan
    /// hit, so a stale cursor degrades to the slow path, never to a wrong
    /// head — the helping invariant is untouched.
    pub(crate) fn find_head<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        my_cell: usize,
    ) -> Option<usize> {
        if self.use_fast_paths {
            if mem
                .sticky_word_read(pid, self.cells[my_cell].next)
                .is_some()
            {
                return None;
            }
            let cursor = mem.atomic_read(pid, self.frontier) as usize;
            let hints = [
                Some(cursor).filter(|c| *c < self.cells.len()),
                local.head_hint,
            ];
            let mut tried = None;
            for hint in hints.into_iter().flatten() {
                if tried == Some(hint) {
                    continue;
                }
                tried = Some(hint);
                if let Some(found) = self.walk_from_hint(mem, pid, local, my_cell, hint) {
                    self.obs.frontier_hit.incr(pid.0);
                    local.head_hint = Some(found);
                    return Some(found);
                }
                self.obs.frontier_miss.incr(pid.0);
                if mem
                    .sticky_word_read(pid, self.cells[my_cell].next)
                    .is_some()
                {
                    return None;
                }
            }
            self.obs.frontier_fallback.incr(pid.0);
        }
        let mut backoff = self.new_backoff(local);
        loop {
            if mem
                .sticky_word_read(pid, self.cells[my_cell].next)
                .is_some()
            {
                return None;
            }
            for c in 0..self.cells.len() {
                if c == my_cell || !self.grab(mem, pid, local, c) {
                    continue;
                }
                if mem.sticky_word_read(pid, self.cells[c].next).is_some()
                    && mem.sticky_read(pid, self.cells[c].not_head) == Tri::Undef
                {
                    local.head_hint = Some(c);
                    return Some(c);
                }
                self.release(mem, pid, local, c);
            }
            // A whole sweep raced past us: let the appenders drain before
            // rescanning (local spinning only — no shared step is skipped).
            let rounds = backoff.spin();
            self.note_contention(local);
            self.obs.backoff_spins.add(pid.0, u64::from(rounds));
        }
    }

    /// The head-hint fast path (§7 open-problem extension): walk forward
    /// from the last head this processor saw, following `Prev` links, until
    /// a cell without a successor. Bails out (to the sound full scan) if
    /// the hint has gone stale in any way — the walk leaves the list, a
    /// grab fails (reclamation in progress), or the walk exceeds the pool
    /// size. Soundness is inherited from the full-scan criterion: the
    /// returned cell is validated (`Next ≠ ⊥ ∧ ¬NotHead`) under a grab,
    /// exactly like a scan hit.
    fn walk_from_hint<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        my_cell: usize,
        hint: usize,
    ) -> Option<usize> {
        let mut cur = hint;
        for _ in 0..=self.cells.len() {
            if cur == my_cell || !self.grab(mem, pid, local, cur) {
                return None;
            }
            let linked = mem.sticky_word_read(pid, self.cells[cur].next).is_some();
            if linked && mem.sticky_read(pid, self.cells[cur].not_head) == Tri::Undef {
                return Some(cur); // grabbed, validated — a current head
            }
            // Advance toward the head along Prev (set before NotHead, so a
            // NotHead cell always has a successor pointer).
            let next_step = if linked {
                mem.sticky_word_read(pid, self.cells[cur].prev)
            } else {
                None // reclaimed/reused cell: the trail is cold
            };
            self.release(mem, pid, local, cur);
            match next_step {
                Some(p) if (p as usize) < self.cells.len() => cur = p as usize,
                _ => return None,
            }
        }
        None
    }

    /// APPEND (Figure 8): announce the cell, append it, then help every
    /// other announced append. On return, `cell` is in the list.
    pub(crate) fn append<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        cell: usize,
    ) {
        // Announce: cell index first, flag second, so a raised flag implies
        // a stable index (a torn read can only occur against a *later*
        // announcement, whose cell is validated below anyway).
        mem.safe_write(pid, self.announce_append_cell[pid.0], cell as u64);
        mem.safe_write(pid, self.announce_append[pid.0], 1);

        if mem.sticky_word_read(pid, self.cells[cell].next).is_none() {
            if let Some(head) = self.find_head(mem, pid, local, cell) {
                self.append_inner(mem, pid, local, cell, head);
            }
        }
        debug_assert!(
            mem.sticky_word_read(pid, self.cells[cell].next).is_some(),
            "own cell must be appended before helping"
        );
        mem.safe_write(pid, self.announce_append[pid.0], 0);

        self.help_appends(mem, pid, local);
    }

    /// The helping pass of Figure 8, also re-run by crash recovery before a
    /// restarted processor accepts new operations: finish the append of
    /// every cell whose owner has announced one.
    ///
    /// Under fast paths this is a *combining* scan: all currently announced
    /// pending cells are collected first (advisory reads, no grabs held),
    /// then appended back-to-back. Each append still runs the full grab +
    /// validate + FIND-HEAD protocol, but after the first one the head
    /// cursors point at the cell just linked, so the batch folds into one
    /// warm walk per command instead of one cold pool scan per command.
    /// Exactly the announced set is helped either way — collection reads
    /// the same announce registers the paper's loop reads, and a cell that
    /// gets appended between collection and its turn is filtered by the
    /// same `Next = ⊥` validation, so no command is dropped or duplicated.
    pub(crate) fn help_appends<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
    ) {
        if self.use_fast_paths {
            // Combining: snapshot every announced (processor, cell) pair
            // before touching any of them, then append back-to-back.
            let mut pending: Vec<(usize, usize)> = Vec::new();
            for j in 0..self.n {
                if j == pid.0 || mem.safe_read(pid, self.announce_append[j]) == 0 {
                    continue;
                }
                let idx = mem.safe_read(pid, self.announce_append_cell[j]) as usize;
                if idx < self.cells.len() {
                    pending.push((j, idx));
                }
            }
            self.obs.combine_batch.record(pid.0, pending.len() as u64);
            for (j, idx) in pending {
                self.help_one(mem, pid, local, j, idx);
            }
            return;
        }
        for j in 0..self.n {
            if j == pid.0 || mem.safe_read(pid, self.announce_append[j]) == 0 {
                continue;
            }
            let idx = mem.safe_read(pid, self.announce_append_cell[j]) as usize;
            if idx >= self.cells.len() {
                continue; // torn announce read; nothing valid to help with
            }
            self.help_one(mem, pid, local, j, idx);
        }
    }

    /// Append one announced cell on behalf of processor `j`, if it is still
    /// a valid pending command.
    fn help_one<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        j: usize,
        idx: usize,
    ) {
        if !self.grab(mem, pid, local, idx) {
            return;
        }
        // Validate under the grab: appending any *valid pending* cell
        // of processor j is linearizable (its operation is invoked),
        // even if the announce read was torn.
        let valid = mem.sticky_word_read(pid, self.cells[idx].proc_id) == Some(j as u64)
            && mem.sticky_read(pid, self.cells[idx].claimed) == Tri::One
            && mem.safe_read(pid, self.cells[idx].has_cmd) != 0
            && mem.sticky_word_read(pid, self.cells[idx].next).is_none();
        if valid {
            if let Some(head) = self.find_head(mem, pid, local, idx) {
                self.append_inner(mem, pid, local, idx, head);
            }
        }
        self.release(mem, pid, local, idx);
    }

    /// APPEND-INNER (Figure 8): starting from a (grabbed) candidate head,
    /// race to jam `head.Prev` with our cell; on losing, link the winner
    /// (help!) and advance to it. The `Prev` jam is the consensus deciding
    /// each cell's unique successor; `Next` and `NotHead` follow from it,
    /// so every helper jams identical values.
    ///
    /// Consumes the grab on `head`.
    pub(crate) fn append_inner<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        local: &mut ProcLocal,
        cell: usize,
        mut head: usize,
    ) {
        loop {
            if mem.sticky_word_read(pid, self.cells[cell].next).is_some() {
                self.release(mem, pid, local, head);
                return;
            }
            mem.sticky_word_jam(pid, self.cells[head].prev, cell as u64);
            self.mark_dirty(local, head);
            let winner = mem
                .sticky_word_read(pid, self.cells[head].prev)
                .expect("just jammed") as usize;
            assert!(winner < self.cells.len(), "Prev out of range");
            if winner == cell {
                mem.sticky_word_jam(pid, self.cells[cell].next, head as u64);
                mem.sticky_jam(pid, self.cells[head].not_head, true);
                self.mark_dirty(local, cell);
                self.mark_dirty(local, head);
                if self.use_fast_paths {
                    // Publish the new head so everyone's next FIND-HEAD
                    // starts one step away from it (advisory only).
                    mem.atomic_write(pid, self.frontier, cell as u64);
                    local.head_hint = Some(cell);
                }
                self.release(mem, pid, local, head);
                return;
            }
            // Lost the race: finish linking the winner (it may have
            // crashed), then continue from it as the new head candidate.
            if self.grab(mem, pid, local, winner) {
                mem.sticky_word_jam(pid, self.cells[winner].next, head as u64);
                mem.sticky_jam(pid, self.cells[head].not_head, true);
                self.mark_dirty(local, winner);
                self.mark_dirty(local, head);
                self.release(mem, pid, local, head);
                head = winner;
                continue;
            }
            // The winner is being reclaimed — only possible once it is n
            // deep in the list, by which time our cell must have been
            // appended by a helper (Lemma 6.5). Re-check and, if the world
            // is stranger than the lemma, rescan for a fresh head.
            self.release(mem, pid, local, head);
            match self.find_head(mem, pid, local, cell) {
                None => return,
                Some(h) => head = h,
            }
        }
    }
}
