//! "Universality of consensus" — the title claim, literally.
//!
//! The bounded construction fixes its agreement primitive (sticky fields).
//! This variant is parameterized over **any**
//! [`Consensus`](sbu_sticky::consensus::Consensus) object: each list cell
//! carries one consensus instance deciding its unique successor. Plugging
//! in different consensus implementations discharges the paper's
//! corollaries by construction:
//!
//! * [`StickyWordConsensus`](sbu_sticky::consensus::StickyWordConsensus) —
//!   a deterministic cross-validation of the sticky-based constructions;
//! * [`RandomizedConsensus`](sbu_sticky::RandomizedConsensus) — the
//!   introduction's punchline: a **randomized wait-free universal object
//!   from registers only** ("polynomial number of safe bits is sufficient
//!   to convert a safe implementation into a (randomized) wait-free one").
//!
//! Like [`UnboundedUniversal`](crate::unbounded::UnboundedUniversal) this
//! variant consumes one arena cell per operation (no reclamation — the
//! bounded pool is the sticky construction's speciality). Unlike it, the
//! list is *discovered* rather than stored: every walk starts from the
//! anchor and follows consensus decisions, so no shared back-pointers or
//! sequence numbers are needed — only the consensus objects, safe has-bits,
//! and data cells. That keeps the register-only claim clean.
//!
//! Append correctness argument: a walker's walk ends at the true list end
//! `e` at walk time (the only cell whose successor consensus is still
//! undecided — a decision invisible to `decision()` because its winner
//! crashed pre-publication is *discovered* by the walker's own `propose`,
//! which by agreement returns the established winner). A candidate is
//! proposed only if it was not seen linked during the walk; since the only
//! place anything can link afterwards is `e` itself, no cell can ever be
//! linked twice, so the list stays a simple chain.

use crate::CellPayload;
use parking_lot::Mutex;
use sbu_mem::{DataId, DataMem, Pid, SafeId};
use sbu_spec::SequentialSpec;
use sbu_sticky::consensus::Consensus;
use std::sync::Arc;

struct ArenaCell<C> {
    cmd: DataId,
    has_cmd: SafeId,
    state: DataId,
    has_state: SafeId,
    /// Consensus on this cell's successor in the list.
    succ: C,
}

struct Inner<S, C> {
    n: usize,
    ops_per_proc: usize,
    cells: Vec<ArenaCell<C>>,
    /// Announced pending cell per processor: `0 = ⊥`, else index + 1.
    announce: Vec<SafeId>,
    locals: Vec<Mutex<ProcLocal>>,
    _spec: std::marker::PhantomData<fn() -> S>,
}

#[derive(Default)]
struct ProcLocal {
    used: usize,
}

const ANCHOR: usize = 0;

/// A wait-free universal construction from an arbitrary consensus object.
///
/// ```
/// use sbu_core::ConsensusUniversal;
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_spec::specs::{CounterSpec, CounterOp};
/// use sbu_sticky::consensus::StickyWordConsensus;
///
/// let mut mem = NativeMem::new();
/// let counter = ConsensusUniversal::new(&mut mem, 2, 8, CounterSpec::new(),
///                                       StickyWordConsensus::new);
/// assert_eq!(counter.apply(&mem, Pid(0), &CounterOp::Inc), 1);
/// assert_eq!(counter.apply(&mem, Pid(1), &CounterOp::Inc), 2);
/// ```
pub struct ConsensusUniversal<S: SequentialSpec, C> {
    inner: Arc<Inner<S, C>>,
}

impl<S: SequentialSpec, C> Clone for ConsensusUniversal<S, C> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: SequentialSpec, C> std::fmt::Debug for ConsensusUniversal<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusUniversal")
            .field("n_procs", &self.inner.n)
            .field("arena", &self.inner.cells.len())
            .finish_non_exhaustive()
    }
}

impl<S, C> ConsensusUniversal<S, C>
where
    S: SequentialSpec + Send + Sync,
    S::Op: Send + Sync,
    C: Send + Sync,
{
    /// Build the object, creating one consensus instance per arena cell via
    /// `make_consensus` (e.g. `StickyWordConsensus::new`, or a closure
    /// seeding `RandomizedConsensus`).
    pub fn new<M>(
        mem: &mut M,
        n: usize,
        ops_per_proc: usize,
        initial: S,
        mut make_consensus: impl FnMut(&mut M) -> C,
    ) -> Self
    where
        M: DataMem<CellPayload<S>>,
    {
        assert!(n >= 1 && ops_per_proc >= 1);
        let total = 1 + n * ops_per_proc;
        let cells: Vec<ArenaCell<C>> = (0..total)
            .map(|_| ArenaCell {
                cmd: mem.alloc_data(None),
                has_cmd: mem.alloc_safe(0),
                state: mem.alloc_data(None),
                has_state: mem.alloc_safe(0),
                succ: make_consensus(mem),
            })
            .collect();
        let inner = Inner {
            n,
            ops_per_proc,
            cells,
            announce: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            locals: (0..n).map(|_| Mutex::new(ProcLocal::default())).collect(),
            _spec: std::marker::PhantomData,
        };
        let pid0 = Pid(0);
        mem.data_write(pid0, inner.cells[ANCHOR].state, CellPayload::State(initial));
        mem.safe_write(pid0, inner.cells[ANCHOR].has_state, 1);
        Self {
            inner: Arc::new(inner),
        }
    }

    /// Walk the list from the anchor, following `decision()`s. Returns the
    /// chain of cell indices (anchor first) up to the current end.
    fn walk<M>(&self, mem: &M, pid: Pid) -> Vec<usize>
    where
        M: DataMem<CellPayload<S>>,
        C: Consensus<M>,
    {
        let inner = &*self.inner;
        let mut chain = vec![ANCHOR];
        let mut cur = ANCHOR;
        while let Some(next) = inner.cells[cur].succ.decision(mem, pid) {
            let next = next as usize;
            assert!(next < inner.cells.len(), "decided successor out of range");
            assert!(
                !chain.contains(&next),
                "cycle: cell {next} linked twice (the walked-set validation \
                 must prevent this)"
            );
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// Execute `op`; linearized when some successor consensus decides its
    /// cell.
    pub fn apply<M>(&self, mem: &M, pid: Pid, op: &S::Op) -> S::Resp
    where
        M: DataMem<CellPayload<S>>,
        C: Consensus<M>,
    {
        let inner = &*self.inner;
        assert!(pid.0 < inner.n);
        let mut local = inner.locals[pid.0].lock();
        assert!(
            local.used < inner.ops_per_proc,
            "arena exhausted (raise ops_per_proc)"
        );
        let cell = 1 + pid.0 * inner.ops_per_proc + local.used;
        local.used += 1;

        mem.data_write(pid, inner.cells[cell].cmd, CellPayload::Cmd(op.clone()));
        mem.safe_write(pid, inner.cells[cell].has_cmd, 1);
        mem.safe_write(pid, inner.announce[pid.0], cell as u64 + 1);

        // Append: walk, pick the priority candidate, propose at the end.
        let chain = loop {
            let chain = self.walk(mem, pid);
            if chain.contains(&cell) {
                break chain;
            }
            let end = *chain.last().expect("chain contains the anchor");
            let turn = chain.len() % inner.n;
            let cand = {
                let a = mem.safe_read(pid, inner.announce[turn]) as usize;
                let idx = a.wrapping_sub(1);
                if a != 0
                    && idx < inner.cells.len()
                    && mem.safe_read(pid, inner.cells[idx].has_cmd) != 0
                    && !chain.contains(&idx)
                {
                    idx
                } else {
                    cell
                }
            };
            inner.cells[end].succ.propose(mem, pid, cand as u64);
        };
        mem.safe_write(pid, inner.announce[pid.0], 0);

        // Compute my response from the nearest snapshot behind my cell.
        let my_pos = chain.iter().position(|&c| c == cell).expect("appended");
        let mut ops_to_apply: Vec<&usize> = Vec::new();
        let mut base: Option<S> = None;
        for c in chain[..my_pos].iter().rev() {
            if mem.safe_read(pid, inner.cells[*c].has_state) != 0 {
                match mem.data_read(pid, inner.cells[*c].state) {
                    Some(CellPayload::State(s)) => {
                        base = Some(s);
                        break;
                    }
                    _ => panic!("cell {c}: state slot corrupt"),
                }
            }
            ops_to_apply.push(c);
        }
        let mut state = base.expect("the anchor always holds a state");
        for c in ops_to_apply.iter().rev() {
            match mem.data_read(pid, inner.cells[**c].cmd) {
                Some(CellPayload::Cmd(o)) => {
                    state.apply(&o);
                }
                _ => panic!("cell {c}: command slot corrupt"),
            }
        }
        let resp = state.apply(op);
        mem.data_write(pid, inner.cells[cell].state, CellPayload::State(state));
        mem.safe_write(pid, inner.cells[cell].has_state, 1);
        resp
    }
}

// Note: `UniversalObject` is not implemented for `ConsensusUniversal`
// because its `apply` needs `C: Consensus<M>` for the *caller's* backend
// `M`, which the object-safe-over-all-backends trait cannot express. Use
// the inherent `apply` directly.
