//! Ready-made wait-free objects, built by instantiating the universal
//! construction — the paper's punchline applied: "any sequential object".
//!
//! Each wrapper is generic over the [`UniversalObject`] powering it, so the
//! same queue can run on the bounded construction, the unbounded baseline,
//! or the lock-based strawman — which is exactly how the experiments
//! compare them.

use crate::{CellPayload, UniversalObject};
use sbu_mem::{DataMem, Pid};
use sbu_spec::specs::{
    BankOp, BankResp, BankSpec, CasOp, CasResp, CasSpec, CounterOp, CounterSpec, DequeOp,
    DequeResp, DequeSpec, KvOp, KvResp, KvSpec, PqOp, PqResp, PriorityQueueSpec, QueueOp,
    QueueResp, QueueSpec, SetOp, SetResp, SetSpec, SnapshotOp, SnapshotResp, SnapshotSpec, StackOp,
    StackResp, StackSpec,
};

/// A wait-free FIFO queue.
#[derive(Debug, Clone)]
pub struct WaitFreeQueue<U> {
    inner: U,
}

impl<U: UniversalObject<QueueSpec>> WaitFreeQueue<U> {
    /// Wrap a universal implementation of [`QueueSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Append `value` at the tail.
    pub fn enqueue<M: DataMem<CellPayload<QueueSpec>>>(&self, mem: &M, pid: Pid, value: u64) {
        let resp = self.inner.apply(mem, pid, &QueueOp::Enqueue(value));
        debug_assert_eq!(resp, QueueResp::Ack);
    }

    /// Remove and return the head, or `None` when empty.
    pub fn dequeue<M: DataMem<CellPayload<QueueSpec>>>(&self, mem: &M, pid: Pid) -> Option<u64> {
        match self.inner.apply(mem, pid, &QueueOp::Dequeue) {
            QueueResp::Value(v) => Some(v),
            QueueResp::Empty => None,
            other => panic!("queue protocol violation: {other:?}"),
        }
    }

    /// Current length.
    pub fn len<M: DataMem<CellPayload<QueueSpec>>>(&self, mem: &M, pid: Pid) -> usize {
        match self.inner.apply(mem, pid, &QueueOp::Len) {
            QueueResp::Len(l) => l,
            other => panic!("queue protocol violation: {other:?}"),
        }
    }
}

/// A wait-free LIFO stack.
#[derive(Debug, Clone)]
pub struct WaitFreeStack<U> {
    inner: U,
}

impl<U: UniversalObject<StackSpec>> WaitFreeStack<U> {
    /// Wrap a universal implementation of [`StackSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Push a value.
    pub fn push<M: DataMem<CellPayload<StackSpec>>>(&self, mem: &M, pid: Pid, value: u64) {
        let resp = self.inner.apply(mem, pid, &StackOp::Push(value));
        debug_assert_eq!(resp, StackResp::Ack);
    }

    /// Pop the top value, or `None` when empty.
    pub fn pop<M: DataMem<CellPayload<StackSpec>>>(&self, mem: &M, pid: Pid) -> Option<u64> {
        match self.inner.apply(mem, pid, &StackOp::Pop) {
            StackResp::Value(v) => Some(v),
            StackResp::Empty => None,
            other => panic!("stack protocol violation: {other:?}"),
        }
    }

    /// Read the top value without removing it.
    pub fn peek<M: DataMem<CellPayload<StackSpec>>>(&self, mem: &M, pid: Pid) -> Option<u64> {
        match self.inner.apply(mem, pid, &StackOp::Peek) {
            StackResp::Value(v) => Some(v),
            StackResp::Empty => None,
            other => panic!("stack protocol violation: {other:?}"),
        }
    }
}

/// A wait-free fetch-and-add counter.
#[derive(Debug, Clone)]
pub struct WaitFreeCounter<U> {
    inner: U,
}

impl<U: UniversalObject<CounterSpec>> WaitFreeCounter<U> {
    /// Wrap a universal implementation of [`CounterSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Increment; returns the new value (so concurrent increments are
    /// totally ordered — this needs consensus, which is the whole point).
    pub fn inc<M: DataMem<CellPayload<CounterSpec>>>(&self, mem: &M, pid: Pid) -> u64 {
        self.inner.apply(mem, pid, &CounterOp::Inc)
    }

    /// Add `k`; returns the new value.
    pub fn add<M: DataMem<CellPayload<CounterSpec>>>(&self, mem: &M, pid: Pid, k: u64) -> u64 {
        self.inner.apply(mem, pid, &CounterOp::Add(k))
    }

    /// Read the current value.
    pub fn read<M: DataMem<CellPayload<CounterSpec>>>(&self, mem: &M, pid: Pid) -> u64 {
        self.inner.apply(mem, pid, &CounterOp::Read)
    }
}

/// A wait-free key-value store.
#[derive(Debug, Clone)]
pub struct WaitFreeKv<U> {
    inner: U,
}

impl<U: UniversalObject<KvSpec>> WaitFreeKv<U> {
    /// Wrap a universal implementation of [`KvSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Insert or overwrite; returns the previous binding.
    pub fn put<M: DataMem<CellPayload<KvSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        key: u64,
        value: u64,
    ) -> Option<u64> {
        match self.inner.apply(mem, pid, &KvOp::Put(key, value)) {
            KvResp::Value(v) => v,
            other => panic!("kv protocol violation: {other:?}"),
        }
    }

    /// Look up a key.
    pub fn get<M: DataMem<CellPayload<KvSpec>>>(&self, mem: &M, pid: Pid, key: u64) -> Option<u64> {
        match self.inner.apply(mem, pid, &KvOp::Get(key)) {
            KvResp::Value(v) => v,
            other => panic!("kv protocol violation: {other:?}"),
        }
    }

    /// Remove a binding; returns it.
    pub fn remove<M: DataMem<CellPayload<KvSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        key: u64,
    ) -> Option<u64> {
        match self.inner.apply(mem, pid, &KvOp::Remove(key)) {
            KvResp::Value(v) => v,
            other => panic!("kv protocol violation: {other:?}"),
        }
    }
}

/// A wait-free compare-and-swap register — an object of *infinite*
/// consensus number implemented from 3-valued primitives: the constructive
/// content of "the RMW hierarchy collapses" (Section 7).
#[derive(Debug, Clone)]
pub struct WaitFreeCas<U> {
    inner: U,
}

impl<U: UniversalObject<CasSpec>> WaitFreeCas<U> {
    /// Wrap a universal implementation of [`CasSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Compare-and-swap; returns `(swapped, witnessed_value)`.
    pub fn cas<M: DataMem<CellPayload<CasSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        expect: u64,
        new: u64,
    ) -> (bool, u64) {
        match self.inner.apply(mem, pid, &CasOp::Cas { expect, new }) {
            CasResp::Swapped { ok, witness } => (ok, witness),
            other => panic!("cas protocol violation: {other:?}"),
        }
    }

    /// Unconditional write.
    pub fn write<M: DataMem<CellPayload<CasSpec>>>(&self, mem: &M, pid: Pid, value: u64) {
        let resp = self.inner.apply(mem, pid, &CasOp::Write(value));
        debug_assert_eq!(resp, CasResp::Ack);
    }

    /// Read the current value.
    pub fn read<M: DataMem<CellPayload<CasSpec>>>(&self, mem: &M, pid: Pid) -> u64 {
        match self.inner.apply(mem, pid, &CasOp::Read) {
            CasResp::Value(v) => v,
            other => panic!("cas protocol violation: {other:?}"),
        }
    }
}

/// A wait-free bank with atomic transfers (see
/// [`BankSpec`]): the example object for the `bank_teller` demo.
#[derive(Debug, Clone)]
pub struct WaitFreeBank<U> {
    inner: U,
}

impl<U: UniversalObject<BankSpec>> WaitFreeBank<U> {
    /// Wrap a universal implementation of [`BankSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Atomically move funds.
    pub fn transfer<M: DataMem<CellPayload<BankSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        from: usize,
        to: usize,
        amount: u64,
    ) -> BankResp {
        self.inner
            .apply(mem, pid, &BankOp::Transfer { from, to, amount })
    }

    /// Deposit funds.
    pub fn deposit<M: DataMem<CellPayload<BankSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        account: usize,
        amount: u64,
    ) -> BankResp {
        self.inner
            .apply(mem, pid, &BankOp::Deposit { account, amount })
    }

    /// One balance.
    pub fn balance<M: DataMem<CellPayload<BankSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        account: usize,
    ) -> Option<u64> {
        match self.inner.apply(mem, pid, &BankOp::Balance(account)) {
            BankResp::Amount(a) => Some(a),
            _ => None,
        }
    }

    /// The conserved total.
    pub fn total<M: DataMem<CellPayload<BankSpec>>>(&self, mem: &M, pid: Pid) -> u64 {
        match self.inner.apply(mem, pid, &BankOp::Total) {
            BankResp::Amount(a) => a,
            other => panic!("bank protocol violation: {other:?}"),
        }
    }
}

/// A wait-free atomic snapshot.
#[derive(Debug, Clone)]
pub struct WaitFreeSnapshot<U> {
    inner: U,
}

impl<U: UniversalObject<SnapshotSpec>> WaitFreeSnapshot<U> {
    /// Wrap a universal implementation of [`SnapshotSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Overwrite one component.
    pub fn update<M: DataMem<CellPayload<SnapshotSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        index: usize,
        value: u64,
    ) {
        let resp = self
            .inner
            .apply(mem, pid, &SnapshotOp::Update { index, value });
        debug_assert_eq!(resp, SnapshotResp::Ack);
    }

    /// Atomically read all components.
    pub fn scan<M: DataMem<CellPayload<SnapshotSpec>>>(&self, mem: &M, pid: Pid) -> Vec<u64> {
        match self.inner.apply(mem, pid, &SnapshotOp::Scan) {
            SnapshotResp::View(v) => v,
            other => panic!("snapshot protocol violation: {other:?}"),
        }
    }
}

/// A wait-free double-ended queue — an object with no known simple
/// lock-free algorithm, free via universality.
#[derive(Debug, Clone)]
pub struct WaitFreeDeque<U> {
    inner: U,
}

impl<U: UniversalObject<DequeSpec>> WaitFreeDeque<U> {
    /// Wrap a universal implementation of [`DequeSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Insert at the front.
    pub fn push_front<M: DataMem<CellPayload<DequeSpec>>>(&self, mem: &M, pid: Pid, v: u64) {
        let resp = self.inner.apply(mem, pid, &DequeOp::PushFront(v));
        debug_assert_eq!(resp, DequeResp::Ack);
    }

    /// Insert at the back.
    pub fn push_back<M: DataMem<CellPayload<DequeSpec>>>(&self, mem: &M, pid: Pid, v: u64) {
        let resp = self.inner.apply(mem, pid, &DequeOp::PushBack(v));
        debug_assert_eq!(resp, DequeResp::Ack);
    }

    /// Remove from the front.
    pub fn pop_front<M: DataMem<CellPayload<DequeSpec>>>(&self, mem: &M, pid: Pid) -> Option<u64> {
        match self.inner.apply(mem, pid, &DequeOp::PopFront) {
            DequeResp::Value(v) => Some(v),
            DequeResp::Empty => None,
            other => panic!("deque protocol violation: {other:?}"),
        }
    }

    /// Remove from the back.
    pub fn pop_back<M: DataMem<CellPayload<DequeSpec>>>(&self, mem: &M, pid: Pid) -> Option<u64> {
        match self.inner.apply(mem, pid, &DequeOp::PopBack) {
            DequeResp::Value(v) => Some(v),
            DequeResp::Empty => None,
            other => panic!("deque protocol violation: {other:?}"),
        }
    }
}

/// A wait-free min-priority queue.
#[derive(Debug, Clone)]
pub struct WaitFreePriorityQueue<U> {
    inner: U,
}

impl<U: UniversalObject<PriorityQueueSpec>> WaitFreePriorityQueue<U> {
    /// Wrap a universal implementation of [`PriorityQueueSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Insert with a priority (lower = served first).
    pub fn insert<M: DataMem<CellPayload<PriorityQueueSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
        priority: u64,
        value: u64,
    ) {
        let resp = self
            .inner
            .apply(mem, pid, &PqOp::Insert { priority, value });
        debug_assert_eq!(resp, PqResp::Ack);
    }

    /// Remove and return `(priority, value)` of the minimum item.
    pub fn extract_min<M: DataMem<CellPayload<PriorityQueueSpec>>>(
        &self,
        mem: &M,
        pid: Pid,
    ) -> Option<(u64, u64)> {
        match self.inner.apply(mem, pid, &PqOp::ExtractMin) {
            PqResp::Item(p, v) => Some((p, v)),
            PqResp::Empty => None,
            other => panic!("priority-queue protocol violation: {other:?}"),
        }
    }
}

/// A wait-free ordered set.
#[derive(Debug, Clone)]
pub struct WaitFreeSet<U> {
    inner: U,
}

impl<U: UniversalObject<SetSpec>> WaitFreeSet<U> {
    /// Wrap a universal implementation of [`SetSpec`].
    pub fn new(inner: U) -> Self {
        Self { inner }
    }

    /// Insert; `true` iff the element was new.
    pub fn insert<M: DataMem<CellPayload<SetSpec>>>(&self, mem: &M, pid: Pid, v: u64) -> bool {
        match self.inner.apply(mem, pid, &SetOp::Insert(v)) {
            SetResp::Bool(b) => b,
            other => panic!("set protocol violation: {other:?}"),
        }
    }

    /// Remove; `true` iff the element was present.
    pub fn remove<M: DataMem<CellPayload<SetSpec>>>(&self, mem: &M, pid: Pid, v: u64) -> bool {
        match self.inner.apply(mem, pid, &SetOp::Remove(v)) {
            SetResp::Bool(b) => b,
            other => panic!("set protocol violation: {other:?}"),
        }
    }

    /// Membership test.
    pub fn contains<M: DataMem<CellPayload<SetSpec>>>(&self, mem: &M, pid: Pid, v: u64) -> bool {
        match self.inner.apply(mem, pid, &SetOp::Contains(v)) {
            SetResp::Bool(b) => b,
            other => panic!("set protocol violation: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universal;
    use sbu_mem::native::NativeMem;

    #[test]
    fn deque_wrapper_roundtrip() {
        let mut mem: NativeMem<CellPayload<DequeSpec>> = NativeMem::new();
        let d = WaitFreeDeque::new(Universal::builder(1).build(&mut mem, DequeSpec::new()));
        d.push_back(&mem, Pid(0), 2);
        d.push_front(&mem, Pid(0), 1);
        assert_eq!(d.pop_back(&mem, Pid(0)), Some(2));
        assert_eq!(d.pop_front(&mem, Pid(0)), Some(1));
        assert_eq!(d.pop_front(&mem, Pid(0)), None);
    }

    #[test]
    fn priority_queue_wrapper_orders() {
        let mut mem: NativeMem<CellPayload<PriorityQueueSpec>> = NativeMem::new();
        let pq = WaitFreePriorityQueue::new(
            Universal::builder(1).build(&mut mem, PriorityQueueSpec::new()),
        );
        pq.insert(&mem, Pid(0), 9, 90);
        pq.insert(&mem, Pid(0), 1, 10);
        assert_eq!(pq.extract_min(&mem, Pid(0)), Some((1, 10)));
        assert_eq!(pq.extract_min(&mem, Pid(0)), Some((9, 90)));
        assert_eq!(pq.extract_min(&mem, Pid(0)), None);
    }

    #[test]
    fn set_wrapper_semantics() {
        let mut mem: NativeMem<CellPayload<SetSpec>> = NativeMem::new();
        let s = WaitFreeSet::new(Universal::builder(2).build(&mut mem, SetSpec::new()));
        assert!(s.insert(&mem, Pid(0), 7));
        assert!(!s.insert(&mem, Pid(1), 7));
        assert!(s.contains(&mem, Pid(0), 7));
        assert!(s.remove(&mem, Pid(1), 7));
        assert!(!s.contains(&mem, Pid(0), 7));
    }

    #[test]
    fn counter_and_queue_wrappers_sequential() {
        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let c = WaitFreeCounter::new(Universal::builder(1).build(&mut mem, CounterSpec::new()));
        assert_eq!(c.inc(&mem, Pid(0)), 1);
        assert_eq!(c.add(&mem, Pid(0), 9), 10);
        assert_eq!(c.read(&mem, Pid(0)), 10);

        let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
        let q = WaitFreeQueue::new(Universal::builder(1).build(&mut mem, QueueSpec::new()));
        q.enqueue(&mem, Pid(0), 5);
        assert_eq!(q.len(&mem, Pid(0)), 1);
        assert_eq!(q.dequeue(&mem, Pid(0)), Some(5));
    }

    #[test]
    fn kv_and_snapshot_wrappers_sequential() {
        let mut mem: NativeMem<CellPayload<KvSpec>> = NativeMem::new();
        let kv = WaitFreeKv::new(Universal::builder(1).build(&mut mem, KvSpec::new()));
        assert_eq!(kv.put(&mem, Pid(0), 1, 100), None);
        assert_eq!(kv.get(&mem, Pid(0), 1), Some(100));
        assert_eq!(kv.remove(&mem, Pid(0), 1), Some(100));

        let mut mem: NativeMem<CellPayload<SnapshotSpec>> = NativeMem::new();
        let snap =
            WaitFreeSnapshot::new(Universal::builder(2).build(&mut mem, SnapshotSpec::new(2)));
        snap.update(&mem, Pid(0), 0, 5);
        snap.update(&mem, Pid(1), 1, 6);
        assert_eq!(snap.scan(&mem, Pid(0)), vec![5, 6]);
    }
}
