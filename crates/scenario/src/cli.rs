//! The `exp scenarios` driver: argument parsing, matrix execution,
//! artifact writing, and the coverage-comparison mode.
//!
//! Kept in the library (not a binary) so `sbu-bench`'s `exp` front-end and
//! the `scenario_matrix` example share one implementation, and so the
//! integration tests can drive it in-process.

use crate::coverage::{compare, signature_from_json};
use crate::matrix::Verdict;
use crate::report::write_artifacts;
use crate::run::{run_matrix, RunConfig};
use crate::scenario;
use sbu_obs::json::Json;
use std::path::PathBuf;

/// Help text for `exp scenarios --help`.
pub const USAGE: &str = "usage: exp scenarios [options]
       exp scenarios --compare BASE.json CURRENT.json

Run the deterministic scenario matrix: every registered scenario crossed
against every object (sticky, jam-word, counter) and backend (native,
durable, torn-lying). Each scenario writes SCENARIO_<NAME>_REPORT.md and
OBS_scenario_<name>.json; the whole run writes BENCH_scenarios.json.

options:
  --scenario A,B,..   run only the named scenarios (default: all)
  --seed N            master seed (default 42); cells derive their own
  --out DIR           artifact directory (default: current directory)
  --max-threads N     clamp every phase's thread count (1 = bit-determinism)
  --ops-factor N      multiply every phase's per-thread ops (default 1)
  --list              list registered scenarios and exit
  --compare B C       compare coverage of run C against baseline B
  -h, --help          this help

exit codes:
  0  every cell matched its expected verdict / no coverage regression
  1  a cell defied expectations (violation, escaped adversary, unverified)
     or the comparison found a coverage regression
  2  usage or I/O error
";

/// Parsed `exp scenarios` arguments.
#[derive(Debug, Clone, Default)]
struct Args {
    rc: RunConfig,
    scenarios: Option<Vec<String>>,
    out: Option<PathBuf>,
    list: bool,
    compare: Option<(PathBuf, PathBuf)>,
    help: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        rc: RunConfig::default(),
        ..Args::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => {
                out.scenarios = Some(
                    value("--scenario")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--seed" => {
                let v = value("--seed")?;
                out.rc.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--max-threads" => {
                let v = value("--max-threads")?;
                out.rc.max_threads = v.parse().map_err(|_| format!("bad --max-threads {v:?}"))?;
            }
            "--ops-factor" => {
                let v = value("--ops-factor")?;
                let f: usize = v.parse().map_err(|_| format!("bad --ops-factor {v:?}"))?;
                if f == 0 {
                    return Err("--ops-factor must be >= 1".into());
                }
                out.rc.ops_factor = f;
            }
            "--list" => out.list = true,
            "--compare" => {
                let base = value("--compare")?;
                let current = it
                    .next()
                    .cloned()
                    .ok_or("--compare needs BASE.json and CURRENT.json")?;
                out.compare = Some((PathBuf::from(base), PathBuf::from(current)));
            }
            "-h" | "--help" => out.help = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn load_signature(path: &std::path::Path) -> Result<crate::coverage::CoverageSignature, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    signature_from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run `exp scenarios` with `args`; returns the process exit code
/// (documented in [`USAGE`]). Prints progress and verdicts to stdout,
/// errors to stderr.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("exp scenarios: {e}\n{USAGE}");
            return 2;
        }
    };
    if parsed.help {
        println!("{USAGE}");
        return 0;
    }
    if parsed.list {
        for s in scenario::all() {
            println!("{:<22} {} ({} phase(s))", s.name, s.about, s.phases.len());
        }
        return 0;
    }
    if let Some((base, current)) = parsed.compare {
        let report = match (load_signature(&base), load_signature(&current)) {
            (Ok(b), Ok(c)) => compare(&b, &c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("exp scenarios: {e}");
                return 2;
            }
        };
        print!("{}", report.render());
        return if report.is_ok() { 0 } else { 1 };
    }

    let selected = match parsed.scenarios {
        None => scenario::all(),
        Some(names) => {
            let mut picked = Vec::new();
            for name in names {
                match scenario::find(&name) {
                    Some(s) => picked.push(s),
                    None => {
                        eprintln!("exp scenarios: unknown scenario {name:?} (try --list)");
                        return 2;
                    }
                }
            }
            picked
        }
    };

    let out_dir = parsed.out.unwrap_or_else(|| PathBuf::from("."));
    let results = run_matrix(&selected, &parsed.rc);
    let mut ok = true;
    for r in &results {
        let (mut pass, mut caught, mut skipped, mut bad) = (0, 0, 0, 0);
        for c in &r.cells {
            match c.verdict {
                Verdict::Pass => pass += 1,
                Verdict::Caught => caught += 1,
                Verdict::Skipped => skipped += 1,
                _ => bad += 1,
            }
            if !c.is_ok() {
                println!(
                    "  !! {}: {}/{} expected {} got {}",
                    r.scenario.name, c.object, c.backend, c.expected, c.verdict
                );
            }
        }
        println!(
            "{:<22} {} pass, {} caught, {} skipped, {} bad",
            r.scenario.name, pass, caught, skipped, bad
        );
        ok &= r.is_ok();
    }
    match write_artifacts(&results, &parsed.rc, &out_dir) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("exp scenarios: writing artifacts: {e}");
            return 2;
        }
    }
    if ok {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_understands_the_full_surface() {
        let p = parse(&args(&[
            "--scenario",
            "steady-state,crash-storm",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--max-threads",
            "1",
            "--ops-factor",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            p.scenarios,
            Some(vec!["steady-state".to_string(), "crash-storm".to_string()])
        );
        assert_eq!(p.rc.seed, 7);
        assert_eq!(p.rc.max_threads, 1);
        assert_eq!(p.rc.ops_factor, 2);
        assert_eq!(p.out.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn parse_rejects_junk_with_messages() {
        for bad in [
            vec!["--seed"],
            vec!["--seed", "x"],
            vec!["--ops-factor", "0"],
            vec!["--compare", "only-one.json"],
            vec!["--frobnicate"],
        ] {
            let e = parse(&args(&bad)).unwrap_err();
            assert!(!e.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn help_and_list_exit_zero() {
        assert_eq!(run(&args(&["--help"])), 0);
        assert_eq!(run(&args(&["--list"])), 0);
    }

    #[test]
    fn unknown_scenario_is_a_usage_error() {
        assert_eq!(run(&args(&["--scenario", "no-such"])), 2);
    }

    #[test]
    fn usage_documents_exit_codes() {
        assert!(USAGE.contains("exit codes"));
        for flag in [
            "--scenario",
            "--seed",
            "--out",
            "--max-threads",
            "--ops-factor",
            "--list",
            "--compare",
        ] {
            assert!(USAGE.contains(flag), "USAGE must document {flag}");
        }
    }
}
