//! The cell axes (object × backend), expected-verdict rules, and the
//! per-cell result record.
//!
//! A *cell* is one (scenario, object, backend) combination. The matrix
//! crosses every registered scenario against every object and backend;
//! cells that are semantically meaningless (a lying backend under an
//! object whose internal invariants *panic* on lies rather than surfacing
//! a clean violation — see `sbu_stress::workloads`) are explicit
//! [`Verdict::Skipped`] entries, never silent holes, so a skip showing up
//! where a run used to be is visible to the coverage comparator.

/// Which object family a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioObject {
    /// Raw sticky bits (one CAS word each) under `StickySpec`.
    Sticky,
    /// The Figure 2 sticky byte (`JamWord`, width 8) with helping; on the
    /// durable backend, its recoverable variant (`RecoverableJamWord`).
    JamWord,
    /// The bounded universal construction wrapping a counter; on the
    /// durable backend, its recoverable variant.
    Counter,
}

impl ScenarioObject {
    /// All objects, in canonical (report) order.
    pub fn all() -> [ScenarioObject; 3] {
        [
            ScenarioObject::Sticky,
            ScenarioObject::JamWord,
            ScenarioObject::Counter,
        ]
    }

    /// Stable report/JSON key.
    pub fn key(self) -> &'static str {
        match self {
            ScenarioObject::Sticky => "sticky",
            ScenarioObject::JamWord => "jam-word",
            ScenarioObject::Counter => "counter",
        }
    }
}

impl std::fmt::Display for ScenarioObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

impl std::str::FromStr for ScenarioObject {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sticky" => Ok(ScenarioObject::Sticky),
            "jam-word" => Ok(ScenarioObject::JamWord),
            "counter" => Ok(ScenarioObject::Counter),
            other => Err(format!(
                "unknown object {other:?} (sticky|jam-word|counter)"
            )),
        }
    }
}

/// Which memory backend a cell runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioBackend {
    /// Plain native atomics (`NativeMem`); crash pressure is
    /// crash-by-abandonment inside the harness.
    Native,
    /// `DurableMem` over native atomics with the honest persist policy;
    /// crash pressure is real crash–restart eras with recovery.
    Durable,
    /// The adversary preset: a lying memory. Raw sticky cells run over
    /// `TornMem` (torn-jam lies on a period); the durable jam cell runs
    /// crash–restart with `TornPersist::Lying` (acknowledged-then-rolled-
    /// back persists). Expected verdict: **caught**.
    TornLying,
    /// The sharded `sbu-service` runtime: every torture object becomes a
    /// distinct *key* routed through the wire protocol to a per-shard,
    /// per-key universal construction, and the online monitor checks each
    /// key's history exactly as it checks any other backend's objects —
    /// so the whole client → frame → router → shard → `Universal` stack is
    /// under the linearizability microscope. Honest; expected **pass**.
    Service,
}

impl ScenarioBackend {
    /// All backends, in canonical (report) order.
    pub fn all() -> [ScenarioBackend; 4] {
        [
            ScenarioBackend::Native,
            ScenarioBackend::Durable,
            ScenarioBackend::TornLying,
            ScenarioBackend::Service,
        ]
    }

    /// Stable report/JSON key.
    pub fn key(self) -> &'static str {
        match self {
            ScenarioBackend::Native => "native",
            ScenarioBackend::Durable => "durable",
            ScenarioBackend::TornLying => "torn-lying",
            ScenarioBackend::Service => "service",
        }
    }

    /// Whether this backend tells lies the monitor is expected to catch.
    pub fn is_adversarial(self) -> bool {
        matches!(self, ScenarioBackend::TornLying)
    }
}

impl std::fmt::Display for ScenarioBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

impl std::str::FromStr for ScenarioBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "native" => Ok(ScenarioBackend::Native),
            "durable" => Ok(ScenarioBackend::Durable),
            "torn-lying" => Ok(ScenarioBackend::TornLying),
            "service" => Ok(ScenarioBackend::Service),
            other => Err(format!(
                "unknown backend {other:?} (native|durable|torn-lying|service)"
            )),
        }
    }
}

/// The outcome of one cell, as reported and fed to the coverage signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Honest cell: every window linearized (durable cells: every era cut
    /// durably linearized).
    Pass,
    /// Adversarial cell: the monitor reported the injected lies. The *good*
    /// outcome for [`ScenarioBackend::TornLying`].
    Caught,
    /// Honest cell reported a violation — a real bug in the objects or the
    /// backend.
    Violation,
    /// Adversarial cell linearized cleanly: the lies escaped the monitor.
    Escaped,
    /// Windows outgrew the checker's capacity; the cell ran but was not
    /// fully verified.
    Unverified,
    /// Cell is semantically meaningless and intentionally not run.
    Skipped,
}

impl Verdict {
    /// Stable report/JSON key.
    pub fn key(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Caught => "caught",
            Verdict::Violation => "violation",
            Verdict::Escaped => "escaped",
            Verdict::Unverified => "unverified",
            Verdict::Skipped => "skipped",
        }
    }

    /// Parse a report/JSON key back into a verdict.
    pub fn parse(s: &str) -> Option<Verdict> {
        Some(match s {
            "pass" => Verdict::Pass,
            "caught" => Verdict::Caught,
            "violation" => Verdict::Violation,
            "escaped" => Verdict::Escaped,
            "unverified" => Verdict::Unverified,
            "skipped" => Verdict::Skipped,
            _ => return None,
        })
    }

    /// Whether this verdict matches expectations (skips count as fine; the
    /// coverage comparator separately flags cells that *become* skips).
    pub fn is_ok(self) -> bool {
        matches!(self, Verdict::Pass | Verdict::Caught | Verdict::Skipped)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The expected verdict for a cell (before running it): adversarial
/// backends must be caught, honest ones must pass. Skip rules live in
/// [`skip_reason`].
pub fn expected_verdict(backend: ScenarioBackend) -> Verdict {
    if backend.is_adversarial() {
        Verdict::Caught
    } else {
        Verdict::Pass
    }
}

/// Why a cell is intentionally not run (`None` = it runs).
///
/// The lying backends target the raw sticky-bit layer; the universal
/// construction *panics* on lying bits (its helping invariants break)
/// instead of producing a cleanly checkable non-linearizable history, so
/// that cell cannot distinguish "caught" from "crashed".
pub fn skip_reason(object: ScenarioObject, backend: ScenarioBackend) -> Option<&'static str> {
    match (object, backend) {
        (ScenarioObject::Counter, ScenarioBackend::TornLying) => Some(
            "universal construction panics on lying sticky bits (helping invariant) \
             rather than surfacing a checkable violation",
        ),
        _ => None,
    }
}

/// Aggregated result of one cell (all phases merged).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Object axis.
    pub object: ScenarioObject,
    /// Backend axis.
    pub backend: ScenarioBackend,
    /// What the matrix demanded of this cell.
    pub expected: Verdict,
    /// What actually happened.
    pub verdict: Verdict,
    /// Operations issued across all phases (completed + abandoned).
    pub total_ops: usize,
    /// Operations that returned.
    pub completed_ops: usize,
    /// Quiescent windows (or durable era cuts) the monitor consumed.
    pub windows_checked: usize,
    /// Violation descriptions (non-empty exactly for `Caught`/`Violation`).
    pub violations: Vec<String>,
    /// Merged observability snapshot across the cell's phases (empty
    /// without the `obs` feature).
    pub metrics: sbu_obs::Snapshot,
    /// The seed this cell derived from the run seed (reports cite it so a
    /// single cell can be re-run in isolation).
    pub seed: u64,
}

impl CellResult {
    /// Whether the cell did what the matrix demanded.
    pub fn is_ok(&self) -> bool {
        self.verdict == self.expected || self.verdict == Verdict::Skipped
    }

    /// Stable `object/backend` key used in JSON and coverage signatures.
    pub fn key(&self) -> String {
        format!("{}/{}", self.object.key(), self.backend.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_have_stable_orders_and_keys() {
        let objects: Vec<_> = ScenarioObject::all().iter().map(|o| o.key()).collect();
        assert_eq!(objects, ["sticky", "jam-word", "counter"]);
        let backends: Vec<_> = ScenarioBackend::all().iter().map(|b| b.key()).collect();
        assert_eq!(backends, ["native", "durable", "torn-lying", "service"]);
        for o in ScenarioObject::all() {
            assert_eq!(o.key().parse::<ScenarioObject>(), Ok(o));
        }
        for b in ScenarioBackend::all() {
            assert_eq!(b.key().parse::<ScenarioBackend>(), Ok(b));
        }
    }

    #[test]
    fn verdict_keys_round_trip() {
        for v in [
            Verdict::Pass,
            Verdict::Caught,
            Verdict::Violation,
            Verdict::Escaped,
            Verdict::Unverified,
            Verdict::Skipped,
        ] {
            assert_eq!(Verdict::parse(v.key()), Some(v));
        }
        assert_eq!(Verdict::parse("ok"), None);
    }

    #[test]
    fn expectations_follow_the_adversary_rule() {
        assert_eq!(expected_verdict(ScenarioBackend::Native), Verdict::Pass);
        assert_eq!(expected_verdict(ScenarioBackend::Durable), Verdict::Pass);
        assert_eq!(
            expected_verdict(ScenarioBackend::TornLying),
            Verdict::Caught
        );
        assert_eq!(expected_verdict(ScenarioBackend::Service), Verdict::Pass);
    }

    #[test]
    fn only_the_lying_counter_cell_is_skipped() {
        let mut skips = 0;
        for o in ScenarioObject::all() {
            for b in ScenarioBackend::all() {
                if skip_reason(o, b).is_some() {
                    skips += 1;
                    assert_eq!(
                        (o, b),
                        (ScenarioObject::Counter, ScenarioBackend::TornLying)
                    );
                }
            }
        }
        assert_eq!(skips, 1);
    }
}
