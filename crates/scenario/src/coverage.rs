//! Coverage comparison between two matrix runs.
//!
//! The unit of coverage is the *cell* (scenario × object × backend) plus
//! the instrument counters it fired. Comparing a current
//! `BENCH_scenarios.json` against a baseline flags, as **regressions**:
//!
//! * a scenario or cell that existed in the baseline and is gone,
//! * a cell that used to run and is now skipped,
//! * a cell whose verdict went from ok (`pass`/`caught`) to not-ok
//!   (`violation`/`escaped`/`unverified`),
//! * a cell whose op count collapsed to zero,
//! * an instrument counter that was non-zero and went dark (zero or
//!   absent) — the code path it covered is no longer exercised.
//!
//! New scenarios, new cells, newly-fired instruments and not-ok → ok
//! transitions are reported as **improvements** (notes, never failures).
//! `exp scenarios --compare BASE CURRENT` exits non-zero iff a regression
//! was found — that is the CI hook.

use crate::matrix::Verdict;
use sbu_obs::json::Json;

/// What one cell looked like in a recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSig {
    /// Recorded verdict.
    pub verdict: Verdict,
    /// Recorded expectation (kept so a baseline with a rule change still
    /// compares meaningfully).
    pub expected: Verdict,
    /// Total ops the cell issued.
    pub ops: u64,
    /// `(name, value)` per instrument counter, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// The coverage-relevant content of one `BENCH_scenarios.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageSignature {
    /// `(scenario name, cells)`; cells keyed `object/backend`, both in
    /// recorded order.
    pub scenarios: Vec<(String, Vec<(String, CellSig)>)>,
}

impl CoverageSignature {
    /// Total number of recorded cells.
    pub fn cell_count(&self) -> usize {
        self.scenarios.iter().map(|(_, c)| c.len()).sum()
    }
}

fn num_u64(j: &Json, what: &str) -> Result<u64, String> {
    j.as_num()
        .map(|x| x.max(0.0) as u64)
        .ok_or_else(|| format!("{what}: expected a number"))
}

fn str_field<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: missing string field {key:?}"))
}

/// Parse a `BENCH_scenarios.json` document into its coverage signature.
pub fn signature_from_json(doc: &Json) -> Result<CoverageSignature, String> {
    if doc.get("experiment").and_then(Json::as_str) != Some("scenarios") {
        return Err("not a BENCH_scenarios.json document (experiment != \"scenarios\")".into());
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing \"scenarios\" array")?;
    let mut out = CoverageSignature::default();
    for s in scenarios {
        let name = str_field(s, "name", "scenario")?.to_string();
        let mut cells = Vec::new();
        for c in s
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("scenario {name:?}: missing \"cells\" array"))?
        {
            let key = format!(
                "{}/{}",
                str_field(c, "object", "cell")?,
                str_field(c, "backend", "cell")?
            );
            let verdict_key = str_field(c, "verdict", "cell")?;
            let verdict = Verdict::parse(verdict_key)
                .ok_or_else(|| format!("cell {key:?}: unknown verdict {verdict_key:?}"))?;
            let expected_key = str_field(c, "expected", "cell")?;
            let expected = Verdict::parse(expected_key)
                .ok_or_else(|| format!("cell {key:?}: unknown expected {expected_key:?}"))?;
            let ops = num_u64(
                c.get("ops")
                    .ok_or_else(|| format!("cell {key:?}: no ops"))?,
                "ops",
            )?;
            let mut counters = Vec::new();
            if let Some(Json::Obj(m)) = c.get("counters") {
                for (n, v) in m {
                    counters.push((n.clone(), num_u64(v, n)?));
                }
            }
            counters.sort_by(|a, b| a.0.cmp(&b.0));
            cells.push((
                key,
                CellSig {
                    verdict,
                    expected,
                    ops,
                    counters,
                },
            ));
        }
        out.scenarios.push((name, cells));
    }
    Ok(out)
}

/// Outcome of comparing a current run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Coverage or verdict losses; any entry fails the comparison.
    pub regressions: Vec<String>,
    /// Coverage gains; informational only.
    pub improvements: Vec<String>,
}

impl CoverageReport {
    /// Whether the current run covers at least what the baseline covered.
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary (stable order, no timestamps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_ok() {
            out.push_str("coverage: OK (no regressions vs baseline)\n");
        } else {
            out.push_str(&format!(
                "coverage: {} REGRESSION(S) vs baseline\n",
                self.regressions.len()
            ));
            for r in &self.regressions {
                out.push_str(&format!("  - {r}\n"));
            }
        }
        for n in &self.improvements {
            out.push_str(&format!("  + {n}\n"));
        }
        out
    }
}

/// Compare `current` against `base` (see the module docs for the rules).
pub fn compare(base: &CoverageSignature, current: &CoverageSignature) -> CoverageReport {
    let mut report = CoverageReport::default();
    for (name, base_cells) in &base.scenarios {
        let Some((_, cur_cells)) = current.scenarios.iter().find(|(n, _)| n == name) else {
            report
                .regressions
                .push(format!("scenario {name:?} disappeared from the matrix"));
            continue;
        };
        for (key, b) in base_cells {
            let Some((_, c)) = cur_cells.iter().find(|(k, _)| k == key) else {
                report
                    .regressions
                    .push(format!("{name}/{key}: cell disappeared"));
                continue;
            };
            compare_cell(&mut report, name, key, b, c);
        }
        for (key, _) in cur_cells {
            if !base_cells.iter().any(|(k, _)| k == key) {
                report.improvements.push(format!("{name}/{key}: new cell"));
            }
        }
    }
    for (name, _) in &current.scenarios {
        if !base.scenarios.iter().any(|(n, _)| n == name) {
            report.improvements.push(format!("new scenario {name:?}"));
        }
    }
    report
}

fn compare_cell(report: &mut CoverageReport, name: &str, key: &str, b: &CellSig, c: &CellSig) {
    if b.verdict != Verdict::Skipped && c.verdict == Verdict::Skipped {
        report.regressions.push(format!(
            "{name}/{key}: cell used to run ({}) and is now skipped",
            b.verdict
        ));
        return;
    }
    if b.verdict.is_ok() && !c.verdict.is_ok() {
        report.regressions.push(format!(
            "{name}/{key}: verdict regressed {} -> {}",
            b.verdict, c.verdict
        ));
    } else if !b.verdict.is_ok() && c.verdict.is_ok() {
        report.improvements.push(format!(
            "{name}/{key}: verdict recovered {} -> {}",
            b.verdict, c.verdict
        ));
    }
    if b.ops > 0 && c.ops == 0 {
        report
            .regressions
            .push(format!("{name}/{key}: op count collapsed {} -> 0", b.ops));
    }
    // Instrument coverage, reusing the snapshot differ: counters that were
    // live in the baseline must still fire.
    let diff = to_snapshot(b).diff(&to_snapshot(c));
    for dark in &diff.went_dark {
        report.regressions.push(format!(
            "{name}/{key}: instrument `{dark}` went dark (was non-zero in the baseline)"
        ));
    }
    for lit in &diff.appeared {
        report
            .improvements
            .push(format!("{name}/{key}: instrument `{lit}` now firing"));
    }
}

fn to_snapshot(sig: &CellSig) -> sbu_obs::Snapshot {
    sbu_obs::Snapshot {
        counters: sig.counters.clone(),
        histograms: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type CellSpec<'a> = (&'a str, Verdict, u64, Vec<(&'a str, u64)>);

    fn sig(cells: Vec<CellSpec<'_>>) -> CoverageSignature {
        CoverageSignature {
            scenarios: vec![(
                "steady-state".to_string(),
                cells
                    .into_iter()
                    .map(|(key, verdict, ops, counters)| {
                        (
                            key.to_string(),
                            CellSig {
                                verdict,
                                expected: Verdict::Pass,
                                ops,
                                counters: counters
                                    .into_iter()
                                    .map(|(n, v)| (n.to_string(), v))
                                    .collect(),
                            },
                        )
                    })
                    .collect(),
            )],
        }
    }

    #[test]
    fn identical_signatures_compare_clean() {
        let a = sig(vec![(
            "sticky/native",
            Verdict::Pass,
            100,
            vec![("mem.jams", 50)],
        )]);
        let report = compare(&a, &a.clone());
        assert!(report.is_ok(), "{}", report.render());
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn disappeared_cell_and_dark_counter_are_regressions() {
        let base = sig(vec![
            ("sticky/native", Verdict::Pass, 100, vec![("mem.jams", 50)]),
            ("jam-word/native", Verdict::Pass, 100, vec![]),
        ]);
        let current = sig(vec![(
            "sticky/native",
            Verdict::Pass,
            100,
            vec![("mem.jams", 0)],
        )]);
        let report = compare(&base, &current);
        assert_eq!(report.regressions.len(), 2, "{}", report.render());
        assert!(report
            .render()
            .contains("jam-word/native: cell disappeared"));
        assert!(report.render().contains("`mem.jams` went dark"));
    }

    #[test]
    fn verdict_regression_and_new_skip_fail() {
        let base = sig(vec![
            ("sticky/native", Verdict::Pass, 100, vec![]),
            ("sticky/torn-lying", Verdict::Caught, 100, vec![]),
        ]);
        let current = sig(vec![
            ("sticky/native", Verdict::Violation, 100, vec![]),
            ("sticky/torn-lying", Verdict::Skipped, 0, vec![]),
        ]);
        let report = compare(&base, &current);
        assert_eq!(report.regressions.len(), 2, "{}", report.render());
        assert!(report.render().contains("regressed pass -> violation"));
        assert!(report.render().contains("now skipped"));
    }

    #[test]
    fn gains_are_notes_not_failures() {
        let base = sig(vec![("sticky/native", Verdict::Unverified, 100, vec![])]);
        let mut current = sig(vec![(
            "sticky/native",
            Verdict::Pass,
            100,
            vec![("mem.jams", 9)],
        )]);
        current
            .scenarios
            .push(("brand-new".to_string(), Vec::new()));
        let report = compare(&base, &current);
        assert!(report.is_ok());
        assert!(report.improvements.len() >= 3, "{}", report.render());
    }

    #[test]
    fn signature_parser_rejects_foreign_documents() {
        let doc = Json::obj(vec![("experiment", Json::Str("e8".into()))]);
        assert!(signature_from_json(&doc).is_err());
    }
}
