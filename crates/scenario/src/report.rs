//! Generated artifacts: per-scenario markdown reports, per-scenario OBS
//! snapshots, and the machine-readable `BENCH_scenarios.json` the coverage
//! comparator consumes.
//!
//! # Determinism
//!
//! Report bodies contain **no timestamps and no wall-clock numbers** — a
//! matrix run is described entirely by seeds, op counts, window counts,
//! instrument counters and verdicts, all of which are functions of the
//! recorded histories. Two runs with the same scenario set, seed and
//! thread cap therefore produce byte-identical artifacts (exactly identical
//! when capped at one thread, where histories themselves are
//! schedule-independent), which is what makes the artifacts diffable and
//! the coverage comparator meaningful.

use crate::matrix::CellResult;
use crate::run::{RunConfig, ScenarioResult};
use sbu_obs::json::Json;
use sbu_obs::Snapshot;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// File stem for a scenario (kebab-case name → `SCREAMING_SNAKE` pieces).
fn stem(name: &str) -> String {
    name.replace('-', "_")
}

/// The markdown report body for one scenario.
pub fn render_scenario_report(result: &ScenarioResult, rc: &RunConfig) -> String {
    let s = &result.scenario;
    let mut out = String::new();
    let _ = writeln!(out, "# Scenario `{}`", s.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "{}.", s.about);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Run seed `{}`; thread cap {}; ops factor {}; lie period {} \
         (adversarial cells).",
        rc.seed,
        if rc.max_threads > 0 {
            rc.max_threads.to_string()
        } else {
            "none".to_string()
        },
        rc.ops_factor.max(1),
        s.lie_period,
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Phases");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| # | threads | ops/thread | objects | profile | crash threads | eras |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for (i, p) in s.phases.iter().enumerate() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            i + 1,
            p.threads,
            p.ops_per_thread,
            p.objects,
            p.profile,
            p.crash_threads,
            p.eras
        );
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Matrix");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| object | backend | expected | verdict | ops | completed | windows | violations | cell seed |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for c in &result.cells {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | `{:#x}` |",
            c.object,
            c.backend,
            c.expected,
            verdict_badge(c),
            c.total_ops,
            c.completed_ops,
            c.windows_checked,
            c.violations.len(),
            c.seed,
        );
    }
    let _ = writeln!(out);

    // Instruments: the scenario's merged registry snapshot, citing the
    // sbu-obs counters each backend/object attached. Empty (and said so)
    // without the `obs` feature.
    let merged = merged_metrics(result);
    let _ = writeln!(out, "## Instruments");
    let _ = writeln!(out);
    if merged.is_empty() {
        let _ = writeln!(
            out,
            "_No instruments recorded (build without the `obs` feature)._"
        );
    } else {
        let _ = writeln!(out, "| counter | total |");
        let _ = writeln!(out, "|---|---|");
        for (name, v) in &merged.counters {
            let _ = writeln!(out, "| `{name}` | {v} |");
        }
        for (name, h) in &merged.histograms {
            let _ = writeln!(out, "| `{name}` (events) | {} |", h.count);
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Reproduce");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "```\nexp scenarios --scenario {} --seed {}{}\n```",
        s.name,
        rc.seed,
        if rc.max_threads > 0 {
            format!(" --max-threads {}", rc.max_threads)
        } else {
            String::new()
        },
    );
    out
}

/// The verdict cell, flagged when it defies the expectation.
fn verdict_badge(c: &CellResult) -> String {
    if c.is_ok() {
        c.verdict.to_string()
    } else {
        format!("**{}**", c.verdict)
    }
}

/// The scenario's merged instrument snapshot (all cells folded together).
pub fn merged_metrics(result: &ScenarioResult) -> Snapshot {
    let mut merged = Snapshot::default();
    for c in &result.cells {
        // Re-fold with the same merge the cells used internally.
        merged.merge(&c.metrics);
    }
    merged.counters.sort_by(|a, b| a.0.cmp(&b.0));
    merged.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    merged
}

/// One cell as JSON (the coverage comparator's unit of record).
fn cell_json(c: &CellResult) -> Json {
    let counters = Json::Obj(
        c.metrics
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
            .chain(
                c.metrics
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), Json::Num(h.count as f64))),
            )
            .collect(),
    );
    Json::obj(vec![
        ("object", Json::Str(c.object.key().to_string())),
        ("backend", Json::Str(c.backend.key().to_string())),
        ("expected", Json::Str(c.expected.key().to_string())),
        ("verdict", Json::Str(c.verdict.key().to_string())),
        ("ops", Json::Num(c.total_ops as f64)),
        ("completed", Json::Num(c.completed_ops as f64)),
        ("windows", Json::Num(c.windows_checked as f64)),
        ("violations", Json::Num(c.violations.len() as f64)),
        ("seed", Json::Num(c.seed as f64)),
        ("counters", counters),
    ])
}

/// The whole run as `BENCH_scenarios.json`.
pub fn bench_json(results: &[ScenarioResult], rc: &RunConfig) -> Json {
    let scenarios = results
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::Str(r.scenario.name.to_string())),
                ("about", Json::Str(r.scenario.about.to_string())),
                ("ok", Json::Bool(r.is_ok())),
                ("cells", Json::Arr(r.cells.iter().map(cell_json).collect())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::Str("scenarios".to_string())),
        ("seed", Json::Num(rc.seed as f64)),
        ("max_threads", Json::Num(rc.max_threads as f64)),
        ("ops_factor", Json::Num(rc.ops_factor.max(1) as f64)),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

/// Write every artifact for `results` under `out_dir`; returns the paths
/// written (reports first, then OBS snapshots, then the BENCH summary).
pub fn write_artifacts(
    results: &[ScenarioResult],
    rc: &RunConfig,
    out_dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for r in results {
        let stem = stem(r.scenario.name);
        let report = out_dir.join(format!("SCENARIO_{}_REPORT.md", stem.to_uppercase()));
        std::fs::write(&report, render_scenario_report(r, rc))?;
        written.push(report);
        let obs = out_dir.join(format!("OBS_scenario_{stem}.json"));
        std::fs::write(&obs, merged_metrics(r).to_json().render())?;
        written.push(obs);
    }
    let bench = out_dir.join("BENCH_scenarios.json");
    std::fs::write(&bench, bench_json(results, rc).render())?;
    written.push(bench);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{ScenarioBackend, ScenarioObject, Verdict};
    use crate::scenario;

    fn tiny_result() -> ScenarioResult {
        ScenarioResult {
            scenario: scenario::find("steady-state").unwrap(),
            cells: vec![CellResult {
                object: ScenarioObject::Sticky,
                backend: ScenarioBackend::Native,
                expected: Verdict::Pass,
                verdict: Verdict::Pass,
                total_ops: 100,
                completed_ops: 100,
                windows_checked: 7,
                violations: Vec::new(),
                metrics: Snapshot {
                    counters: vec![("mem.jams".into(), 50)],
                    histograms: Vec::new(),
                },
                seed: 0xABCD,
            }],
        }
    }

    #[test]
    fn report_body_has_no_wall_clock_content() {
        let rc = RunConfig::default();
        let body = render_scenario_report(&tiny_result(), &rc);
        assert!(body.contains("# Scenario `steady-state`"));
        assert!(body.contains("| sticky | native | pass | pass | 100 |"));
        assert!(body.contains("exp scenarios --scenario steady-state --seed 42"));
        for forbidden in ["elapsed", "ops/sec", "ns", "ms"] {
            assert!(
                !body.contains(&format!(" {forbidden} ")),
                "report must not contain timing field {forbidden:?}"
            );
        }
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let rc = RunConfig::default();
        let doc = bench_json(&[tiny_result()], &rc);
        let reparsed = Json::parse(&doc.render()).expect("self-rendered JSON parses");
        assert_eq!(reparsed, doc);
        let cells = reparsed.get("scenarios").unwrap().as_arr().unwrap()[0]
            .get("cells")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(cells[0].get("verdict").unwrap().as_str(), Some("pass"));
        assert_eq!(
            cells[0]
                .get("counters")
                .unwrap()
                .get("mem.jams")
                .unwrap()
                .as_num(),
            Some(50.0)
        );
    }
}
