//! Cell execution: run one (scenario, object, backend) cell phase by
//! phase, merge the per-phase reports, and derive the verdict.
//!
//! # Seeds
//!
//! Every cell derives its seed deterministically from the run seed and the
//! cell's coordinates (FNV-1a over `scenario/object/backend`, finalized
//! with a splitmix64 round), so cells are independent of each other and of
//! registry order: adding a scenario never changes another cell's stream.
//! Reports cite the derived seed so a single cell can be re-run alone.
//!
//! # Adversarial batteries
//!
//! Adversarial cells ([`ScenarioBackend::TornLying`]) run each phase as a
//! small battery of [`ADVERSARY_RUNS`] sub-runs with derived sub-seeds,
//! accumulating violations: whether one particular schedule's lies land
//! inside a checked window is seed-dependent, but the *monitor having
//! teeth* is not — across the battery the lies must be caught. The battery
//! is part of the cell's deterministic definition, not a retry loop.

use crate::matrix::{
    expected_verdict, skip_reason, CellResult, ScenarioBackend, ScenarioObject, Verdict,
};
use crate::scenario::{Phase, Scenario};
use rand::Rng;
use sbu_mem::{native::NativeMem, DurableMem, JamOutcome, Pid, TornPersist, WordMem};
use sbu_spec::specs::{StickyOp, StickyResp, StickySpec};
use sbu_stress::{
    run_crash_restart, run_workload, torture, CrashWorkload, Inject, StressConfig, StressObject,
    TornMem, Workload,
};

/// Sub-runs per phase for adversarial cells (see the module docs).
pub const ADVERSARY_RUNS: u64 = 3;

/// Knobs of one matrix run (everything else comes from the descriptors).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Clamp every phase's thread count (`0` = use the descriptor's).
    /// `--max-threads 1` makes whole runs bit-deterministic (single-worker
    /// histories do not depend on OS scheduling).
    pub max_threads: usize,
    /// Multiplier on every phase's per-thread op count (`1` = smoke).
    pub ops_factor: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 42,
            max_threads: 0,
            ops_factor: 1,
        }
    }
}

/// Result of one scenario: its descriptor plus every cell's outcome.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// One result per (object, backend) cell, in canonical axis order.
    pub cells: Vec<CellResult>,
}

impl ScenarioResult {
    /// Whether every cell did what the matrix demanded.
    pub fn is_ok(&self) -> bool {
        self.cells.iter().all(|c| c.is_ok())
    }
}

/// 64-bit FNV-1a, the cell-coordinate hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One splitmix64 finalization round (decorrelates nearby seeds).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic seed of one cell.
pub fn cell_seed(run_seed: u64, scenario: &str, object: ScenarioObject, b: ScenarioBackend) -> u64 {
    let key = format!("{scenario}/{}/{}", object.key(), b.key());
    splitmix(run_seed ^ fnv1a(key.as_bytes()))
}

/// Merge `add` into `into` via [`sbu_obs::Snapshot::merge`], keeping the
/// result sorted by name so merged snapshots are order-independent.
fn merge_snapshot(into: &mut sbu_obs::Snapshot, add: &sbu_obs::Snapshot) {
    into.merge(add);
    into.counters.sort_by(|a, b| a.0.cmp(&b.0));
    into.histograms.sort_by(|a, b| a.0.cmp(&b.0));
}

/// Counts folded out of one phase run, backend-agnostic.
struct PhaseOutcome {
    total_ops: usize,
    completed_ops: usize,
    windows_checked: usize,
    violations: Vec<String>,
    unverified: usize,
    metrics: sbu_obs::Snapshot,
}

impl From<sbu_stress::TortureReport> for PhaseOutcome {
    fn from(r: sbu_stress::TortureReport) -> Self {
        PhaseOutcome {
            total_ops: r.total_ops,
            completed_ops: r.completed_ops,
            windows_checked: r.windows_checked,
            unverified: r.overflow_windows,
            violations: r.violations,
            metrics: r.metrics,
        }
    }
}

impl From<sbu_stress::CrashRestartReport> for PhaseOutcome {
    fn from(r: sbu_stress::CrashRestartReport) -> Self {
        PhaseOutcome {
            total_ops: r.total_ops,
            completed_ops: r.completed_ops,
            // Durable cells are checked per era cut; count eras as the
            // windows the offline checker consumed.
            windows_checked: r.eras,
            unverified: r.unverified_objects,
            violations: r.violations,
            metrics: r.metrics,
        }
    }
}

/// The stress-harness sizing of one phase under `rc`.
fn stress_config(phase: &Phase, rc: &RunConfig, seed: u64) -> StressConfig {
    let threads = if rc.max_threads > 0 {
        phase.threads.min(rc.max_threads)
    } else {
        phase.threads
    };
    let mut cfg = StressConfig::new(threads, phase.ops_per_thread * rc.ops_factor.max(1), seed);
    cfg.objects = phase.objects;
    cfg.profile = phase.profile;
    cfg.perturb = phase.perturb;
    cfg.crash_threads = phase.crash_threads.min(threads);
    cfg.epoch_ops = phase.epoch_ops;
    cfg
}

/// Drive raw sticky bits over an arbitrary word backend with the same op
/// mix as `Workload::Sticky` (the backend is the variable under test here:
/// `DurableMem` for the durable column, `TornMem` for the adversary).
fn torture_sticky_over<M: WordMem + Sync>(
    mem: &mut M,
    cfg: &StressConfig,
) -> sbu_stress::TortureReport {
    let bits: Vec<_> = (0..cfg.objects).map(|_| mem.alloc_sticky_bit()).collect();
    let mem = &*mem;
    let objects: Vec<StressObject<'_, StickySpec>> = bits
        .iter()
        .map(|&bit| StressObject {
            init: StickySpec::new(),
            exec: Box::new(move |pid: Pid, op: &StickyOp| match *op {
                StickyOp::Jam(v) => match mem.sticky_jam(pid, bit, v) {
                    JamOutcome::Success => StickyResp::Success,
                    JamOutcome::Fail => StickyResp::Fail,
                },
                StickyOp::Read => StickyResp::Value(mem.sticky_read(pid, bit)),
                StickyOp::Flush => {
                    mem.sticky_flush(pid, bit);
                    StickyResp::Flushed
                }
            }),
        })
        .collect();
    torture(
        cfg,
        |pid| mem.op_invoke(pid),
        objects,
        |rng, _, _| {
            if rng.gen_bool(0.5) {
                StickyOp::Jam(rng.gen_bool(0.5))
            } else {
                StickyOp::Read
            }
        },
    )
}

/// Era floor for crash–restart cells: each era is one offline-checked
/// window, and in the worst contention profile every op of the era can
/// land on a single object — so the era count must keep
/// `threads × era_ops` under the checker's `MAX_OPS` (128), with headroom
/// for pending and recovery-committed ops.
fn era_floor(cfg: &StressConfig) -> usize {
    (cfg.threads * cfg.ops_per_thread).div_ceil(96).max(1)
}

/// Run one phase of one cell. Honest cells run once; the adversarial
/// dispatch happens in [`run_cell`] (battery loop around this).
fn run_phase(
    object: ScenarioObject,
    backend: ScenarioBackend,
    lie_period: u64,
    phase: &Phase,
    cfg: &StressConfig,
) -> PhaseOutcome {
    match (object, backend) {
        // — native: the plain workloads, crash pressure = abandonment —
        (ScenarioObject::Sticky, ScenarioBackend::Native) => {
            run_workload(Workload::Sticky, cfg, Inject::None).into()
        }
        (ScenarioObject::JamWord, ScenarioBackend::Native) => {
            run_workload(Workload::Jam, cfg, Inject::None).into()
        }
        (ScenarioObject::Counter, ScenarioBackend::Native) => {
            run_workload(Workload::UniversalCounter, cfg, Inject::None).into()
        }

        // — durable: recoverable objects under real crash–restart eras
        //   (honest persist policy); raw sticky bits run the online monitor
        //   over `DurableMem` as a transparent word backend —
        (ScenarioObject::Sticky, ScenarioBackend::Durable) => {
            let registry = sbu_obs::Registry::new(cfg.threads);
            let mut mem = DurableMem::new(NativeMem::<()>::new());
            mem.attach_obs(&registry);
            mem.inner_mut().attach_obs(&registry);
            let mut report = torture_sticky_over(&mut mem, cfg);
            report.violations.extend(
                mem.violations()
                    .into_iter()
                    .map(|v| format!("backend: {v}")),
            );
            report.metrics = registry.snapshot();
            report.into()
        }
        (ScenarioObject::JamWord, ScenarioBackend::Durable) => run_crash_restart(
            CrashWorkload::RecoverableJam,
            cfg,
            phase.eras.max(era_floor(cfg)),
            TornPersist::Persist,
        )
        .into(),
        (ScenarioObject::Counter, ScenarioBackend::Durable) => run_crash_restart(
            CrashWorkload::RecoverableCounter,
            cfg,
            phase.eras.max(era_floor(cfg)),
            TornPersist::Persist,
        )
        .into(),

        // — the adversary preset —
        (ScenarioObject::Sticky, ScenarioBackend::TornLying) => {
            let registry = sbu_obs::Registry::new(cfg.threads);
            let mut inner = NativeMem::<()>::new();
            inner.attach_obs(&registry);
            let mut mem =
                TornMem::with_period(inner, Inject::TornJam, lie_period).with_obs(&registry);
            let mut report = torture_sticky_over(&mut mem, cfg);
            report.metrics = registry.snapshot();
            report.into()
        }
        (ScenarioObject::JamWord, ScenarioBackend::TornLying) => run_crash_restart(
            CrashWorkload::RecoverableJam,
            cfg,
            phase.eras.max(6).max(era_floor(cfg)),
            TornPersist::Lying,
        )
        .into(),
        (ScenarioObject::Counter, ScenarioBackend::TornLying) => {
            unreachable!(
                "skipped cell dispatched: {:?}",
                skip_reason(object, backend)
            )
        }

        // — the sharded service runtime: every object index becomes a
        //   service *key*, so ops travel client → wire frame → router →
        //   single-owner shard → per-key universal construction and back,
        //   and the monitor checks each key's history as usual (the keys
        //   spread across shards, so every shard is under checking) —
        (ScenarioObject::Sticky, ScenarioBackend::Service) => {
            torture_service(cfg, StickySpec::new(), |rng, _, _| {
                if rng.gen_bool(0.5) {
                    StickyOp::Jam(rng.gen_bool(0.5))
                } else {
                    StickyOp::Read
                }
            })
        }
        (ScenarioObject::JamWord, ScenarioBackend::Service) => {
            use sbu_spec::specs::{JamWordOp, JamWordSpec};
            torture_service(cfg, JamWordSpec::new(), |rng, pid, obj| {
                if rng.gen_bool(0.6) {
                    JamWordOp::Jam(sbu_stress::jam_value_for(pid, obj))
                } else {
                    JamWordOp::Read
                }
            })
        }
        (ScenarioObject::Counter, ScenarioBackend::Service) => {
            use sbu_spec::specs::{CounterOp, CounterSpec};
            torture_service(cfg, CounterSpec::new(), |rng, _, _| {
                match rng.gen_range(0u32..5) {
                    0..=2 => CounterOp::Inc,
                    3 => CounterOp::Add(rng.gen_range(1u64..5)),
                    _ => CounterOp::Read,
                }
            })
        }
    }
}

/// Drive `cfg.objects` service keys (one torture object per key) through a
/// live [`sbu_service::Service`] and the online monitor. Shard/worker
/// counts scale with the phase's thread count; the monitor's per-object
/// histories line up one-to-one with service keys. Service instruments are
/// merged into the phase metrics after shutdown so `service.route` /
/// `service.queue_depth` / `service.shard_imbalance` ride the cell report.
fn torture_service<S, G>(cfg: &StressConfig, template: S, gen_op: G) -> PhaseOutcome
where
    S: sbu_service::WireCodec + std::hash::Hash + Eq + Send + Sync + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    G: Fn(&mut rand::rngs::SmallRng, Pid, usize) -> S::Op + Send + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    let shards = cfg.threads.max(2).next_power_of_two().min(8);
    let mut svc = sbu_service::Service::start(
        sbu_service::ServiceConfig {
            shards,
            workers: shards.min(cfg.threads),
            clients: cfg.threads,
            routing: sbu_service::Routing::Hash,
        },
        template.clone(),
    );
    let report = {
        let svc = &svc;
        let objects: Vec<StressObject<'_, S>> = (0..cfg.objects)
            .map(|key| StressObject {
                init: template.clone(),
                exec: Box::new(move |pid: Pid, op: &S::Op| svc.call(pid.0 as u32, key as u64, op)),
            })
            .collect();
        // The service has no shared word memory to borrow a clock from;
        // a fetch-add ticket is exactly the strictly monotonic shared
        // clock `torture` requires.
        let clock = AtomicU64::new(1);
        torture(
            cfg,
            |_| clock.fetch_add(1, Ordering::SeqCst),
            objects,
            gen_op,
        )
    };
    svc.shutdown();
    let mut out: PhaseOutcome = report.into();
    merge_snapshot(&mut out.metrics, &svc.obs_snapshot());
    out
}

/// Run one cell of the matrix.
pub fn run_cell(
    scenario: &Scenario,
    object: ScenarioObject,
    backend: ScenarioBackend,
    rc: &RunConfig,
) -> CellResult {
    let expected = expected_verdict(backend);
    let seed = cell_seed(rc.seed, scenario.name, object, backend);
    if skip_reason(object, backend).is_some() {
        return CellResult {
            object,
            backend,
            // A structural skip is its own expectation: the report row
            // should read `skipped / skipped`, not `caught / skipped`.
            expected: Verdict::Skipped,
            verdict: Verdict::Skipped,
            total_ops: 0,
            completed_ops: 0,
            windows_checked: 0,
            violations: Vec::new(),
            metrics: sbu_obs::Snapshot::default(),
            seed,
        };
    }

    let mut total_ops = 0;
    let mut completed_ops = 0;
    let mut windows_checked = 0;
    let mut unverified = 0;
    let mut violations = Vec::new();
    let mut metrics = sbu_obs::Snapshot::default();
    let runs_per_phase = if backend.is_adversarial() {
        ADVERSARY_RUNS
    } else {
        1
    };
    for (i, phase) in scenario.phases.iter().enumerate() {
        for sub in 0..runs_per_phase {
            let phase_seed = splitmix(seed ^ ((i as u64) << 32) ^ sub);
            let mut cfg = stress_config(phase, rc, phase_seed);
            if (object, backend) == (ScenarioObject::JamWord, ScenarioBackend::TornLying) {
                // Lying torn-persists need real crashes to roll anything
                // back, and disagreement needs ≥ 3 announcers; floor the
                // sizing — but a determinism cap (`--max-threads`) still
                // wins, trading catch-power for bit-reproducibility.
                cfg.threads = cfg.threads.max(3);
                if rc.max_threads > 0 {
                    cfg.threads = cfg.threads.min(rc.max_threads).max(1);
                }
                cfg.crash_threads = cfg.crash_threads.clamp(1, cfg.threads);
            }
            let out = run_phase(object, backend, scenario.lie_period, phase, &cfg);
            total_ops += out.total_ops;
            completed_ops += out.completed_ops;
            windows_checked += out.windows_checked;
            unverified += out.unverified;
            violations.extend(out.violations);
            merge_snapshot(&mut metrics, &out.metrics);
        }
    }

    let verdict = if backend.is_adversarial() {
        if violations.is_empty() {
            Verdict::Escaped
        } else {
            Verdict::Caught
        }
    } else if !violations.is_empty() {
        Verdict::Violation
    } else if unverified > 0 {
        Verdict::Unverified
    } else {
        Verdict::Pass
    };

    CellResult {
        object,
        backend,
        expected,
        verdict,
        total_ops,
        completed_ops,
        windows_checked,
        violations,
        metrics,
        seed,
    }
}

/// Run every cell of one scenario, in canonical axis order.
pub fn run_scenario(scenario: &Scenario, rc: &RunConfig) -> ScenarioResult {
    let mut cells = Vec::new();
    for object in ScenarioObject::all() {
        for backend in ScenarioBackend::all() {
            cells.push(run_cell(scenario, object, backend, rc));
        }
    }
    ScenarioResult {
        scenario: scenario.clone(),
        cells,
    }
}

/// Run the whole matrix over `scenarios`.
pub fn run_matrix(scenarios: &[Scenario], rc: &RunConfig) -> Vec<ScenarioResult> {
    scenarios.iter().map(|s| run_scenario(s, rc)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed(
            42,
            "steady-state",
            ScenarioObject::Sticky,
            ScenarioBackend::Native,
        );
        let b = cell_seed(
            42,
            "steady-state",
            ScenarioObject::Sticky,
            ScenarioBackend::Native,
        );
        assert_eq!(a, b, "same coordinates, same seed");
        let c = cell_seed(
            42,
            "steady-state",
            ScenarioObject::Sticky,
            ScenarioBackend::Durable,
        );
        let d = cell_seed(
            43,
            "steady-state",
            ScenarioObject::Sticky,
            ScenarioBackend::Native,
        );
        assert_ne!(a, c, "backend changes the seed");
        assert_ne!(a, d, "run seed changes the seed");
    }

    #[test]
    fn skipped_cell_short_circuits() {
        let s = scenario::find("steady-state").unwrap();
        let cell = run_cell(
            &s,
            ScenarioObject::Counter,
            ScenarioBackend::TornLying,
            &RunConfig::default(),
        );
        assert_eq!(cell.verdict, Verdict::Skipped);
        assert_eq!(cell.total_ops, 0);
        assert!(cell.is_ok());
    }

    #[test]
    fn merge_snapshot_sums_and_sorts() {
        let mut a = sbu_obs::Snapshot {
            counters: vec![("z".into(), 2), ("a".into(), 1)],
            histograms: Vec::new(),
        };
        let b = sbu_obs::Snapshot {
            counters: vec![("z".into(), 3), ("m".into(), 5)],
            histograms: Vec::new(),
        };
        merge_snapshot(&mut a, &b);
        assert_eq!(
            a.counters,
            vec![("a".into(), 1), ("m".into(), 5), ("z".into(), 5)]
        );
    }
}
