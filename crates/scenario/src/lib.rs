//! # sbu-scenario — the deterministic scenario-matrix harness
//!
//! The stress crate answers "does one configuration linearize"; this crate
//! answers "do *all the shapes of load we care about* keep linearizing, on
//! every backend, and is the evidence diffable run-over-run". It crosses
//! named, seeded, reproducible **scenarios** (steady state, hot-key skew,
//! burst arrivals, thread churn, crash storms, adversary presets) against
//! the paper's **objects** (raw sticky bits, the Figure 2 jam word, the
//! bounded universal construction's counter) and the repo's **memory
//! backends** (native atomics, durable memory with crash–restart eras, and
//! the lying adversaries from `sbu-stress`/`sbu-mem`), verifying every
//! cell online with the windowed linearizability monitor or the offline
//! durable checker.
//!
//! * [`scenario`] — the scenario descriptors and registry (pure data).
//! * [`matrix`] — the object/backend axes, expected-verdict rules and
//!   explicit skip rules.
//! * [`run`] — cell execution: phase-by-phase torture with derived seeds,
//!   adversarial batteries, merged instrument snapshots.
//! * [`report`] — generated artifacts: `SCENARIO_<NAME>_REPORT.md`,
//!   `OBS_scenario_<name>.json`, `BENCH_scenarios.json`; timestamp-free by
//!   construction so artifacts are diffable.
//! * [`coverage`] — the coverage signature and the baseline comparator
//!   behind `exp scenarios --compare` (fails CI on coverage regressions).
//! * [`cli`] — the `exp scenarios` driver shared by `sbu-bench` and the
//!   `scenario_matrix` example.
//!
//! Entry point for humans: `cargo run --release -p sbu-bench --bin exp --
//! scenarios` (or the `scenario_matrix` example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod coverage;
pub mod matrix;
pub mod report;
pub mod run;
pub mod scenario;

pub use coverage::{compare, signature_from_json, CoverageReport, CoverageSignature};
pub use matrix::{
    expected_verdict, skip_reason, CellResult, ScenarioBackend, ScenarioObject, Verdict,
};
pub use run::{cell_seed, run_cell, run_matrix, run_scenario, RunConfig, ScenarioResult};
pub use scenario::{all, find, Phase, Scenario};
