//! Named scenario descriptors and the scenario registry.
//!
//! A [`Scenario`] is a *shape* of load — a sequence of [`Phase`]s, each a
//! full torture-harness configuration (threads, ops, objects, contention
//! profile, crash pressure, durable eras). The same scenario is crossed
//! against every object and backend by [`crate::run::run_matrix`]; the
//! descriptor itself never names an object or a backend.
//!
//! Everything here is data: adding a scenario means adding an entry to
//! [`all`], and the matrix, reports, coverage signature and CI smoke pick
//! it up automatically.

use sbu_stress::ContentionProfile;

/// One load phase of a scenario: a complete sizing of the torture harness.
///
/// A phase runs to quiescence (all ops returned or abandoned, monitor
/// drained) before the next phase starts, over **fresh objects** — phases
/// model the shape of arrival patterns, not a shared-state saga.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Worker threads (= processors) in this phase.
    pub threads: usize,
    /// Operations issued per thread.
    pub ops_per_thread: usize,
    /// Independent object instances.
    pub objects: usize,
    /// How traffic spreads over the objects.
    pub profile: ContentionProfile,
    /// Threads that abandon one op in their final epoch (crash pressure on
    /// the volatile backends; victim count for durable-era crashes).
    pub crash_threads: usize,
    /// Crash–restart eras for durable cells (`0` = single era, no crash).
    pub eras: usize,
    /// Ops per thread per epoch (`0` = harness auto: `max(1, 64/threads)`).
    pub epoch_ops: usize,
    /// Insert random yield/spin perturbation between operations.
    pub perturb: bool,
}

impl Phase {
    /// A small honest phase; scenarios override fields from here.
    pub const fn base() -> Self {
        Phase {
            threads: 4,
            ops_per_thread: 48,
            objects: 4,
            profile: ContentionProfile::Spread,
            crash_threads: 0,
            eras: 0,
            epoch_ops: 0,
            perturb: true,
        }
    }
}

impl Default for Phase {
    fn default() -> Self {
        Self::base()
    }
}

/// A named, seeded, reproducible load shape.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (`kebab-case`; doubles as the report-file stem with
    /// `-` mapped to `_`).
    pub name: &'static str,
    /// One-line description for reports and `--list`.
    pub about: &'static str,
    /// The load phases, run in order over fresh objects.
    pub phases: Vec<Phase>,
    /// Sticky-bit lie period for adversarial cells (`TornMem` injection):
    /// every `lie_period`-th jam is weakened. Smaller = more aggressive.
    pub lie_period: u64,
}

/// All registered scenarios, in canonical (report) order.
pub fn all() -> Vec<Scenario> {
    let base = Phase::base();
    vec![
        Scenario {
            name: "steady-state",
            about: "uniform load, fixed threads, no faults",
            phases: vec![Phase {
                ops_per_thread: 96,
                ..base
            }],
            lie_period: 7,
        },
        Scenario {
            name: "hot-key-skew",
            about: "half of all traffic hammers object 0",
            phases: vec![Phase {
                profile: ContentionProfile::Hot,
                objects: 6,
                ops_per_thread: 96,
                ..base
            }],
            lie_period: 7,
        },
        Scenario {
            name: "burst-arrivals",
            about: "big burst, lull, big burst (three phases)",
            phases: vec![
                Phase {
                    ops_per_thread: 96,
                    ..base
                },
                Phase {
                    threads: 2,
                    ops_per_thread: 16,
                    ..base
                },
                Phase {
                    ops_per_thread: 96,
                    ..base
                },
            ],
            lie_period: 7,
        },
        Scenario {
            name: "thread-churn",
            about: "population ramps 1 → 6 → 2 across phases",
            phases: vec![
                Phase {
                    threads: 1,
                    ops_per_thread: 32,
                    ..base
                },
                Phase {
                    threads: 6,
                    ops_per_thread: 64,
                    ..base
                },
                Phase {
                    threads: 2,
                    ops_per_thread: 32,
                    ..base
                },
            ],
            lie_period: 7,
        },
        Scenario {
            name: "crash-storm",
            about: "heavy crash pressure: abandonment on volatile backends, repeated eras on durable ones",
            phases: vec![Phase {
                ops_per_thread: 48,
                crash_threads: 3,
                eras: 6,
                ..base
            }],
            lie_period: 7,
        },
        Scenario {
            name: "contention-collapse",
            about: "every thread on one hot object",
            phases: vec![Phase {
                objects: 1,
                profile: ContentionProfile::Hot,
                threads: 6,
                ops_per_thread: 64,
                ..base
            }],
            lie_period: 7,
        },
        Scenario {
            name: "adversary-storm",
            about: "short lie period plus crash pressure — the monitor must catch every adversarial cell",
            phases: vec![Phase {
                ops_per_thread: 96,
                crash_threads: 2,
                eras: 6,
                ..base
            }],
            lie_period: 3,
        },
    ]
}

/// Look up one scenario by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_enough_scenarios_and_unique_names() {
        let scenarios = all();
        assert!(scenarios.len() >= 6, "ISSUE 6 wants >= 6 named scenarios");
        let mut names: Vec<_> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "names must be unique");
    }

    #[test]
    fn every_scenario_is_well_formed() {
        for s in all() {
            assert!(!s.phases.is_empty(), "{}: no phases", s.name);
            assert!(s.lie_period >= 1, "{}: lie period", s.name);
            assert!(
                s.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}: names are kebab-case (they become file stems)",
                s.name
            );
            for p in &s.phases {
                assert!(p.threads >= 1 && p.objects >= 1, "{}: empty phase", s.name);
                assert!(
                    p.crash_threads <= p.threads,
                    "{}: more victims than threads",
                    s.name
                );
            }
        }
    }

    #[test]
    fn find_round_trips_names() {
        for s in all() {
            assert_eq!(find(s.name).map(|x| x.name), Some(s.name));
        }
        assert!(find("no-such-scenario").is_none());
    }
}
