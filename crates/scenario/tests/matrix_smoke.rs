//! The full scenario matrix, end to end: every registered scenario crossed
//! against every object and backend. Honest cells must pass, adversarial
//! cells must be caught, and the one semantically-impossible cell must be
//! an explicit skip — the acceptance bar of ISSUE 6's tentpole.

use sbu_scenario::{run_matrix, run_scenario, RunConfig, ScenarioBackend, ScenarioObject, Verdict};

#[test]
fn full_matrix_holds_the_line() {
    let scenarios = sbu_scenario::all();
    assert!(scenarios.len() >= 6, "ISSUE 6 wants >= 6 named scenarios");
    let results = run_matrix(&scenarios, &RunConfig::default());
    assert_eq!(results.len(), scenarios.len());

    for r in &results {
        assert_eq!(
            r.cells.len(),
            ScenarioObject::all().len() * ScenarioBackend::all().len(),
            "{}: every (object, backend) cell must be present",
            r.scenario.name
        );
        for c in &r.cells {
            match (c.backend, c.verdict) {
                // Honest backends: the paper's objects must linearize —
                // including the sharded service runtime, whose whole
                // client → wire → router → shard stack sits between the
                // harness and the per-key universal constructions.
                (
                    ScenarioBackend::Native | ScenarioBackend::Durable | ScenarioBackend::Service,
                    v,
                ) => {
                    assert_eq!(
                        v,
                        Verdict::Pass,
                        "{}/{}: honest cell did not pass: {:?}",
                        r.scenario.name,
                        c.key(),
                        c.violations
                    );
                    assert!(c.total_ops > 0 && c.windows_checked > 0, "{}", c.key());
                }
                // The adversary preset: lies must be caught — except the
                // one documented skip.
                (ScenarioBackend::TornLying, Verdict::Skipped) => {
                    assert_eq!(
                        c.object,
                        ScenarioObject::Counter,
                        "{}: only the lying counter cell may skip",
                        r.scenario.name
                    );
                }
                (ScenarioBackend::TornLying, v) => {
                    assert_eq!(
                        v,
                        Verdict::Caught,
                        "{}/{}: the adversary escaped the monitor",
                        r.scenario.name,
                        c.key()
                    );
                    assert!(
                        !c.violations.is_empty(),
                        "{}: caught without evidence",
                        c.key()
                    );
                }
            }
        }
        assert!(r.is_ok(), "{}: matrix expectation defied", r.scenario.name);
    }
}

#[test]
fn multi_phase_scenarios_fold_all_phases_into_the_cell() {
    let churn = sbu_scenario::find("thread-churn").expect("registered");
    let result = run_scenario(&churn, &RunConfig::default());
    let expected_native_sticky: usize = churn
        .phases
        .iter()
        .map(|p| p.threads * p.ops_per_thread)
        .sum();
    let cell = result
        .cells
        .iter()
        .find(|c| (c.object, c.backend) == (ScenarioObject::Sticky, ScenarioBackend::Native))
        .unwrap();
    assert_eq!(
        cell.total_ops, expected_native_sticky,
        "sticky/native must run every phase exactly once"
    );
}

#[test]
fn reports_cite_live_instruments_when_obs_is_on() {
    // With the obs feature the native sticky cell must carry backend
    // counters into the report; without it the snapshot is empty — either
    // way the report generation path is exercised by the determinism and
    // coverage tests, so here we only pin the cell-level contract.
    let steady = sbu_scenario::find("steady-state").unwrap();
    let result = run_scenario(&steady, &RunConfig::default());
    let cell = &result.cells[0];
    if sbu_obs::enabled() {
        assert!(
            !cell.metrics.counters.is_empty(),
            "obs build must record backend instruments"
        );
    } else {
        assert!(cell.metrics.is_empty(), "dark build must record nothing");
    }
}
