//! Seed determinism of the scenario artifacts (ISSUE 6, satellite 3).
//!
//! Capped at one worker thread, a run's histories are independent of OS
//! scheduling, the monitor's window cuts are data-determined, and the
//! reports contain no wall-clock content — so running the same scenario
//! with the same seed twice must produce **byte-identical** report bodies,
//! OBS snapshots and BENCH documents.

use sbu_scenario::report::{bench_json, merged_metrics, render_scenario_report, write_artifacts};
use sbu_scenario::{run_matrix, RunConfig};

fn rc(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        max_threads: 1,
        ops_factor: 1,
    }
}

fn scenarios(names: &[&str]) -> Vec<sbu_scenario::Scenario> {
    names
        .iter()
        .map(|n| sbu_scenario::find(n).expect("registered scenario"))
        .collect()
}

#[test]
fn same_seed_same_bytes_on_one_thread() {
    // One honest scenario and the adversary preset: determinism must hold
    // for lying backends too (their lies are seeded like everything else).
    let picked = scenarios(&["steady-state", "adversary-storm"]);
    let config = rc(99);
    let a = run_matrix(&picked, &config);
    let b = run_matrix(&picked, &config);

    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(
            render_scenario_report(ra, &config),
            render_scenario_report(rb, &config),
            "{}: report bodies differ between identical runs",
            ra.scenario.name
        );
        let (ma, mb) = (merged_metrics(ra), merged_metrics(rb));
        assert_eq!(
            ma.counters, mb.counters,
            "{}: OBS counter snapshots differ",
            ra.scenario.name
        );
        assert_eq!(
            ma.to_json().render(),
            mb.to_json().render(),
            "{}: OBS documents differ",
            ra.scenario.name
        );
        for (ca, cb) in ra.cells.iter().zip(rb.cells.iter()) {
            assert_eq!(ca.verdict, cb.verdict, "{}: verdict flip", ca.key());
            assert_eq!(ca.total_ops, cb.total_ops, "{}: op drift", ca.key());
            assert_eq!(ca.seed, cb.seed, "{}: derived seed drift", ca.key());
        }
    }
    assert_eq!(
        bench_json(&a, &config).render(),
        bench_json(&b, &config).render(),
        "BENCH documents differ between identical runs"
    );
}

#[test]
fn different_seeds_change_the_streams() {
    let picked = scenarios(&["steady-state"]);
    let a = run_matrix(&picked, &rc(1));
    let b = run_matrix(&picked, &rc(2));
    // Derived cell seeds (cited in the reports) must move with the master
    // seed — otherwise "--seed" would silently not reproduce anything new.
    for (ca, cb) in a[0].cells.iter().zip(b[0].cells.iter()) {
        assert_ne!(
            ca.seed,
            cb.seed,
            "{}: cell seed ignored the run seed",
            ca.key()
        );
    }
}

#[test]
fn artifacts_on_disk_are_byte_identical_too() {
    // End-to-end through the file writer: two runs into two directories,
    // then a straight byte comparison of every artifact.
    let base = std::env::temp_dir().join(format!("sbu-scenario-det-{}", std::process::id()));
    let (dir_a, dir_b) = (base.join("a"), base.join("b"));
    let picked = scenarios(&["steady-state"]);
    let config = rc(7);
    let wrote_a = write_artifacts(&run_matrix(&picked, &config), &config, &dir_a).unwrap();
    let wrote_b = write_artifacts(&run_matrix(&picked, &config), &config, &dir_b).unwrap();
    assert_eq!(wrote_a.len(), wrote_b.len());
    assert_eq!(wrote_a.len(), 3, "report + OBS + BENCH");
    for (pa, pb) in wrote_a.iter().zip(wrote_b.iter()) {
        assert_eq!(
            pa.file_name(),
            pb.file_name(),
            "artifact names must be stable"
        );
        assert_eq!(
            std::fs::read(pa).unwrap(),
            std::fs::read(pb).unwrap(),
            "{:?} differs between identical runs",
            pa.file_name()
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
