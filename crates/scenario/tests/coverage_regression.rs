//! The coverage comparator end to end (ISSUE 6 acceptance criterion):
//! a real run compared against itself is clean; a seeded regression —
//! a cell deleted, a verdict flipped, an instrument gone dark — makes
//! `exp scenarios --compare` fail.

use sbu_obs::json::Json;
use sbu_scenario::report::bench_json;
use sbu_scenario::{compare, run_matrix, signature_from_json, RunConfig};

fn small_run() -> Json {
    let rc = RunConfig {
        seed: 5,
        max_threads: 2,
        ops_factor: 1,
    };
    let picked = vec![sbu_scenario::find("steady-state").unwrap()];
    bench_json(&run_matrix(&picked, &rc), &rc)
}

/// Mutate one field of the `idx`-th cell of the first scenario in a
/// BENCH document.
fn doctor_at(
    doc: &Json,
    idx: usize,
    f: impl Fn(&mut std::collections::BTreeMap<String, Json>),
) -> Json {
    let mut doc = doc.clone();
    let Json::Obj(root) = &mut doc else { panic!() };
    let Some(Json::Arr(scenarios)) = root.get_mut("scenarios") else {
        panic!()
    };
    let Json::Obj(s) = &mut scenarios[0] else {
        panic!()
    };
    let Some(Json::Arr(cells)) = s.get_mut("cells") else {
        panic!()
    };
    let Json::Obj(cell) = &mut cells[idx] else {
        panic!()
    };
    f(cell);
    doc
}

fn doctor(doc: &Json, f: impl Fn(&mut std::collections::BTreeMap<String, Json>)) -> Json {
    doctor_at(doc, 0, f)
}

#[test]
fn a_run_covers_itself() {
    let doc = small_run();
    let sig = signature_from_json(&doc).unwrap();
    assert!(sig.cell_count() >= 9, "3 objects x 3 backends");
    let report = compare(&sig, &sig.clone());
    assert!(report.is_ok(), "{}", report.render());
}

#[test]
fn seeded_regressions_fail_the_comparison() {
    let base_doc = small_run();
    let base = signature_from_json(&base_doc).unwrap();

    // 1. A verdict flip (pass -> violation) is a regression.
    let flipped = doctor(&base_doc, |cell| {
        cell.insert("verdict".into(), Json::Str("violation".into()));
    });
    let report = compare(&base, &signature_from_json(&flipped).unwrap());
    assert!(!report.is_ok());
    assert!(report.render().contains("regressed"), "{}", report.render());

    // 2. A previously-running cell turning into a skip is a regression.
    let skipped = doctor(&base_doc, |cell| {
        cell.insert("verdict".into(), Json::Str("skipped".into()));
    });
    let report = compare(&base, &signature_from_json(&skipped).unwrap());
    assert!(!report.is_ok());
    assert!(
        report.render().contains("now skipped"),
        "{}",
        report.render()
    );

    // 3. A live instrument going dark is a regression (obs builds only:
    //    dark builds have no live counters to lose).
    if sbu_obs::enabled() {
        // Any cell with a live counter will do — low-contention cells can
        // legitimately record all-zero retry counters even under obs.
        let (idx, name) = base.scenarios[0]
            .1
            .iter()
            .enumerate()
            .find_map(|(i, (_, sig_cell))| {
                sig_cell
                    .counters
                    .iter()
                    .find(|(_, v)| *v > 0)
                    .map(|(n, _)| (i, n.clone()))
            })
            .expect("obs build records at least one live counter somewhere");
        let darkened = doctor_at(&base_doc, idx, |cell| {
            let Some(Json::Obj(counters)) = cell.get_mut("counters") else {
                panic!()
            };
            counters.insert(name.clone(), Json::Num(0.0));
        });
        let report = compare(&base, &signature_from_json(&darkened).unwrap());
        assert!(!report.is_ok());
        assert!(report.render().contains("went dark"), "{}", report.render());
    }

    // 4. A disappeared cell is a regression; extra coverage is only a note.
    let mut shrunk = base.clone();
    shrunk.scenarios[0].1.pop();
    let report = compare(&base, &shrunk);
    assert!(!report.is_ok());
    assert!(
        report.render().contains("disappeared"),
        "{}",
        report.render()
    );
    let report = compare(&shrunk, &base);
    assert!(report.is_ok(), "gains never fail: {}", report.render());
    assert!(!report.improvements.is_empty());
}

#[test]
fn the_cli_compare_mode_speaks_exit_codes() {
    // End to end through `exp scenarios`: run twice with the same seed into
    // two directories, self-compare (exit 0), then compare against a
    // doctored baseline (exit 1) and a malformed one (exit 2).
    let base = std::env::temp_dir().join(format!("sbu-scenario-cov-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir = |name: &str| base.join(name).to_string_lossy().into_owned();
    let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };

    // A 1-thread cap makes the two runs byte-identical; the full-thread
    // catch-the-adversary contract is matrix_smoke's job, so here we only
    // require the run to complete (0 = all expectations met, 1 = a capped
    // adversary escaped — both leave complete artifacts behind).
    let run_args = [
        "--scenario",
        "steady-state",
        "--seed",
        "5",
        "--max-threads",
        "1",
    ];
    let code_a = sbu_scenario::cli::run(&args(&[&run_args[..], &["--out", &dir("a")]].concat()));
    let code_b = sbu_scenario::cli::run(&args(&[&run_args[..], &["--out", &dir("b")]].concat()));
    assert!(code_a <= 1 && code_a == code_b, "({code_a}, {code_b})");

    let bench_a = base.join("a").join("BENCH_scenarios.json");
    let bench_b = base.join("b").join("BENCH_scenarios.json");
    assert!(bench_a.exists() && bench_b.exists());
    assert_eq!(
        std::fs::read(&bench_a).unwrap(),
        std::fs::read(&bench_b).unwrap(),
        "capped same-seed runs must produce identical BENCH documents"
    );
    assert_eq!(
        sbu_scenario::cli::run(&args(&[
            "--compare",
            &bench_a.to_string_lossy(),
            &bench_b.to_string_lossy(),
        ])),
        0,
        "identical runs must compare clean"
    );

    // Doctor the *current* run: drop every cell of the scenario by writing
    // a minimal BENCH document with the scenario emptied out.
    let doc = Json::parse(&std::fs::read_to_string(&bench_b).unwrap()).unwrap();
    let sig = signature_from_json(&doc).unwrap();
    assert!(sig.cell_count() >= 9, "3 objects x 3 backends recorded");
    let empty = Json::obj(vec![
        ("experiment", Json::Str("scenarios".into())),
        (
            "scenarios",
            Json::Arr(vec![Json::obj(vec![
                ("name", Json::Str("steady-state".into())),
                ("cells", Json::Arr(Vec::new())),
            ])]),
        ),
    ]);
    let regressed = base.join("regressed.json");
    std::fs::write(&regressed, empty.render()).unwrap();
    assert_eq!(
        sbu_scenario::cli::run(&args(&[
            "--compare",
            &bench_a.to_string_lossy(),
            &regressed.to_string_lossy(),
        ])),
        1,
        "a coverage regression must exit 1"
    );

    let garbage = base.join("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    assert_eq!(
        sbu_scenario::cli::run(&args(&[
            "--compare",
            &bench_a.to_string_lossy(),
            &garbage.to_string_lossy(),
        ])),
        2,
        "unreadable input is a usage error"
    );
    let _ = std::fs::remove_dir_all(&base);
}
