//! Property tests for the exploration layer: counterexample minimization
//! is sound, partial-order reduction never loses or invents failures, and
//! the schedule-corpus format round-trips.
//!
//! Deterministic by construction: the vendored proptest draws from a fixed
//! seed (override with `SBU_PROPTEST_SEED`, scale with
//! `SBU_PROPTEST_CASES`).

use proptest::prelude::*;
use sbu_mem::WordMem;
use sbu_sim::corpus::CORPUS_VERSION;
use sbu_sim::{
    minimize_script, run_uniform, EpisodeResult, Explorer, RunOptions, ScheduleCase, Scripted,
    SimMem,
};

/// A small racy system: p0 writes 1 then 2 to a shared register while p1
/// reads it once; schedules where p1 observes 1 fail. Crash decisions are
/// possible (p1 may then never read, which passes).
fn racy_episode(script: &[usize]) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let a = mem.alloc_atomic(0);
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
        RunOptions::default(),
        2,
        move |mem, pid| {
            if pid.0 == 0 {
                mem.atomic_write(pid, a, 1);
                mem.atomic_write(pid, a, 2);
                0
            } else {
                mem.atomic_read(pid, a)
            }
        },
    );
    let verdict = match out.outcomes[1].completed() {
        Some(1) => Err("read the intermediate value".into()),
        _ => Ok(()),
    };
    EpisodeResult::from_outcome(&out, verdict)
}

/// Characters chosen to stress the JSON escaper: quotes, backslashes,
/// control characters, and multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'Z', '9', '-', '_', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'λ',
    '🦀',
];

fn tricky_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..max_len)
        .prop_map(|ixs| ixs.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Whatever failing script we start from, the minimizer returns a
    /// script that (a) reproduces a failure with the reported message,
    /// (b) is no longer than the input, and (c) is locally minimal under
    /// single-decision deletion.
    #[test]
    fn minimized_scripts_reproduce_and_are_minimal(
        script in prop::collection::vec(0usize..4, 0..24),
    ) {
        let failing = racy_episode(&script).verdict.is_err();
        prop_assume!(failing);
        let (minimal, message) = minimize_script(&script, racy_episode);
        prop_assert!(minimal.len() <= script.len());
        prop_assert_eq!(racy_episode(&minimal).verdict, Err(message));
        for i in 0..minimal.len() {
            let mut shorter = minimal.clone();
            shorter.remove(i);
            prop_assert!(
                racy_episode(&shorter).verdict.is_ok(),
                "dropping decision {} still fails: not minimal", i
            );
        }
    }

    /// DPOR and naive DFS agree on the *set* of failure messages over the
    /// racy system — reduction neither loses nor invents counterexamples.
    #[test]
    fn dpor_and_naive_agree_on_failure_sets(max_failures in 1usize..6) {
        let explorer = Explorer { max_schedules: 100_000, max_failures: usize::MAX };
        let naive = explorer.explore(racy_episode);
        let dpor = explorer.explore_dpor(racy_episode);
        prop_assert!(naive.complete && dpor.complete);
        prop_assert!(dpor.schedules <= naive.schedules);
        let mut naive_msgs: Vec<String> =
            naive.failures.iter().map(|(_, m)| m.clone()).collect();
        let mut dpor_msgs: Vec<String> =
            dpor.failures.iter().map(|(_, m)| m.clone()).collect();
        naive_msgs.sort_unstable();
        naive_msgs.dedup();
        dpor_msgs.sort_unstable();
        dpor_msgs.dedup();
        prop_assert_eq!(naive_msgs, dpor_msgs);
        // And truncated-failure runs stop early without panicking.
        let bounded = Explorer { max_schedules: 100_000, max_failures };
        let r = bounded.explore_dpor(racy_episode);
        prop_assert!(r.failures.len() <= max_failures);
    }

    /// `.sbu-sched` serialization round-trips: value-identical after
    /// parse, byte-identical after re-serialization — for arbitrary
    /// metadata strings (quotes, backslashes, newlines, control bytes,
    /// multi-byte unicode).
    #[test]
    fn corpus_cases_round_trip(
        name in tricky_string(20),
        system in tricky_string(16),
        description in tricky_string(60),
        message in tricky_string(40),
        script in prop::collection::vec(0usize..8, 0..32),
        expect_failure in any::<bool>(),
    ) {
        let case = ScheduleCase {
            version: CORPUS_VERSION,
            name,
            system,
            description,
            script,
            expect_failure,
            message,
        };
        let text = case.to_json();
        let back = ScheduleCase::from_json(&text)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &case);
        prop_assert_eq!(back.to_json(), text);
    }
}
