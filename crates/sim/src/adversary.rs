//! Scheduling adversaries.
//!
//! At every scheduling point the conductor presents the policy with the list
//! of processors parked at their next step (sorted by pid) and the policy
//! picks one of them — optionally crashing it instead of letting it step.
//! The policy also fabricates the words returned by safe-register reads that
//! overlap writes (Lamport's "arbitrary value").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbu_mem::{Pid, Word};

use crate::state::ChoicePoint;

/// What the adversary does with its turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let `waiting[index]` take one step.
    Step(usize),
    /// Crash `waiting[index]` (fail-stop) instead of stepping it.
    Crash(usize),
}

/// A scheduling policy. Implementations must be deterministic functions of
/// their own state and the arguments (the conductor guarantees the `waiting`
/// list itself is deterministic).
pub trait Adversary: Send {
    /// Choose the next action. `waiting` is non-empty and sorted by pid;
    /// `step` is the number of steps taken so far.
    fn decide(&mut self, waiting: &[Pid], step: u64) -> Decision;

    /// Fabricate the word observed by a safe-register read that overlapped a
    /// write (or left in a register by racing writes).
    fn corrupt_word(&mut self, step: u64) -> Word {
        let _ = step;
        0xDEAD_BEEF_DEAD_BEEF
    }

    /// Hand back the recorded choice log, if this adversary keeps one
    /// (used by the schedule explorer). Default: none.
    fn take_choice_log(&mut self) -> Vec<ChoicePoint> {
        Vec::new()
    }
}

/// Fair round-robin scheduling, no crashes. The "benign" baseline: useful
/// for smoke tests and for measuring solo/sequential step counts.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh round-robin policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn decide(&mut self, waiting: &[Pid], _step: u64) -> Decision {
        // Advance to the next pid at or after the cursor, wrapping.
        let pos = waiting.iter().position(|p| p.0 >= self.cursor).unwrap_or(0);
        self.cursor = waiting[pos].0 + 1;
        Decision::Step(pos)
    }
}

/// Seeded random scheduling with optional random crashes and hostile corrupt
/// words. The workhorse fuzzing adversary.
#[derive(Debug)]
pub struct RandomAdversary {
    rng: StdRng,
    /// Probability (×1e-6) of crashing the chosen processor at any step.
    crash_ppm: u32,
    /// Maximum number of crashes to inject.
    max_crashes: usize,
    crashes: usize,
    /// Palette of hostile words returned on safe-read overlap; when empty, a
    /// uniformly random word is used.
    corrupt_palette: Vec<Word>,
}

impl RandomAdversary {
    /// A random policy without crashes.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            crash_ppm: 0,
            max_crashes: 0,
            crashes: 0,
            corrupt_palette: Vec::new(),
        }
    }

    /// Enable up to `max_crashes` crashes, each chosen with probability
    /// `ppm / 1_000_000` per scheduling decision.
    pub fn with_crashes(mut self, max_crashes: usize, ppm: u32) -> Self {
        self.max_crashes = max_crashes;
        self.crash_ppm = ppm;
        self
    }

    /// Use a fixed palette of hostile words for corrupt reads (e.g. valid
    /// cell indices, 0, `u64::MAX`) instead of uniform random words.
    pub fn with_corrupt_palette(mut self, palette: Vec<Word>) -> Self {
        self.corrupt_palette = palette;
        self
    }

    /// Number of crashes injected so far.
    pub fn crashes(&self) -> usize {
        self.crashes
    }
}

impl Adversary for RandomAdversary {
    fn decide(&mut self, waiting: &[Pid], _step: u64) -> Decision {
        let index = self.rng.gen_range(0..waiting.len());
        if self.crashes < self.max_crashes && self.rng.gen_range(0..1_000_000u32) < self.crash_ppm {
            self.crashes += 1;
            Decision::Crash(index)
        } else {
            Decision::Step(index)
        }
    }

    fn corrupt_word(&mut self, _step: u64) -> Word {
        if self.corrupt_palette.is_empty() {
            self.rng.gen()
        } else {
            let i = self.rng.gen_range(0..self.corrupt_palette.len());
            self.corrupt_palette[i]
        }
    }
}

/// Crash specific processors once the global step count reaches per-pid
/// thresholds; schedule the rest with an inner policy. Used by the paper's
/// "lock holder dies" demonstrations (experiment E5).
#[derive(Debug)]
pub struct CrashPlan<A> {
    targets: Vec<(Pid, u64)>,
    inner: A,
}

impl<A: Adversary> CrashPlan<A> {
    /// Crash each `(pid, at_step)` target the first time it is seen waiting
    /// at or after `at_step`; defer all other decisions to `inner`.
    pub fn new(targets: Vec<(Pid, u64)>, inner: A) -> Self {
        Self { targets, inner }
    }
}

impl<A: Adversary> Adversary for CrashPlan<A> {
    fn decide(&mut self, waiting: &[Pid], step: u64) -> Decision {
        if let Some(t) = self
            .targets
            .iter()
            .position(|&(pid, at)| step >= at && waiting.contains(&pid))
        {
            let (pid, _) = self.targets.swap_remove(t);
            let index = waiting.iter().position(|&p| p == pid).expect("checked");
            return Decision::Crash(index);
        }
        self.inner.decide(waiting, step)
    }

    fn corrupt_word(&mut self, step: u64) -> Word {
        self.inner.corrupt_word(step)
    }
}

/// Replay a scripted decision sequence, recording the branching factor of
/// every choice point — the engine under [`crate::explore::Explorer`].
///
/// Decisions are encoded as indices in `0..options` where
/// `options = waiting.len()` without crash exploration and
/// `2 × waiting.len()` with it (the upper half crashes the corresponding
/// processor). Once the script is exhausted the first option (index 0) is
/// taken, so an empty script yields the "always lowest pid" schedule.
#[derive(Debug)]
pub struct Scripted {
    script: Vec<usize>,
    cursor: usize,
    max_crashes: usize,
    crashes: usize,
    log: Vec<ChoicePoint>,
    corrupt_palette: Vec<Word>,
    corrupt_cursor: usize,
    /// `Some(k)`: at most `k` preemptions (CHESS-style context-switch
    /// bounding); `None`: unrestricted.
    preemption_bound: Option<usize>,
    preemptions: usize,
    last_pid: Option<Pid>,
}

impl Scripted {
    /// Replay `script`, exploring schedules only (no crashes).
    pub fn new(script: Vec<usize>) -> Self {
        Self {
            script,
            cursor: 0,
            max_crashes: 0,
            crashes: 0,
            log: Vec::new(),
            corrupt_palette: vec![0xDEAD_BEEF_DEAD_BEEF],
            corrupt_cursor: 0,
            preemption_bound: None,
            preemptions: 0,
            last_pid: None,
        }
    }

    /// Restrict exploration to schedules with at most `k` *preemptions* —
    /// decisions that switch away from a processor that could still run.
    /// The classic context-switch-bounding result (Musuvathi–Qadeer's
    /// CHESS): most concurrency bugs manifest within 2 preemptions, and the
    /// schedule tree shrinks from exponential to polynomial, making
    /// bounded-exhaustive exploration of large protocols (like the full
    /// universal construction) feasible.
    pub fn with_preemption_bound(mut self, k: usize) -> Self {
        self.preemption_bound = Some(k);
        self
    }

    /// Also branch on crashing (up to `max_crashes` crash decisions).
    pub fn with_crashes(mut self, max_crashes: usize) -> Self {
        self.max_crashes = max_crashes;
        self
    }

    /// Cycle corrupt reads deterministically through `palette`.
    pub fn with_corrupt_palette(mut self, palette: Vec<Word>) -> Self {
        assert!(!palette.is_empty(), "corrupt palette must be non-empty");
        self.corrupt_palette = palette;
        self
    }
}

impl Adversary for Scripted {
    fn decide(&mut self, waiting: &[Pid], _step: u64) -> Decision {
        // Under a preemption bound with the budget spent, the previous
        // processor must keep running while it can.
        let allowed: Vec<Pid> = match (self.preemption_bound, self.last_pid) {
            (Some(k), Some(last)) if self.preemptions >= k && waiting.contains(&last) => {
                vec![last]
            }
            _ => waiting.to_vec(),
        };
        let crash_allowed = self.crashes < self.max_crashes;
        let options = allowed.len() * if crash_allowed { 2 } else { 1 };
        // Out-of-range entries wrap (property-test convenience); explorer
        // scripts are in range by construction, so this never affects it.
        let chosen = if self.cursor < self.script.len() {
            self.script[self.cursor] % options
        } else {
            0
        };
        self.cursor += 1;
        let mut enabled = 0u64;
        for p in &allowed {
            assert!(p.0 < 64, "the choice log supports at most 64 processors");
            enabled |= 1 << p.0;
        }
        self.log.push(ChoicePoint {
            options,
            chosen,
            enabled,
            crash_allowed,
        });
        let (pid, decision) = if chosen < allowed.len() {
            let pid = allowed[chosen];
            let index = waiting
                .iter()
                .position(|&p| p == pid)
                .expect("allowed ⊆ waiting");
            (pid, Decision::Step(index))
        } else {
            self.crashes += 1;
            let pid = allowed[chosen - allowed.len()];
            let index = waiting
                .iter()
                .position(|&p| p == pid)
                .expect("allowed ⊆ waiting");
            (pid, Decision::Crash(index))
        };
        // Preemption accounting: switching away from a still-runnable
        // processor costs one preemption.
        if let Some(last) = self.last_pid {
            if pid != last && waiting.contains(&last) {
                self.preemptions += 1;
            }
        }
        self.last_pid = match decision {
            Decision::Crash(_) => None,
            Decision::Step(_) => Some(pid),
        };
        decision
    }

    fn corrupt_word(&mut self, _step: u64) -> Word {
        let w = self.corrupt_palette[self.corrupt_cursor % self.corrupt_palette.len()];
        self.corrupt_cursor += 1;
        w
    }

    fn take_choice_log(&mut self) -> Vec<ChoicePoint> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(v: &[usize]) -> Vec<Pid> {
        v.iter().map(|&i| Pid(i)).collect()
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut rr = RoundRobin::new();
        let w = pids(&[0, 1, 2]);
        assert_eq!(rr.decide(&w, 0), Decision::Step(0));
        assert_eq!(rr.decide(&w, 1), Decision::Step(1));
        assert_eq!(rr.decide(&w, 2), Decision::Step(2));
        assert_eq!(rr.decide(&w, 3), Decision::Step(0));
    }

    #[test]
    fn round_robin_skips_missing_pids() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.decide(&pids(&[0, 2]), 0), Decision::Step(0));
        // cursor is now 1; pid 2 is the next at-or-after.
        assert_eq!(rr.decide(&pids(&[0, 2]), 1), Decision::Step(1));
        // wrapped
        assert_eq!(rr.decide(&pids(&[0, 2]), 2), Decision::Step(0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let w = pids(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut a = RandomAdversary::new(seed);
            (0..32).map(|s| a.decide(&w, s)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_crash_budget_is_respected() {
        let mut a = RandomAdversary::new(1).with_crashes(2, 1_000_000);
        let w = pids(&[0, 1]);
        let crashes = (0..100)
            .filter(|&s| matches!(a.decide(&w, s), Decision::Crash(_)))
            .count();
        assert_eq!(crashes, 2);
        assert_eq!(a.crashes(), 2);
    }

    #[test]
    fn crash_plan_fires_once_at_threshold() {
        let mut a = CrashPlan::new(vec![(Pid(1), 5)], RoundRobin::new());
        let w = pids(&[0, 1]);
        assert_eq!(a.decide(&w, 0), Decision::Step(0));
        assert_eq!(a.decide(&w, 5), Decision::Crash(1));
        // Fired: afterwards it's plain round-robin.
        assert!(matches!(a.decide(&w, 6), Decision::Step(_)));
    }

    #[test]
    fn scripted_records_branching() {
        let mut a = Scripted::new(vec![1, 0]);
        let w = pids(&[0, 1]);
        assert_eq!(a.decide(&w, 0), Decision::Step(1));
        assert_eq!(a.decide(&w, 1), Decision::Step(0));
        // script exhausted: defaults to 0
        assert_eq!(a.decide(&w, 2), Decision::Step(0));
        let log = a.take_choice_log();
        assert_eq!(log.len(), 3);
        assert!(log.iter().all(|c| c.options == 2));
        assert_eq!(log[0].chosen, 1);
    }

    #[test]
    fn scripted_crash_indices_use_upper_half() {
        let mut a = Scripted::new(vec![3]).with_crashes(1);
        let w = pids(&[0, 1]);
        assert_eq!(a.decide(&w, 0), Decision::Crash(1));
        // Crash budget used: branching halves.
        assert_eq!(a.decide(&w, 1), Decision::Step(0));
        let log = a.take_choice_log();
        assert_eq!(log[0].options, 4);
        assert_eq!(log[1].options, 2);
    }

    #[test]
    fn scripted_corrupt_palette_cycles() {
        let mut a = Scripted::new(vec![]).with_corrupt_palette(vec![1, 2]);
        assert_eq!(a.corrupt_word(0), 1);
        assert_eq!(a.corrupt_word(1), 2);
        assert_eq!(a.corrupt_word(2), 1);
    }
}

#[cfg(test)]
mod preemption_tests {
    use super::*;

    fn pids(v: &[usize]) -> Vec<Pid> {
        v.iter().map(|&i| Pid(i)).collect()
    }

    #[test]
    fn zero_preemption_bound_pins_the_running_processor() {
        let mut a = Scripted::new(vec![1, 1, 1]).with_preemption_bound(0);
        let w = pids(&[0, 1]);
        // First decision: no previous pid, free choice (index 1 = p1).
        assert_eq!(a.decide(&w, 0), Decision::Step(1));
        // Budget 0: p1 must keep running; scripted "1" wraps onto p1.
        assert_eq!(a.decide(&w, 1), Decision::Step(1));
        assert_eq!(a.decide(&w, 2), Decision::Step(1));
        // Branching factor collapses to 1 after the first decision.
        let log = a.take_choice_log();
        assert_eq!(log[0].options, 2);
        assert_eq!(log[1].options, 1);
        assert_eq!(log[2].options, 1);
    }

    #[test]
    fn preemption_budget_is_consumed_by_switches() {
        let mut a = Scripted::new(vec![0, 1, 0]).with_preemption_bound(1);
        let w = pids(&[0, 1]);
        assert_eq!(a.decide(&w, 0), Decision::Step(0)); // run p0
        assert_eq!(a.decide(&w, 1), Decision::Step(1)); // preempt -> p1
                                                        // Budget gone: must keep running p1.
        assert_eq!(a.decide(&w, 2), Decision::Step(1));
    }

    #[test]
    fn finishing_a_processor_is_not_a_preemption() {
        let mut a = Scripted::new(vec![0, 0, 1]).with_preemption_bound(0);
        assert_eq!(a.decide(&pids(&[0, 1]), 0), Decision::Step(0)); // p0
                                                                    // p0 finished: only p1 waits; switching is forced, not a preemption.
        assert_eq!(a.decide(&pids(&[1]), 1), Decision::Step(0));
        // p1 continues freely.
        assert_eq!(a.decide(&pids(&[1]), 2), Decision::Step(0));
        assert_eq!(a.take_choice_log()[1].options, 1);
    }
}
