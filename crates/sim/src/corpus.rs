//! # Schedule corpus — replayable counterexamples on disk
//!
//! Exhaustive exploration finds bugs; this module keeps them found. A
//! [`ScheduleCase`] records one adversary script together with the verdict
//! it is expected to produce, serialized as a small hand-rolled JSON
//! document (`.sbu-sched`). Checked-in cases under `tests/corpus/` form a
//! regression corpus: every CI run replays each script against the named
//! system and asserts the verdict is unchanged.
//!
//! The format is deliberately tiny and self-describing:
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "atomic-intermediate-read",
//!   "system": "atomic_intermediate_read",
//!   "description": "reader observes the intermediate value 1",
//!   "script": [0, 1, 0],
//!   "expect_failure": true,
//!   "message": "read the intermediate value"
//! }
//! ```
//!
//! `system` names an episode in the replaying test's registry (the corpus
//! file does not carry code); `script` is the decision list fed to
//! [`crate::adversary::Scripted::new`]. Serialization is canonical — fixed
//! key order, fixed indentation — so `from_json(to_json(c)) == c` and
//! re-serializing a loaded file reproduces it byte for byte.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Current on-disk format version. Bump on incompatible changes.
pub const CORPUS_VERSION: u64 = 1;

/// File extension for corpus entries.
pub const CORPUS_EXT: &str = "sbu-sched";

/// One replayable schedule: an adversary script plus its expected verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCase {
    /// Format version ([`CORPUS_VERSION`] when written by this crate).
    pub version: u64,
    /// Short unique identifier (conventionally the file stem).
    pub name: String,
    /// Registry key of the system the script drives.
    pub system: String,
    /// Human-readable account of what the schedule demonstrates.
    pub description: String,
    /// Decision list for [`crate::adversary::Scripted`].
    pub script: Vec<usize>,
    /// Whether replaying the script must produce a failing verdict.
    pub expect_failure: bool,
    /// Exact failure message when `expect_failure`, empty otherwise.
    pub message: String,
}

impl ScheduleCase {
    /// Canonical JSON rendering (fixed key order and layout).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {},", self.version);
        let _ = writeln!(s, "  \"name\": {},", json_string(&self.name));
        let _ = writeln!(s, "  \"system\": {},", json_string(&self.system));
        let _ = writeln!(s, "  \"description\": {},", json_string(&self.description));
        let mut script = String::new();
        for (i, d) in self.script.iter().enumerate() {
            if i > 0 {
                script.push_str(", ");
            }
            let _ = write!(script, "{d}");
        }
        let _ = writeln!(s, "  \"script\": [{script}],");
        let _ = writeln!(s, "  \"expect_failure\": {},", self.expect_failure);
        let _ = writeln!(s, "  \"message\": {}", json_string(&self.message));
        s.push_str("}\n");
        s
    }

    /// Parse a case from JSON text (accepts any whitespace/key order, not
    /// just the canonical layout).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let field = |key: &str| {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let version = field("version")?
            .as_u64()
            .ok_or("`version` is not an integer")?;
        if version != CORPUS_VERSION {
            return Err(format!(
                "unsupported corpus version {version} (this build reads {CORPUS_VERSION})"
            ));
        }
        let string = |key: &str| -> Result<String, String> {
            Ok(field(key)?
                .as_str()
                .ok_or_else(|| format!("`{key}` is not a string"))?
                .to_owned())
        };
        let script = field("script")?
            .as_array()
            .ok_or("`script` is not an array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| "`script` entry is not an integer".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScheduleCase {
            version,
            name: string("name")?,
            system: string("system")?,
            description: string("description")?,
            script,
            expect_failure: field("expect_failure")?
                .as_bool()
                .ok_or("`expect_failure` is not a boolean")?,
            message: string("message")?,
        })
    }

    /// Write the case to `dir/<name>.sbu-sched`, returning the path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.{CORPUS_EXT}", self.name));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Load a single case from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

/// Load every `.sbu-sched` file under `dir`, sorted by file name so replay
/// order (and report text) is deterministic across platforms.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<ScheduleCase>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(CORPUS_EXT))
        .collect();
    paths.sort();
    paths.iter().map(|p| ScheduleCase::load(p)).collect()
}

/// Outcome of replaying a corpus: which cases reproduced their recorded
/// verdict and which drifted.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Number of cases replayed.
    pub cases: usize,
    /// Names of cases whose replay no longer matches the recorded verdict,
    /// with a description of the mismatch.
    pub mismatches: Vec<String>,
}

impl CorpusReport {
    /// Panic with a readable listing if any case drifted.
    pub fn assert_ok(&self) {
        assert!(
            self.mismatches.is_empty(),
            "{} of {} corpus cases no longer reproduce:\n  {}",
            self.mismatches.len(),
            self.cases,
            self.mismatches.join("\n  ")
        );
    }
}

/// Replay `cases` through `episode`, which maps a system registry key and a
/// script to the verdict of one simulated run (`None` for unknown systems —
/// reported as a mismatch so a renamed registry entry cannot silently skip
/// its regression tests).
pub fn replay_corpus<F>(cases: &[ScheduleCase], mut episode: F) -> CorpusReport
where
    F: FnMut(&str, &[usize]) -> Option<Result<(), String>>,
{
    let mut report = CorpusReport {
        cases: cases.len(),
        mismatches: Vec::new(),
    };
    for case in cases {
        let Some(verdict) = episode(&case.system, &case.script) else {
            report
                .mismatches
                .push(format!("{}: unknown system `{}`", case.name, case.system));
            continue;
        };
        match (case.expect_failure, verdict) {
            (true, Ok(())) => report.mismatches.push(format!(
                "{}: expected failure `{}`, got success",
                case.name, case.message
            )),
            (true, Err(msg)) if msg != case.message => report.mismatches.push(format!(
                "{}: expected failure `{}`, got failure `{msg}`",
                case.name, case.message
            )),
            (false, Err(msg)) => report.mismatches.push(format!(
                "{}: expected success, got failure `{msg}`",
                case.name
            )),
            _ => {}
        }
    }
    report
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader — just enough for `.sbu-sched` files (no serde in
/// the offline build). Numbers are unsigned integers; that is all the
/// format uses.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true`/`false`
        Bool(bool),
        /// Unsigned integer (the only number shape the format uses).
        Num(u64),
        /// String with escapes resolved.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object as an ordered key/value list.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or("\\u escape is not a scalar value")?,
                                );
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte sequences
                        // pass through unchanged).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8".to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScheduleCase {
        ScheduleCase {
            version: CORPUS_VERSION,
            name: "atomic-intermediate-read".into(),
            system: "atomic_intermediate_read".into(),
            description: "reader observes the intermediate value \"1\"\nminimized".into(),
            script: vec![0, 2, 0, 1],
            expect_failure: true,
            message: "read the intermediate value".into(),
        }
    }

    #[test]
    fn json_round_trip_preserves_the_case() {
        let case = sample();
        let text = case.to_json();
        let back = ScheduleCase::from_json(&text).unwrap();
        assert_eq!(back, case);
        // Canonical form: re-serializing reproduces the bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parser_accepts_reordered_keys_and_odd_whitespace() {
        let text = "\n{ \"script\":[1,2] ,\"expect_failure\" : false,\n\
             \"message\":\"\",\"version\":1,\"name\":\"n\",\"system\":\"s\",\
             \"description\":\"d\"}";
        let case = ScheduleCase::from_json(text).unwrap();
        assert_eq!(case.script, vec![1, 2]);
        assert!(!case.expect_failure);
    }

    #[test]
    fn parser_rejects_wrong_version_and_missing_fields() {
        let mut wrong = sample();
        wrong.version = 99;
        assert!(ScheduleCase::from_json(&wrong.to_json())
            .unwrap_err()
            .contains("version"));
        assert!(ScheduleCase::from_json("{\"version\":1}")
            .unwrap_err()
            .contains("missing field"));
        assert!(ScheduleCase::from_json("[1,2,3]").is_err());
        assert!(ScheduleCase::from_json("{\"version\":1} junk").is_err());
    }

    #[test]
    fn save_load_and_replay() {
        let dir = std::env::temp_dir().join(format!("sbu-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut a = sample();
        a.name = "b-second".into();
        let mut b = sample();
        b.name = "a-first".into();
        b.expect_failure = false;
        b.message = String::new();
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        // Also drop in a non-corpus file that must be ignored.
        fs::write(dir.join("README.txt"), "not a case").unwrap();

        let cases = load_corpus(&dir).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "a-first"); // sorted by file name
        assert_eq!(cases[1].name, "b-second");

        let report = replay_corpus(&cases, |system, _script| {
            assert_eq!(system, "atomic_intermediate_read");
            Some(Err("read the intermediate value".into()))
        });
        // `a-first` expects success but the episode fails: one mismatch.
        assert_eq!(report.cases, 2);
        assert_eq!(report.mismatches.len(), 1);
        assert!(report.mismatches[0].contains("a-first"));

        let clean = replay_corpus(&cases, |_, _| Some(Ok(())));
        // Now `b-second` (expecting failure) mismatches instead.
        assert_eq!(clean.mismatches.len(), 1);
        assert!(clean.mismatches[0].contains("b-second"));

        let unknown = replay_corpus(&cases, |_, _| None);
        assert_eq!(unknown.mismatches.len(), 2);

        fs::remove_dir_all(&dir).unwrap();
    }
}
