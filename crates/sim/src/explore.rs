//! Bounded-exhaustive schedule exploration (stateless model checking).
//!
//! The paper argues correctness over *all* interleavings; for small systems
//! we can enumerate them. Each episode rebuilds the system from scratch and
//! replays it under a [`crate::adversary::Scripted`] policy; the recorded
//! [`ChoicePoint`] log tells the explorer how many alternatives existed at
//! every decision, and a DFS odometer walks the whole schedule tree.
//!
//! With `Scripted::with_crashes(k)` the tree also branches on crashing any
//! processor at any point (up to `k` crashes), covering the fail-stop
//! adversary of the wait-freedom arguments.
//!
//! ## Partial-order reduction
//!
//! Naive DFS treats every interleaving as distinct, but steps by different
//! processors on *disjoint* locations commute: swapping two adjacent
//! independent steps yields a Mazurkiewicz-equivalent schedule with an
//! identical outcome. [`Explorer::explore_dpor`] exploits this with dynamic
//! partial-order reduction (Flanagan–Godefroid backtrack sets plus
//! Godefroid sleep sets): it follows one representative per equivalence
//! class and, after each episode, inspects the recorded
//! [`StepAccess`] log for *races* — pairs of dependent steps by different
//! processors not already ordered by happens-before — scheduling the racing
//! processor first at the earlier choice point. Crash branches are explored
//! exhaustively (a crash closes every window its victim held, so it
//! conflicts with everything and cannot be reduced).
//!
//! The reduction is sound for verdicts that depend on process return
//! values, final memory state, recorded violations, and the *relative
//! order* of `op_invoke`/`op_return` timestamps (linearizability). Verdicts
//! reading raw step counts or absolute clock values can differ between
//! equivalent schedules and should use [`Explorer::explore`].

use crate::runner::RunOutcome;
use crate::state::{ChoicePoint, StepAccess};

/// What one episode (a full run under one script) reports back.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// The scripted adversary's recorded choice log
    /// ([`crate::runner::RunOutcome::choice_log`]).
    pub choice_log: Vec<ChoicePoint>,
    /// The per-step access log ([`crate::runner::RunOutcome::access_log`]),
    /// aligned 1:1 with `choice_log`. Required by
    /// [`Explorer::explore_dpor`]; the naive explorer ignores it.
    pub access_log: Vec<StepAccess>,
    /// The caller's verdict for this schedule (e.g. the linearizability
    /// check): `Err` descriptions are collected as counterexamples.
    pub verdict: Result<(), String>,
}

impl EpisodeResult {
    /// Bundle a run's logs with the caller's verdict — the standard way to
    /// finish an episode closure.
    pub fn from_outcome<T>(out: &RunOutcome<T>, verdict: Result<(), String>) -> Self {
        Self {
            choice_log: out.choice_log.clone(),
            access_log: out.access_log.clone(),
            verdict,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Number of schedules executed.
    pub schedules: usize,
    /// Whether the whole tree was exhausted (false if `max_schedules` was
    /// hit first).
    pub complete: bool,
    /// Counterexamples: `(script, description)`.
    pub failures: Vec<(Vec<usize>, String)>,
}

impl ExploreReport {
    /// Panic with the first counterexample, if any. Also asserts the tree
    /// was exhausted, so a passing test really means "all schedules".
    pub fn assert_all_ok(&self) {
        if let Some((script, msg)) = self.failures.first() {
            panic!(
                "schedule {:?} failed (of {} explored): {}",
                script, self.schedules, msg
            );
        }
        assert!(
            self.complete,
            "exploration truncated at {} schedules; raise max_schedules",
            self.schedules
        );
    }

    /// Panic with the first counterexample, if any — but tolerate a
    /// truncated tree. For systems whose full schedule tree is too large:
    /// the guarantee is then "no failure among the first N schedules in
    /// DFS order", a bounded-exhaustive prefix.
    pub fn assert_no_failures(&self) {
        if let Some((script, msg)) = self.failures.first() {
            panic!(
                "schedule {:?} failed (of {} explored): {}",
                script, self.schedules, msg
            );
        }
    }

    /// Panic if the tree was exhausted without any failing schedule —
    /// used to confirm that a counterexample *exists* (e.g. the FLP-style
    /// demonstrations in `sbu-rmw`).
    pub fn assert_some_failure(&self) {
        assert!(
            !self.failures.is_empty(),
            "expected a counterexample among {} schedules but found none",
            self.schedules
        );
    }
}

/// Exhaustive schedule explorer.
///
/// ```
/// use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
/// use sbu_mem::WordMem;
///
/// // Two single-step processors have exactly two interleavings.
/// let report = Explorer::new(100).explore(|script| {
///     let mut mem: SimMem<()> = SimMem::new(2);
///     let reg = mem.alloc_atomic(0);
///     let out = run_uniform(
///         &mem,
///         Box::new(Scripted::new(script.to_vec())),
///         RunOptions::default(),
///         2,
///         |mem, pid| mem.atomic_write(pid, reg, pid.0 as u64),
///     );
///     EpisodeResult::from_outcome(&out, Ok(()))
/// });
/// report.assert_all_ok();
/// assert_eq!(report.schedules, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Stop after this many schedules (safety valve; `complete` reports
    /// whether it fired).
    pub max_schedules: usize,
    /// Keep at most this many counterexamples.
    pub max_failures: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_schedules: 200_000,
            max_failures: 1,
        }
    }
}

impl Explorer {
    /// An explorer with a schedule budget.
    pub fn new(max_schedules: usize) -> Self {
        Self {
            max_schedules,
            ..Self::default()
        }
    }

    /// Run `episode` on every schedule in DFS order.
    ///
    /// `episode` receives the decision script (a prefix; decisions beyond it
    /// default to option 0) and must rebuild the system, run it with
    /// `Scripted::new(script.to_vec())` (configured identically every time),
    /// and return the resulting choice log and verdict.
    pub fn explore<F>(&self, mut episode: F) -> ExploreReport
    where
        F: FnMut(&[usize]) -> EpisodeResult,
    {
        let mut script: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut failures = Vec::new();
        let mut complete = true;
        loop {
            if schedules >= self.max_schedules {
                complete = false;
                break;
            }
            let result = episode(&script);
            schedules += 1;
            if let Err(msg) = result.verdict {
                failures.push((script.clone(), msg));
                if failures.len() >= self.max_failures {
                    complete = false;
                    break;
                }
            }
            // Odometer: advance the deepest choice that still has an
            // unexplored sibling.
            let mut log = result.choice_log;
            debug_assert!(
                log.len() >= script.len(),
                "episode must replay at least the scripted prefix \
                 (non-deterministic episode?)"
            );
            let mut advanced = false;
            while let Some(last) = log.pop() {
                if last.chosen + 1 < last.options {
                    script = log.iter().map(|c| c.chosen).collect();
                    script.push(last.chosen + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        ExploreReport {
            schedules,
            complete,
            failures,
        }
    }

    /// Run `episode` on one representative of every Mazurkiewicz trace
    /// (dynamic partial-order reduction with sleep sets).
    ///
    /// The contract is the same as [`Explorer::explore`] — the episode must
    /// deterministically rebuild the system and replay
    /// `Scripted::new(script.to_vec())` — with two additions:
    ///
    /// * the episode must return the run's access log
    ///   (use [`EpisodeResult::from_outcome`]);
    /// * the verdict must be *schedule-equivalence invariant*: a function
    ///   of return values, final state, violations, and timestamp order —
    ///   not of raw step counts or absolute clock values.
    ///
    /// Do **not** combine with `Scripted::with_preemption_bound`: sleep
    /// sets assume every enabled transition stays explorable, and the
    /// bound's pruning makes the combination unsound. Crash branches
    /// (`Scripted::with_crashes`) are fully supported and explored
    /// exhaustively.
    pub fn explore_dpor<F>(&self, mut episode: F) -> ExploreReport
    where
        F: FnMut(&[usize]) -> EpisodeResult,
    {
        let mut stack: Vec<DporNode> = Vec::new();
        let mut schedules = 0usize;
        let mut failures = Vec::new();
        let mut complete = true;
        loop {
            if schedules >= self.max_schedules {
                complete = false;
                break;
            }
            let script: Vec<usize> = stack.iter().map(|n| n.chosen).collect();
            let result = episode(&script);
            schedules += 1;
            if let Err(msg) = result.verdict {
                failures.push((script, msg));
                if failures.len() >= self.max_failures {
                    complete = false;
                    break;
                }
            }
            let cps = result.choice_log;
            let accs = result.access_log;
            assert_eq!(
                cps.len(),
                accs.len(),
                "choice and access logs must align; episodes must return \
                 both via EpisodeResult::from_outcome"
            );
            assert!(
                cps.len() >= stack.len(),
                "episode must replay at least the scripted prefix \
                 (non-deterministic episode?)"
            );
            // Sync the search stack with this trace: refresh the replayed
            // prefix's accesses and grow nodes for the new suffix.
            for (d, (cp, acc)) in cps.iter().zip(accs.iter()).enumerate() {
                if let Some(node) = stack.get_mut(d) {
                    debug_assert_eq!(
                        (node.point.options, node.chosen),
                        (cp.options, cp.chosen),
                        "non-deterministic episode at depth {d}"
                    );
                    node.access = *acc;
                } else {
                    // Child sleep set: every sleeping transition that
                    // commutes with the parent's step stays asleep.
                    let sleep = match stack.last() {
                        None => Vec::new(),
                        Some(p) => p
                            .sleep
                            .iter()
                            .chain(p.done_sleep.iter())
                            .filter(|s| !s.access.dependent(&p.access))
                            .copied()
                            .collect(),
                    };
                    stack.push(DporNode::new(*cp, *acc, sleep));
                }
            }
            // Dynamic backtracking: for every race (i, j) in this trace,
            // arrange for the racing processor to be scheduled first at
            // the earlier choice point.
            add_race_backtracks(&mut stack, &cps, &accs);
            if !advance_dpor(&mut stack) {
                break;
            }
        }
        ExploreReport {
            schedules,
            complete,
            failures,
        }
    }
}

/// One frame of the DPOR search stack: the choice point observed at this
/// depth, plus Flanagan–Godefroid backtrack bookkeeping and the sleep set.
/// Option sets are `u128` bitmasks (≤ 64 processors × {step, crash}).
#[derive(Debug, Clone)]
struct DporNode {
    point: ChoicePoint,
    /// The option currently being explored below this node.
    chosen: usize,
    /// Access performed by `chosen` in the most recent trace through here.
    access: StepAccess,
    /// Options that must (still) be explored from this node.
    backtrack: u128,
    /// Options whose subtrees are finished (or were sleep-skipped).
    done: u128,
    /// Sleep set inherited at node creation: transitions explored by an
    /// earlier sibling subtree that commute with every step on the path
    /// since — re-exploring them here would revisit a covered trace.
    sleep: Vec<SleepEntry>,
    /// Transitions explored from this node, with the access each performed
    /// (they join the sleep set of later-sibling subtrees).
    done_sleep: Vec<SleepEntry>,
}

/// A sleeping transition: the processor, whether it was a crash branch, and
/// the access it performed when explored. The access stays valid while the
/// entry sleeps: the owning processor takes no step in between (that would
/// be a dependent step of the same pid and would evict the entry).
#[derive(Debug, Clone, Copy)]
struct SleepEntry {
    pid: usize,
    crash: bool,
    access: StepAccess,
}

impl DporNode {
    fn new(point: ChoicePoint, access: StepAccess, sleep: Vec<SleepEntry>) -> Self {
        // Crash options conflict with everything, so DPOR cannot prune
        // them: seed every crash branch into the backtrack set alongside
        // the first-explored option.
        let mut backtrack: u128 = 1 << point.chosen;
        if point.crash_allowed {
            for opt in point.num_enabled()..point.options {
                backtrack |= 1 << opt;
            }
        }
        Self {
            point,
            chosen: point.chosen,
            access,
            backtrack,
            done: 0,
            sleep,
            done_sleep: Vec::new(),
        }
    }

    /// Whether option `opt` is blocked by the inherited sleep set.
    fn sleep_blocked(&self, opt: usize) -> bool {
        let (pid, crash) = self.point.decode(opt);
        self.sleep.iter().any(|s| s.pid == pid && s.crash == crash)
    }
}

/// Detect races in the trace `(cps, accs)` and add backtrack options.
///
/// Two steps `i < j` race when they are dependent, belong to different
/// processors, and `i` is not ordered before `j` through any intermediate
/// step. For each race the processor of `j` must be tried at choice point
/// `i`; if it was not schedulable there, every enabled option is tried
/// (the Flanagan–Godefroid fallback).
///
/// Races where either endpoint is a *crash* decision are skipped: crash
/// options are seeded into every node's backtrack set outright (see
/// [`DporNode::new`]), so every (schedule-class, crash-position)
/// combination is explored without race analysis — a crash's `Global`
/// access would otherwise race with every step and force full DFS.
fn add_race_backtracks(stack: &mut [DporNode], cps: &[ChoicePoint], accs: &[StepAccess]) {
    let t = accs.len();
    let words = t.div_ceil(64);
    // hb[j] = bitset of steps i < j with i →hb j (happens-before is the
    // transitive closure of program order ∪ dependence).
    let mut hb: Vec<Vec<u64>> = Vec::with_capacity(t);
    for j in 0..t {
        let mut row = vec![0u64; words];
        for i in 0..j {
            if accs[i].dependent(&accs[j]) {
                for (w, prev) in row.iter_mut().zip(&hb[i]) {
                    *w |= prev;
                }
                row[i / 64] |= 1 << (i % 64);
            }
        }
        hb.push(row);
    }
    let in_hb = |hb: &[Vec<u64>], i: usize, j: usize| hb[j][i / 64] >> (i % 64) & 1 == 1;
    for j in 0..t {
        if is_crash(&cps[j]) {
            continue;
        }
        for i in 0..j {
            if is_crash(&cps[i]) || accs[i].pid == accs[j].pid || !accs[i].dependent(&accs[j]) {
                continue;
            }
            // Dependent, different pids: a race unless some intermediate
            // step already orders i before j.
            let transitively_ordered = (i + 1..j).any(|k| in_hb(&hb, k, j) && in_hb(&hb, i, k));
            if transitively_ordered {
                continue;
            }
            let node = &mut stack[i];
            let (pid_j, crash_j) = (accs[j].pid.0, is_crash(&cps[j]));
            match node.point.encode(pid_j, crash_j) {
                Some(opt) => node.backtrack |= 1 << opt,
                None => {
                    // The racing transition is not schedulable here:
                    // conservatively try every enabled step option.
                    for opt in 0..node.point.num_enabled() {
                        node.backtrack |= 1 << opt;
                    }
                }
            }
        }
    }
}

/// Whether a recorded choice was a crash decision.
fn is_crash(cp: &ChoicePoint) -> bool {
    cp.crash_allowed && cp.chosen >= cp.num_enabled()
}

/// Pick the next schedule: mark the current subtree done at the deepest
/// node, then descend to the deepest node with an unexplored, non-sleeping
/// backtrack option. Returns `false` when the search space is exhausted.
fn advance_dpor(stack: &mut Vec<DporNode>) -> bool {
    loop {
        let Some(node) = stack.last_mut() else {
            return false;
        };
        let chosen_bit = 1u128 << node.chosen;
        if node.done & chosen_bit == 0 {
            node.done |= chosen_bit;
            let (pid, crash) = node.point.decode(node.chosen);
            node.done_sleep.push(SleepEntry {
                pid,
                crash,
                access: node.access,
            });
        }
        loop {
            let pending = node.backtrack & !node.done;
            if pending == 0 {
                break; // exhausted: go shallower
            }
            let opt = pending.trailing_zeros() as usize;
            if node.sleep_blocked(opt) {
                // Covered by an earlier sibling subtree: skip without
                // exploring (the sleep-set reduction).
                node.done |= 1 << opt;
                continue;
            }
            node.chosen = opt;
            return true;
        }
        stack.pop();
    }
}

/// Delta-debug a failing script down to a locally minimal one.
///
/// `script` must make `episode` fail (panics otherwise). The minimizer
/// repeatedly (1) truncates to the shortest failing prefix — decisions past
/// the script default to option 0, so a shorter prefix is a simpler
/// schedule, (2) deletes single decisions, and (3) lowers each decision to
/// the smallest value that still fails (canonicalizing out-of-range values
/// that `Scripted` wraps), re-running the episode after each candidate edit
/// and keeping only edits that still fail, until a fixpoint. Trailing zeros
/// are dropped (they are the default). Returns the minimized script and the
/// failure message it reproduces.
pub fn minimize_script<F>(script: &[usize], mut episode: F) -> (Vec<usize>, String)
where
    F: FnMut(&[usize]) -> EpisodeResult,
{
    let mut fails = |s: &[usize]| episode(s).verdict.err();
    let mut message = fails(script).expect("minimize_script needs a failing script");
    let mut cur = script.to_vec();
    loop {
        let before = cur.clone();
        // 1. Shortest failing prefix. Failure is not monotone in prefix
        // length (the suffix defaults to option 0), so scan upward.
        for k in 0..cur.len() {
            if let Some(msg) = fails(&cur[..k]) {
                message = msg;
                cur.truncate(k);
                break;
            }
        }
        // 2. Try deleting each decision (later decisions re-align, which
        // often still reproduces the failure in fewer steps).
        let mut i = 0;
        while i < cur.len() {
            let mut shorter = cur.clone();
            shorter.remove(i);
            if let Some(msg) = fails(&shorter) {
                message = msg;
                cur = shorter;
            } else {
                i += 1;
            }
        }
        // 3. Lower each decision to the smallest value that still fails.
        for i in 0..cur.len() {
            let old = cur[i];
            for v in 0..old {
                cur[i] = v;
                if let Some(msg) = fails(&cur) {
                    message = msg;
                    break;
                }
                cur[i] = old;
            }
        }
        while cur.last() == Some(&0) {
            cur.pop();
        }
        if cur == before {
            break;
        }
    }
    (cur, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Scripted;
    use crate::mem::SimMem;
    use crate::runner::{run_uniform, RunOptions};
    use sbu_mem::WordMem;

    /// Two processors, each taking exactly one step: exactly 2 interleavings
    /// of the first step × 1 of the remaining = 2 schedules.
    #[test]
    fn counts_schedules_of_two_single_step_procs() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.atomic_write(pid, a, pid.0 as u64 + 1);
                },
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        report.assert_all_ok();
        assert_eq!(report.schedules, 2);
    }

    /// Two procs with two steps each: C(4,2) = 6 interleavings.
    #[test]
    fn counts_interleavings_of_two_two_step_procs() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let b = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.atomic_write(pid, a, 1);
                    mem.atomic_write(pid, b, 1);
                },
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        report.assert_all_ok();
        assert_eq!(report.schedules, 6);
    }

    /// The explorer finds the one schedule where a read slips between two
    /// writes.
    #[test]
    fn finds_a_specific_interleaving() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let observed = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    if pid.0 == 0 {
                        mem.atomic_write(pid, a, 1);
                        mem.atomic_write(pid, a, 2);
                        0
                    } else {
                        mem.atomic_read(pid, a)
                    }
                },
            );
            let read = *observed.outcomes[1].completed().unwrap();
            let verdict = if read == 1 {
                Err("read the intermediate value".into())
            } else {
                Ok(())
            };
            EpisodeResult::from_outcome(&observed, verdict)
        });
        report.assert_some_failure();
    }

    /// Crash exploration: with one crash allowed among two one-step procs,
    /// the tree includes schedules where either proc dies first.
    #[test]
    fn crash_exploration_reaches_crashed_outcomes() {
        let explorer = Explorer::new(10_000);
        let mut saw_crash_of = [false, false];
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.rmw(pid, a, &|x| x + 1);
                },
            );
            for (i, o) in out.outcomes.iter().enumerate() {
                if o.is_crashed() {
                    saw_crash_of[i] = true;
                }
            }
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        report.assert_all_ok();
        assert!(saw_crash_of[0] && saw_crash_of[1]);
        // step0/step1 each followed by {step, crash} of the survivor, plus
        // crash0/crash1 followed by the forced survivor step: 2×2 + 2 = 6,
        // versus 2 schedules without crash branching.
        assert_eq!(report.schedules, 6);
    }

    /// Two processors writing *disjoint* registers commute completely:
    /// every interleaving is Mazurkiewicz-equivalent, so DPOR explores a
    /// single representative where naive DFS walks all six.
    #[test]
    fn dpor_collapses_disjoint_writers_to_one_trace() {
        let episode = |script: &[usize]| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let regs = [mem.alloc_atomic(0), mem.alloc_atomic(0)];
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    mem.atomic_write(pid, regs[pid.0], 1);
                    mem.atomic_write(pid, regs[pid.0], 2);
                },
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        };
        let naive = Explorer::new(1000).explore(episode);
        let dpor = Explorer::new(1000).explore_dpor(episode);
        naive.assert_all_ok();
        dpor.assert_all_ok();
        assert_eq!(naive.schedules, 6);
        assert_eq!(dpor.schedules, 1);
    }

    /// Two processors writing the *same* register never commute: all six
    /// interleavings are inequivalent and DPOR must visit every one.
    #[test]
    fn dpor_keeps_all_orders_of_conflicting_writers() {
        let episode = |script: &[usize]| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    mem.atomic_write(pid, a, pid.0 as u64);
                    mem.atomic_write(pid, a, pid.0 as u64 + 10);
                },
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        };
        let dpor = Explorer::new(1000).explore_dpor(episode);
        dpor.assert_all_ok();
        assert_eq!(dpor.schedules, 6);
    }

    /// DPOR still finds the single racy schedule where a read slips between
    /// two writes — reduction must never lose counterexamples.
    #[test]
    fn dpor_finds_the_intermediate_read() {
        let episode = |script: &[usize]| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    if pid.0 == 0 {
                        mem.atomic_write(pid, a, 1);
                        mem.atomic_write(pid, a, 2);
                        0
                    } else {
                        mem.atomic_read(pid, a)
                    }
                },
            );
            let read = *out.outcomes[1].completed().unwrap();
            let verdict = if read == 1 {
                Err("read the intermediate value".into())
            } else {
                Ok(())
            };
            EpisodeResult::from_outcome(&out, verdict)
        };
        let mut dpor = Explorer::new(1000);
        dpor.max_failures = usize::MAX;
        let mut naive = Explorer::new(1000);
        naive.max_failures = usize::MAX;
        let dpor_report = dpor.explore_dpor(episode);
        let naive_report = naive.explore(episode);
        dpor_report.assert_some_failure();
        assert!(dpor_report.complete);
        // All three steps hit the same register, so nothing commutes here:
        // DPOR must not prune (and must not add) anything.
        assert!(dpor_report.schedules <= naive_report.schedules);
        // Both find the identical set of failure messages.
        fn msgs(r: &ExploreReport) -> Vec<String> {
            let mut m: Vec<String> = r.failures.iter().map(|(_, m)| m.clone()).collect();
            m.sort_unstable();
            m.dedup();
            m
        }
        assert_eq!(msgs(&dpor_report), msgs(&naive_report));
    }

    /// Crash branches conflict with everything, so DPOR explores each crash
    /// placement; it must still observe both processors dying.
    #[test]
    fn dpor_crash_exploration_reaches_crashed_outcomes() {
        use std::cell::RefCell;
        let saw_crash_of = RefCell::new([false, false]);
        let report = Explorer::new(10_000).explore_dpor(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.rmw(pid, a, &|x| x + 1);
                },
            );
            for (i, o) in out.outcomes.iter().enumerate() {
                if o.is_crashed() {
                    saw_crash_of.borrow_mut()[i] = true;
                }
            }
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        report.assert_all_ok();
        let saw = saw_crash_of.into_inner();
        assert!(saw[0] && saw[1]);
        // The rmw steps conflict, so no reduction is available here: DPOR
        // must match the naive count exactly (6 — see the naive test).
        assert_eq!(report.schedules, 6);
    }

    /// The minimizer strips a padded counterexample down to the exact two
    /// decisions that matter: "writer steps, then reader steps".
    #[test]
    fn minimizer_reduces_to_the_essential_decisions() {
        let episode = |script: &[usize]| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    if pid.0 == 0 {
                        mem.atomic_write(pid, a, 1);
                        mem.atomic_write(pid, a, 2);
                        0
                    } else {
                        mem.atomic_read(pid, a)
                    }
                },
            );
            let read = *out.outcomes[1].completed().unwrap();
            let verdict = if read == 1 {
                Err("read the intermediate value".into())
            } else {
                Ok(())
            };
            EpisodeResult::from_outcome(&out, verdict)
        };
        // A deliberately padded failing script: extra trailing defaults and
        // a redundant in-range decision the wrap-around makes moot.
        let bloated = [0usize, 3, 0, 0, 0];
        let (minimal, message) = minimize_script(&bloated, episode);
        assert_eq!(message, "read the intermediate value");
        assert_eq!(minimal, vec![0, 1]);
        // The minimized script still reproduces the identical verdict.
        assert_eq!(
            episode(&minimal).verdict,
            Err("read the intermediate value".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "needs a failing script")]
    fn minimizer_rejects_passing_scripts() {
        minimize_script(&[0, 0], |script| {
            let mut mem: SimMem<()> = SimMem::new(1);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                1,
                |mem, pid| mem.atomic_write(pid, a, 1),
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        });
    }

    #[test]
    fn max_schedules_truncates() {
        let explorer = Explorer::new(3);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(3);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                3,
                |mem, pid| {
                    mem.atomic_write(pid, a, 1);
                    mem.atomic_write(pid, a, 2);
                },
            );
            EpisodeResult::from_outcome(&out, Ok(()))
        });
        assert!(!report.complete);
        assert_eq!(report.schedules, 3);
    }
}
