//! Bounded-exhaustive schedule exploration (stateless model checking).
//!
//! The paper argues correctness over *all* interleavings; for small systems
//! we can enumerate them. Each episode rebuilds the system from scratch and
//! replays it under a [`crate::adversary::Scripted`] policy; the recorded
//! [`ChoicePoint`] log tells the explorer how many alternatives existed at
//! every decision, and a DFS odometer walks the whole schedule tree.
//!
//! With `Scripted::with_crashes(k)` the tree also branches on crashing any
//! processor at any point (up to `k` crashes), covering the fail-stop
//! adversary of the wait-freedom arguments.

use crate::state::ChoicePoint;

/// What one episode (a full run under one script) reports back.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// The scripted adversary's recorded choice log
    /// ([`crate::runner::RunOutcome::choice_log`]).
    pub choice_log: Vec<ChoicePoint>,
    /// The caller's verdict for this schedule (e.g. the linearizability
    /// check): `Err` descriptions are collected as counterexamples.
    pub verdict: Result<(), String>,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Number of schedules executed.
    pub schedules: usize,
    /// Whether the whole tree was exhausted (false if `max_schedules` was
    /// hit first).
    pub complete: bool,
    /// Counterexamples: `(script, description)`.
    pub failures: Vec<(Vec<usize>, String)>,
}

impl ExploreReport {
    /// Panic with the first counterexample, if any. Also asserts the tree
    /// was exhausted, so a passing test really means "all schedules".
    pub fn assert_all_ok(&self) {
        if let Some((script, msg)) = self.failures.first() {
            panic!(
                "schedule {:?} failed (of {} explored): {}",
                script, self.schedules, msg
            );
        }
        assert!(
            self.complete,
            "exploration truncated at {} schedules; raise max_schedules",
            self.schedules
        );
    }

    /// Panic with the first counterexample, if any — but tolerate a
    /// truncated tree. For systems whose full schedule tree is too large:
    /// the guarantee is then "no failure among the first N schedules in
    /// DFS order", a bounded-exhaustive prefix.
    pub fn assert_no_failures(&self) {
        if let Some((script, msg)) = self.failures.first() {
            panic!(
                "schedule {:?} failed (of {} explored): {}",
                script, self.schedules, msg
            );
        }
    }

    /// Panic if the tree was exhausted without any failing schedule —
    /// used to confirm that a counterexample *exists* (e.g. the FLP-style
    /// demonstrations in `sbu-rmw`).
    pub fn assert_some_failure(&self) {
        assert!(
            !self.failures.is_empty(),
            "expected a counterexample among {} schedules but found none",
            self.schedules
        );
    }
}

/// Exhaustive schedule explorer.
///
/// ```
/// use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
/// use sbu_mem::WordMem;
///
/// // Two single-step processors have exactly two interleavings.
/// let report = Explorer::new(100).explore(|script| {
///     let mut mem: SimMem<()> = SimMem::new(2);
///     let reg = mem.alloc_atomic(0);
///     let out = run_uniform(
///         &mem,
///         Box::new(Scripted::new(script.to_vec())),
///         RunOptions::default(),
///         2,
///         |mem, pid| mem.atomic_write(pid, reg, pid.0 as u64),
///     );
///     EpisodeResult { choice_log: out.choice_log, verdict: Ok(()) }
/// });
/// report.assert_all_ok();
/// assert_eq!(report.schedules, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Stop after this many schedules (safety valve; `complete` reports
    /// whether it fired).
    pub max_schedules: usize,
    /// Keep at most this many counterexamples.
    pub max_failures: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_schedules: 200_000,
            max_failures: 1,
        }
    }
}

impl Explorer {
    /// An explorer with a schedule budget.
    pub fn new(max_schedules: usize) -> Self {
        Self {
            max_schedules,
            ..Self::default()
        }
    }

    /// Run `episode` on every schedule in DFS order.
    ///
    /// `episode` receives the decision script (a prefix; decisions beyond it
    /// default to option 0) and must rebuild the system, run it with
    /// `Scripted::new(script.to_vec())` (configured identically every time),
    /// and return the resulting choice log and verdict.
    pub fn explore<F>(&self, mut episode: F) -> ExploreReport
    where
        F: FnMut(&[usize]) -> EpisodeResult,
    {
        let mut script: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut failures = Vec::new();
        let mut complete = true;
        loop {
            if schedules >= self.max_schedules {
                complete = false;
                break;
            }
            let result = episode(&script);
            schedules += 1;
            if let Err(msg) = result.verdict {
                failures.push((script.clone(), msg));
                if failures.len() >= self.max_failures {
                    complete = false;
                    break;
                }
            }
            // Odometer: advance the deepest choice that still has an
            // unexplored sibling.
            let mut log = result.choice_log;
            debug_assert!(
                log.len() >= script.len(),
                "episode must replay at least the scripted prefix \
                 (non-deterministic episode?)"
            );
            let mut advanced = false;
            while let Some(last) = log.pop() {
                if last.chosen + 1 < last.options {
                    script = log.iter().map(|c| c.chosen).collect();
                    script.push(last.chosen + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        ExploreReport {
            schedules,
            complete,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Scripted;
    use crate::mem::SimMem;
    use crate::runner::{run_uniform, RunOptions};
    use sbu_mem::WordMem;

    /// Two processors, each taking exactly one step: exactly 2 interleavings
    /// of the first step × 1 of the remaining = 2 schedules.
    #[test]
    fn counts_schedules_of_two_single_step_procs() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.atomic_write(pid, a, pid.0 as u64 + 1);
                },
            );
            EpisodeResult {
                choice_log: out.choice_log,
                verdict: Ok(()),
            }
        });
        report.assert_all_ok();
        assert_eq!(report.schedules, 2);
    }

    /// Two procs with two steps each: C(4,2) = 6 interleavings.
    #[test]
    fn counts_interleavings_of_two_two_step_procs() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let b = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.atomic_write(pid, a, 1);
                    mem.atomic_write(pid, b, 1);
                },
            );
            EpisodeResult {
                choice_log: out.choice_log,
                verdict: Ok(()),
            }
        });
        report.assert_all_ok();
        assert_eq!(report.schedules, 6);
    }

    /// The explorer finds the one schedule where a read slips between two
    /// writes.
    #[test]
    fn finds_a_specific_interleaving() {
        let explorer = Explorer::new(1000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let observed = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                |mem, pid| {
                    if pid.0 == 0 {
                        mem.atomic_write(pid, a, 1);
                        mem.atomic_write(pid, a, 2);
                        0
                    } else {
                        mem.atomic_read(pid, a)
                    }
                },
            );
            let read = *observed.outcomes[1].completed().unwrap();
            EpisodeResult {
                choice_log: observed.choice_log,
                verdict: if read == 1 {
                    Err("read the intermediate value".into())
                } else {
                    Ok(())
                },
            }
        });
        report.assert_some_failure();
    }

    /// Crash exploration: with one crash allowed among two one-step procs,
    /// the tree includes schedules where either proc dies first.
    #[test]
    fn crash_exploration_reaches_crashed_outcomes() {
        let explorer = Explorer::new(10_000);
        let mut saw_crash_of = [false, false];
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                |mem, pid| {
                    mem.rmw(pid, a, &|x| x + 1);
                },
            );
            for (i, o) in out.outcomes.iter().enumerate() {
                if o.is_crashed() {
                    saw_crash_of[i] = true;
                }
            }
            EpisodeResult {
                choice_log: out.choice_log,
                verdict: Ok(()),
            }
        });
        report.assert_all_ok();
        assert!(saw_crash_of[0] && saw_crash_of[1]);
        // step0/step1 each followed by {step, crash} of the survivor, plus
        // crash0/crash1 followed by the forced survivor step: 2×2 + 2 = 6,
        // versus 2 schedules without crash branching.
        assert_eq!(report.schedules, 6);
    }

    #[test]
    fn max_schedules_truncates() {
        let explorer = Explorer::new(3);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(3);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                3,
                |mem, pid| {
                    mem.atomic_write(pid, a, 1);
                    mem.atomic_write(pid, a, 2);
                },
            );
            EpisodeResult {
                choice_log: out.choice_log,
                verdict: Ok(()),
            }
        });
        assert!(!report.complete);
        assert_eq!(report.schedules, 3);
    }
}
