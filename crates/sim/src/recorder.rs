//! Typed history recording for linearizability checking.
//!
//! Processor closures wrap each object-level operation in
//! [`HistoryRecorder::record`], which brackets it with the backend's
//! `op_invoke`/`op_return` logical-clock hooks. If the processor crashes
//! inside the operation, the record stays *pending* — exactly the balanced-
//! extension treatment of Definition 3.1 that the checker implements.
//!
//! Storage is sharded by processor id: each `begin` takes only the lock of
//! shard `pid % SHARD_COUNT`, so native threads with distinct [`Pid`]s never
//! contend on a single global mutex (the old design serialized every
//! operation of a torture run through one `Mutex<Vec<…>>`). Tokens encode
//! their shard (`token = index * SHARD_COUNT + shard`), keeping the public
//! `begin`/`finish`/`record`/`history` API unchanged; [`HistoryRecorder::history`]
//! merges the shards and sorts by invocation time.

use parking_lot::Mutex;
use sbu_mem::{Pid, WordMem};
use sbu_spec::history::{History, OpRecord};

/// Number of independently locked shards. A power of two comfortably above
/// typical torture-thread counts; memory cost is one empty `Vec` per shard.
const SHARD_COUNT: usize = 16;

struct Slot<O, R> {
    pid: Pid,
    op: O,
    invoke: u64,
    resp: Option<R>,
    ret: Option<u64>,
}

/// A concurrent collector of operation records, sharded per processor.
///
/// ```
/// use sbu_sim::HistoryRecorder;
/// use sbu_spec::Pid;
///
/// let rec: HistoryRecorder<&str, u32> = HistoryRecorder::new();
/// let token = rec.begin(Pid(0), "inc", 0);
/// rec.finish(token, 1, 3);
/// let history = rec.history();
/// assert_eq!(history.completed_count(), 1);
/// ```
pub struct HistoryRecorder<O, R> {
    shards: [Mutex<Vec<Slot<O, R>>>; SHARD_COUNT],
}

impl<O, R> Default for HistoryRecorder<O, R> {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }
}

impl<O, R> std::fmt::Debug for HistoryRecorder<O, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRecorder")
            .field("records", &self.len_untyped())
            .finish()
    }
}

impl<O, R> HistoryRecorder<O, R> {
    fn len_untyped(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl<O: Clone, R: Clone> HistoryRecorder<O, R> {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a record at logical time `invoke`; returns a token for
    /// [`HistoryRecorder::finish`].
    pub fn begin(&self, pid: Pid, op: O, invoke: u64) -> usize {
        let shard = pid.0 % SHARD_COUNT;
        let mut slots = self.shards[shard].lock();
        slots.push(Slot {
            pid,
            op,
            invoke,
            resp: None,
            ret: None,
        });
        (slots.len() - 1) * SHARD_COUNT + shard
    }

    /// Close the record opened by `begin`.
    pub fn finish(&self, token: usize, resp: R, ret: u64) {
        let shard = token % SHARD_COUNT;
        let index = token / SHARD_COUNT;
        let mut slots = self.shards[shard].lock();
        let slot = &mut slots[index];
        debug_assert!(slot.resp.is_none(), "record finished twice");
        slot.resp = Some(resp);
        slot.ret = Some(ret);
    }

    /// Run `f` as one recorded operation: invoke timestamp, body, return
    /// timestamp. A crash inside `f` unwinds past `finish`, leaving the
    /// record pending.
    pub fn record<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        op: O,
        f: impl FnOnce() -> R,
    ) -> R {
        let invoke = mem.op_invoke(pid);
        let token = self.begin(pid, op, invoke);
        let resp = f();
        let ret = mem.op_return(pid);
        self.finish(token, resp.clone(), ret);
        resp
    }

    /// Number of records (completed + pending).
    pub fn len(&self) -> usize {
        self.len_untyped()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Snapshot the records into a [`History`], merged across shards and
    /// sorted by invocation time (completed before pending on ties).
    pub fn history(&self) -> History<O, R> {
        let mut records: Vec<OpRecord<O, R>> = Vec::with_capacity(self.len_untyped());
        for shard in &self.shards {
            let slots = shard.lock();
            records.extend(slots.iter().map(|s| OpRecord {
                pid: s.pid,
                op: s.op.clone(),
                resp: s.resp.clone(),
                invoke: s.invoke,
                ret: s.ret,
            }));
        }
        records.sort_by_key(|r| (r.invoke, r.ret.unwrap_or(u64::MAX)));
        records.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RandomAdversary;
    use crate::mem::SimMem;
    use crate::runner::{run_uniform, RunOptions};
    use sbu_spec::linearize::check;
    use sbu_spec::specs::{CounterOp, CounterSpec};

    #[test]
    fn records_completed_operations_with_real_time_order() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let rec: HistoryRecorder<CounterOp, u64> = HistoryRecorder::new();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(3)),
            RunOptions::default(),
            2,
            |mem, pid| {
                rec.record(mem, pid, CounterOp::Inc, || mem.rmw(pid, a, &|x| x + 1) + 1);
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.pending_count(), 0);
        h.validate().unwrap();
        assert!(check(&h, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn crashed_operation_stays_pending() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let rec: HistoryRecorder<CounterOp, u64> = HistoryRecorder::new();
        // Script: step p1 (its op_invoke), then crash p1 at its rmw point
        // (crash of waiting[1] = index 2 + 1 with both procs waiting);
        // defaults then run p0 to completion.
        let out = run_uniform(
            &mem,
            Box::new(crate::adversary::Scripted::new(vec![1, 3]).with_crashes(1)),
            RunOptions::default(),
            2,
            |mem, pid| {
                rec.record(mem, pid, CounterOp::Inc, || mem.rmw(pid, a, &|x| x + 1) + 1);
            },
        );
        assert_eq!(out.crashed_count(), 1);
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.pending_count(), 1);
        // Whether or not the crashed increment took effect, the history must
        // linearize (pending ops are optional).
        assert!(check(&h, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn len_and_is_empty() {
        let rec: HistoryRecorder<u32, u32> = HistoryRecorder::new();
        assert!(rec.is_empty());
        let t = rec.begin(Pid(0), 1, 0);
        rec.finish(t, 2, 1);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }

    #[test]
    fn shards_merge_into_one_sorted_history() {
        let rec: HistoryRecorder<&'static str, u32> = HistoryRecorder::new();
        // Pids chosen to land in distinct shards and (17) to collide with 1.
        let t3 = rec.begin(Pid(3), "c", 20);
        let t17 = rec.begin(Pid(17), "b", 10);
        let t1 = rec.begin(Pid(1), "a", 0);
        rec.finish(t1, 1, 5);
        rec.finish(t17, 2, 15);
        rec.finish(t3, 3, 25);
        assert_eq!(rec.len(), 3);
        let h = rec.history();
        h.validate().unwrap();
        let ops: Vec<&str> = h.iter().map(|r| r.op).collect();
        assert_eq!(ops, vec!["a", "b", "c"], "merged history sorted by invoke");
    }

    #[test]
    fn abandoned_op_reaches_checker_as_pending() {
        use sbu_spec::history::OpRecord;
        use sbu_spec::linearize::check_windowed;
        use sbu_spec::specs::{RegisterOp, RegisterResp, RegisterSpec};

        // Drop mode: the abandoned Write(9) never executed; a later read
        // sees the old value. Take-effect mode: the write's effect became
        // visible before the thread died. Both must linearize, and the
        // recorder must surface the un-finished op as pending either way.
        for (seen, takes_effect) in [(0u64, false), (9u64, true)] {
            let rec: HistoryRecorder<RegisterOp, RegisterResp> = HistoryRecorder::new();
            let t = rec.begin(Pid(0), RegisterOp::Write(0), 0);
            rec.finish(t, RegisterResp::Ack, 1);
            // Never finished: thread abandoned mid-operation.
            let _ = rec.begin(Pid(1), RegisterOp::Write(9), 2);
            let t = rec.begin(Pid(2), RegisterOp::Read, 10);
            rec.finish(t, RegisterResp::Value(seen), 11);

            let h = rec.history();
            assert_eq!(h.pending_count(), 1);
            let pending: Vec<&OpRecord<_, _>> = h.iter().filter(|r| !r.is_completed()).collect();
            assert_eq!(pending[0].op, RegisterOp::Write(9));

            let res = check_windowed(&h, RegisterSpec::new()).unwrap();
            assert!(res.is_linearizable(), "seen={seen}");
            let wit = res.witness().unwrap();
            let pend_idx = h.iter().position(|r| !r.is_completed()).unwrap();
            let read_idx = h.iter().position(|r| r.op == RegisterOp::Read).unwrap();
            let pend_pos = wit.iter().position(|&i| i == pend_idx);
            let read_pos = wit.iter().position(|&i| i == read_idx).unwrap();
            if takes_effect {
                // Read saw 9: the pending write must linearize before it.
                assert!(pend_pos.expect("must take effect") < read_pos);
            } else if let Some(p) = pend_pos {
                // Read saw 0: the write was dropped or ordered after.
                assert!(p > read_pos);
            }
        }
    }
}
