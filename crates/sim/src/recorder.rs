//! Typed history recording for linearizability checking.
//!
//! Processor closures wrap each object-level operation in
//! [`HistoryRecorder::record`], which brackets it with the backend's
//! `op_invoke`/`op_return` logical-clock hooks. If the processor crashes
//! inside the operation, the record stays *pending* — exactly the balanced-
//! extension treatment of Definition 3.1 that the checker implements.

use parking_lot::Mutex;
use sbu_mem::{Pid, WordMem};
use sbu_spec::history::{History, OpRecord};

struct Slot<O, R> {
    pid: Pid,
    op: O,
    invoke: u64,
    resp: Option<R>,
    ret: Option<u64>,
}

/// A concurrent collector of operation records.
///
/// ```
/// use sbu_sim::HistoryRecorder;
/// use sbu_spec::Pid;
///
/// let rec: HistoryRecorder<&str, u32> = HistoryRecorder::new();
/// let token = rec.begin(Pid(0), "inc", 0);
/// rec.finish(token, 1, 3);
/// let history = rec.history();
/// assert_eq!(history.completed_count(), 1);
/// ```
#[derive(Default)]
pub struct HistoryRecorder<O, R> {
    slots: Mutex<Vec<Slot<O, R>>>,
}

impl<O, R> std::fmt::Debug for HistoryRecorder<O, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRecorder")
            .field("records", &self.slots.lock().len())
            .finish()
    }
}

impl<O: Clone, R: Clone> HistoryRecorder<O, R> {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Open a record at logical time `invoke`; returns a token for
    /// [`HistoryRecorder::finish`].
    pub fn begin(&self, pid: Pid, op: O, invoke: u64) -> usize {
        let mut slots = self.slots.lock();
        slots.push(Slot {
            pid,
            op,
            invoke,
            resp: None,
            ret: None,
        });
        slots.len() - 1
    }

    /// Close the record opened by `begin`.
    pub fn finish(&self, token: usize, resp: R, ret: u64) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[token];
        debug_assert!(slot.resp.is_none(), "record finished twice");
        slot.resp = Some(resp);
        slot.ret = Some(ret);
    }

    /// Run `f` as one recorded operation: invoke timestamp, body, return
    /// timestamp. A crash inside `f` unwinds past `finish`, leaving the
    /// record pending.
    pub fn record<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        op: O,
        f: impl FnOnce() -> R,
    ) -> R {
        let invoke = mem.op_invoke(pid);
        let token = self.begin(pid, op, invoke);
        let resp = f();
        let ret = mem.op_return(pid);
        self.finish(token, resp.clone(), ret);
        resp
    }

    /// Number of records (completed + pending).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Snapshot the records into a [`History`].
    pub fn history(&self) -> History<O, R> {
        self.slots
            .lock()
            .iter()
            .map(|s| OpRecord {
                pid: s.pid,
                op: s.op.clone(),
                resp: s.resp.clone(),
                invoke: s.invoke,
                ret: s.ret,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RandomAdversary;
    use crate::mem::SimMem;
    use crate::runner::{run_uniform, RunOptions};
    use sbu_spec::linearize::check;
    use sbu_spec::specs::{CounterOp, CounterSpec};

    #[test]
    fn records_completed_operations_with_real_time_order() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let rec: HistoryRecorder<CounterOp, u64> = HistoryRecorder::new();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(3)),
            RunOptions::default(),
            2,
            |mem, pid| {
                rec.record(mem, pid, CounterOp::Inc, || mem.rmw(pid, a, &|x| x + 1) + 1);
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.pending_count(), 0);
        h.validate().unwrap();
        assert!(check(&h, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn crashed_operation_stays_pending() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let rec: HistoryRecorder<CounterOp, u64> = HistoryRecorder::new();
        // Script: step p1 (its op_invoke), then crash p1 at its rmw point
        // (crash of waiting[1] = index 2 + 1 with both procs waiting);
        // defaults then run p0 to completion.
        let out = run_uniform(
            &mem,
            Box::new(crate::adversary::Scripted::new(vec![1, 3]).with_crashes(1)),
            RunOptions::default(),
            2,
            |mem, pid| {
                rec.record(mem, pid, CounterOp::Inc, || mem.rmw(pid, a, &|x| x + 1) + 1);
            },
        );
        assert_eq!(out.crashed_count(), 1);
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.pending_count(), 1);
        // Whether or not the crashed increment took effect, the history must
        // linearize (pending ops are optional).
        assert!(check(&h, CounterSpec::new()).is_linearizable());
    }

    #[test]
    fn len_and_is_empty() {
        let rec: HistoryRecorder<u32, u32> = HistoryRecorder::new();
        assert!(rec.is_empty());
        let t = rec.begin(Pid(0), 1, 0);
        rec.finish(t, 2, 1);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }
}
