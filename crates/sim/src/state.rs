//! The conductor's shared state: register tables with overlap-window
//! tracking, processor statuses, step accounting and violation records.

use crate::adversary::Adversary;
use parking_lot::{Condvar, Mutex};
use sbu_mem::{AccessKind, JamOutcome, LocId, Pid, Tri, Word};
use std::fmt;

/// One scheduling decision: how many options the adversary had, which it
/// chose, and *what the options were* — the set of runnable processors and
/// whether crash branches existed. The schedule explorer enumerates scripts
/// over these; the DPOR explorer additionally maps option indices back to
/// processors to schedule racing steps first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Number of available options at this point.
    pub options: usize,
    /// The option taken (`0..options`).
    pub chosen: usize,
    /// Bitmask over pids of the schedulable processors: bit `p` set iff
    /// `Pid(p)` was an option. Option index `i` (for `i` below the popcount
    /// `k`) steps the `i`-th set pid in ascending order; index `k + i`
    /// crashes it (only when [`ChoicePoint::crash_allowed`]).
    pub enabled: u64,
    /// Whether the upper half of the option space (crash decisions)
    /// existed at this point.
    pub crash_allowed: bool,
}

impl ChoicePoint {
    /// Number of schedulable processors (`options` is this, doubled when
    /// crashes were allowed).
    pub fn num_enabled(&self) -> usize {
        self.enabled.count_ones() as usize
    }

    /// Decode an option index into `(pid, is_crash)`.
    ///
    /// # Panics
    ///
    /// Panics if `opt >= self.options`.
    pub fn decode(&self, opt: usize) -> (usize, bool) {
        let k = self.num_enabled();
        assert!(opt < self.options, "option {opt} out of {}", self.options);
        let (rank, crash) = if opt < k {
            (opt, false)
        } else {
            (opt - k, true)
        };
        let mut mask = self.enabled;
        for _ in 0..rank {
            mask &= mask - 1; // clear lowest set bit
        }
        (mask.trailing_zeros() as usize, crash)
    }

    /// Encode `(pid, is_crash)` back into an option index, if that pid was
    /// enabled here (and, for crashes, if crash branches existed).
    pub fn encode(&self, pid: usize, crash: bool) -> Option<usize> {
        if pid >= 64 || self.enabled & (1 << pid) == 0 || (crash && !self.crash_allowed) {
            return None;
        }
        let rank = (self.enabled & ((1u64 << pid) - 1)).count_ones() as usize;
        Some(if crash {
            self.num_enabled() + rank
        } else {
            rank
        })
    }
}

/// The memory access performed by one scheduled step, recorded 1:1 with the
/// adversary's [`ChoicePoint`] log. This is what the DPOR explorer's
/// independence relation inspects: `access_log[i]` is the access of the
/// step granted by decision `choice_log[i]` (a crash grant records a
/// [`LocId::Global`] write, since fail-stop closes every window the victim
/// held).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAccess {
    /// The processor that took the step (or was crashed).
    pub pid: Pid,
    /// The location the step touched.
    pub loc: LocId,
    /// Whether the step could mutate that location.
    pub kind: AccessKind,
}

impl StepAccess {
    /// Mazurkiewicz dependence: steps of the same processor never commute;
    /// otherwise two steps conflict iff they touch the same location with
    /// at least one write, [`LocId::Global`] effects conflict with
    /// everything, and a persistency fence ([`LocId::Fence`]) conflicts
    /// with every write to a persistent location — re-ordering a fence
    /// past such a write changes which unfenced writes a crash can tear
    /// (fences of *different* processors commute with each other, and with
    /// reads, volatile accesses, and clock steps).
    pub fn dependent(&self, other: &StepAccess) -> bool {
        if self.pid == other.pid {
            return true;
        }
        if self.loc == LocId::Global || other.loc == LocId::Global {
            return true;
        }
        if Self::fence_vs_persistent_write(self, other)
            || Self::fence_vs_persistent_write(other, self)
        {
            return true;
        }
        self.loc == other.loc && self.kind.conflicts(other.kind)
    }

    /// Whether `a` is a fence and `b` mutates a persistent location (the
    /// kinds `DurableMem` tracks unfenced writes for).
    fn fence_vs_persistent_write(a: &StepAccess, b: &StepAccess) -> bool {
        matches!(a.loc, LocId::Fence(_))
            && b.kind == AccessKind::Write
            && matches!(
                b.loc,
                LocId::StickyBit(_) | LocId::StickyWord(_) | LocId::Tas(_) | LocId::Data(_)
            )
    }
}

/// A monitored non-atomicity violation: the protocol let two operations
/// overlap on an object whose semantics forbid it (e.g. `Flush` overlapped
/// by a `Jam`, or a data cell read during its write).
///
/// Violations do not stop the run; tests assert the list is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Logical clock at detection.
    pub clock: u64,
    /// The processor whose operation detected the overlap.
    pub pid: Pid,
    /// Register kind ("sticky", "sticky_word", "tas", "data").
    pub object: &'static str,
    /// Register index within its kind.
    pub index: usize,
    /// Short description of the overlap.
    pub what: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[clock {}] {} on {}[{}]: {}",
            self.clock, self.pid, self.object, self.index, self.what
        )
    }
}

/// Lifecycle of a simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Executing local code between scheduling points (or not yet started).
    Busy,
    /// Parked at a scheduling point, awaiting a grant.
    Waiting,
    /// Returned from its closure.
    Done,
    /// Fail-stopped (by the adversary, the step-limit abort, or a fatal
    /// panic in algorithm code).
    Crashed,
}

/// Panic payload used to unwind a crashed processor's stack.
pub(crate) struct CrashSignal;

/// A safe word register with read/write windows.
#[derive(Debug, Default)]
pub(crate) struct SafeCell {
    value: Word,
    /// Active write windows: (writer, pending value).
    writers: Vec<(Pid, Word)>,
    /// Set once two write windows overlap; cleared when the last ends.
    write_race: bool,
    /// Pending values of all writers that participated in the current race.
    /// If they all agree the race resolves to that value (writing identical
    /// bit patterns concurrently is physically harmless); otherwise the
    /// adversary fabricates the result.
    race_values: Vec<Word>,
    /// Active read windows: (reader, dirtied).
    readers: Vec<(Pid, bool)>,
}

/// A sticky bit with a flush window.
#[derive(Debug, Default)]
pub(crate) struct StickyCell {
    value: Tri,
    flusher: Option<Pid>,
}

/// A sticky word with a flush window.
#[derive(Debug, Default)]
pub(crate) struct StickyWordCell {
    value: Option<Word>,
    flusher: Option<Pid>,
}

/// A test-and-set bit with a reset window.
#[derive(Debug, Default)]
pub(crate) struct TasCell {
    value: bool,
    resetter: Option<Pid>,
}

/// A data cell (payload-carrying safe register) with read/write windows.
#[derive(Debug)]
pub(crate) struct DataCell<P> {
    value: Option<P>,
    writers: Vec<(Pid, Option<P>)>,
    write_race: bool,
    readers: Vec<(Pid, bool)>,
}

impl<P> Default for DataCell<P> {
    fn default() -> Self {
        Self {
            value: None,
            writers: Vec::new(),
            write_race: false,
            readers: Vec::new(),
        }
    }
}

/// Everything behind the conductor's mutex.
pub(crate) struct SimState<P> {
    pub n_procs: usize,
    pub statuses: Vec<Status>,
    /// Processor currently allowed to take one step.
    pub granted: Option<Pid>,
    /// The grant is a crash order.
    pub crash_granted: bool,
    /// Step-limit abort in progress: all parked processors must unwind.
    pub aborting: bool,
    /// `true` while `runner::run` is driving; otherwise operations execute
    /// inline (setup/inspection mode).
    pub running: bool,
    /// Scheduled steps taken.
    pub step: u64,
    /// Logical clock: increments on *every* effect, including setup-mode.
    pub clock: u64,
    pub steps_per_proc: Vec<u64>,
    pub policy: Box<dyn Adversary>,
    pub violations: Vec<Violation>,
    /// Per-step access records, aligned 1:1 with the adversary's choice log
    /// (only filled while `running`).
    pub access_log: Vec<StepAccess>,
    /// Number of adversary-fabricated words drawn so far. The step wrapper
    /// snapshots this around each effect: a step that consumed a corrupt
    /// word advanced shared adversary state and is recorded as a
    /// [`LocId::Global`] access.
    pub corrupt_draws: u64,

    pub safes: Vec<SafeCell>,
    pub atomics: Vec<Word>,
    pub stickies: Vec<StickyCell>,
    pub sticky_words: Vec<StickyWordCell>,
    pub tas_bits: Vec<TasCell>,
    pub data: Vec<DataCell<P>>,
}

impl<P: Clone> SimState<P> {
    pub fn new(n_procs: usize, policy: Box<dyn Adversary>) -> Self {
        Self {
            n_procs,
            statuses: vec![Status::Busy; n_procs],
            granted: None,
            crash_granted: false,
            aborting: false,
            running: false,
            step: 0,
            clock: 0,
            steps_per_proc: vec![0; n_procs],
            policy,
            violations: Vec::new(),
            access_log: Vec::new(),
            corrupt_draws: 0,
            safes: Vec::new(),
            atomics: Vec::new(),
            stickies: Vec::new(),
            sticky_words: Vec::new(),
            tas_bits: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Draw an adversary-fabricated word, counting the draw so the step
    /// wrapper can mark the consuming step as a global access.
    fn corrupt(&mut self) -> Word {
        self.corrupt_draws += 1;
        self.policy.corrupt_word(self.clock)
    }

    fn violation(&mut self, pid: Pid, object: &'static str, index: usize, what: &'static str) {
        self.violations.push(Violation {
            clock: self.clock,
            pid,
            object,
            index,
            what,
        });
    }

    /// Close every window a crashed processor left open (fail-stop
    /// semantics): an interrupted write leaves the register holding an
    /// *arbitrary but fixed* value — a dead processor cannot keep
    /// corrupting reads forever. Interrupted flushes/resets complete (the
    /// half-reset object is unreachable anyway under the GRAB protocol,
    /// but a defined value keeps the model crisp). Read windows vanish.
    pub fn close_windows(&mut self, pid: Pid) {
        for ix in 0..self.safes.len() {
            self.safes[ix].readers.retain(|&(p, _)| p != pid);
            if self.safes[ix].writers.iter().any(|&(p, _)| p == pid) {
                // The interrupted write leaves the register arbitrary —
                // old value, new value, or garbage. The adversary picks,
                // once; the value is fixed thereafter.
                let settled = self.corrupt();
                let cell = &mut self.safes[ix];
                cell.writers.retain(|&(p, _)| p != pid);
                if cell.writers.is_empty() {
                    cell.value = settled;
                    cell.write_race = false;
                    cell.race_values.clear();
                }
            }
        }
        for cell in &mut self.data {
            cell.readers.retain(|&(p, _)| p != pid);
            if let Some(pos) = cell.writers.iter().position(|(p, _)| *p == pid) {
                let (_, pending) = cell.writers.remove(pos);
                if cell.writers.is_empty() {
                    // We cannot fabricate a payload; model the interrupted
                    // write as having taken effect.
                    cell.value = pending;
                    cell.write_race = false;
                }
            }
        }
        for cell in &mut self.stickies {
            if cell.flusher == Some(pid) {
                cell.value = Tri::Undef;
                cell.flusher = None;
            }
        }
        for cell in &mut self.sticky_words {
            if cell.flusher == Some(pid) {
                cell.value = None;
                cell.flusher = None;
            }
        }
        for cell in &mut self.tas_bits {
            if cell.resetter == Some(pid) {
                cell.value = false;
                cell.resetter = None;
            }
        }
    }

    // ----- safe registers (two-phase) -------------------------------------

    pub fn safe_write_begin(&mut self, pid: Pid, ix: usize, v: Word) {
        let cell = &mut self.safes[ix];
        if !cell.writers.is_empty() {
            if !cell.write_race {
                cell.write_race = true;
                cell.race_values
                    .extend(cell.writers.iter().map(|&(_, w)| w));
            }
            cell.race_values.push(v);
        }
        for r in &mut cell.readers {
            r.1 = true;
        }
        cell.writers.push((pid, v));
    }

    pub fn safe_write_end(&mut self, pid: Pid, ix: usize) {
        let race_disagrees = {
            let cell = &self.safes[ix];
            cell.write_race && cell.race_values.windows(2).any(|w| w[0] != w[1])
        };
        let corrupt = if race_disagrees {
            Some(self.corrupt())
        } else {
            None
        };
        let cell = &mut self.safes[ix];
        let pos = cell
            .writers
            .iter()
            .position(|&(p, _)| p == pid)
            .expect("write window must be open");
        let (_, pending) = cell.writers.remove(pos);
        if cell.write_race {
            if cell.writers.is_empty() {
                cell.value = match corrupt {
                    Some(w) => w,
                    None => cell.race_values[0],
                };
                cell.write_race = false;
                cell.race_values.clear();
            }
            // else: leave resolution to the last racing writer.
        } else {
            cell.value = pending;
        }
    }

    pub fn safe_read_begin(&mut self, pid: Pid, ix: usize) {
        let cell = &mut self.safes[ix];
        let dirty = !cell.writers.is_empty();
        cell.readers.push((pid, dirty));
    }

    pub fn safe_read_end(&mut self, pid: Pid, ix: usize) -> Word {
        let dirty = {
            let cell = &mut self.safes[ix];
            let pos = cell
                .readers
                .iter()
                .position(|&(p, _)| p == pid)
                .expect("read window must be open");
            let (_, dirty) = cell.readers.remove(pos);
            dirty
        };
        if dirty {
            self.corrupt()
        } else {
            self.safes[ix].value
        }
    }

    // ----- atomic registers (single-phase) ---------------------------------

    pub fn atomic_read(&mut self, ix: usize) -> Word {
        self.atomics[ix]
    }

    pub fn atomic_write(&mut self, ix: usize, v: Word) {
        self.atomics[ix] = v;
    }

    pub fn atomic_rmw(&mut self, ix: usize, f: &dyn Fn(Word) -> Word) -> Word {
        let old = self.atomics[ix];
        self.atomics[ix] = f(old);
        old
    }

    // ----- sticky bits ------------------------------------------------------

    pub fn sticky_jam(&mut self, pid: Pid, ix: usize, bit: bool) -> JamOutcome {
        if self.stickies[ix].flusher.is_some() {
            self.violation(pid, "sticky", ix, "jam during flush");
        }
        let v = Tri::from_bit(bit);
        let cell = &mut self.stickies[ix];
        if cell.value == Tri::Undef || cell.value == v {
            cell.value = v;
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        }
    }

    pub fn sticky_read(&mut self, pid: Pid, ix: usize) -> Tri {
        if self.stickies[ix].flusher.is_some() {
            self.violation(pid, "sticky", ix, "read during flush");
        }
        self.stickies[ix].value
    }

    pub fn sticky_flush_begin(&mut self, pid: Pid, ix: usize) {
        if self.stickies[ix].flusher.is_some() {
            self.violation(pid, "sticky", ix, "flush during flush");
        }
        self.stickies[ix].flusher = Some(pid);
    }

    pub fn sticky_flush_end(&mut self, _pid: Pid, ix: usize) {
        let cell = &mut self.stickies[ix];
        cell.value = Tri::Undef;
        cell.flusher = None;
    }

    // ----- sticky words -----------------------------------------------------

    pub fn sticky_word_jam(&mut self, pid: Pid, ix: usize, v: Word) -> JamOutcome {
        if self.sticky_words[ix].flusher.is_some() {
            self.violation(pid, "sticky_word", ix, "jam during flush");
        }
        let cell = &mut self.sticky_words[ix];
        match cell.value {
            None => {
                cell.value = Some(v);
                JamOutcome::Success
            }
            Some(cur) if cur == v => JamOutcome::Success,
            Some(_) => JamOutcome::Fail,
        }
    }

    pub fn sticky_word_read(&mut self, pid: Pid, ix: usize) -> Option<Word> {
        if self.sticky_words[ix].flusher.is_some() {
            self.violation(pid, "sticky_word", ix, "read during flush");
        }
        self.sticky_words[ix].value
    }

    pub fn sticky_word_flush_begin(&mut self, pid: Pid, ix: usize) {
        if self.sticky_words[ix].flusher.is_some() {
            self.violation(pid, "sticky_word", ix, "flush during flush");
        }
        self.sticky_words[ix].flusher = Some(pid);
    }

    pub fn sticky_word_flush_end(&mut self, _pid: Pid, ix: usize) {
        let cell = &mut self.sticky_words[ix];
        cell.value = None;
        cell.flusher = None;
    }

    // ----- test-and-set -----------------------------------------------------

    pub fn tas_test_and_set(&mut self, pid: Pid, ix: usize) -> bool {
        if self.tas_bits[ix].resetter.is_some() {
            self.violation(pid, "tas", ix, "test-and-set during reset");
        }
        let cell = &mut self.tas_bits[ix];
        let old = cell.value;
        cell.value = true;
        old
    }

    pub fn tas_read(&mut self, pid: Pid, ix: usize) -> bool {
        if self.tas_bits[ix].resetter.is_some() {
            self.violation(pid, "tas", ix, "read during reset");
        }
        self.tas_bits[ix].value
    }

    pub fn tas_reset_begin(&mut self, pid: Pid, ix: usize) {
        if self.tas_bits[ix].resetter.is_some() {
            self.violation(pid, "tas", ix, "reset during reset");
        }
        self.tas_bits[ix].resetter = Some(pid);
    }

    pub fn tas_reset_end(&mut self, _pid: Pid, ix: usize) {
        let cell = &mut self.tas_bits[ix];
        cell.value = false;
        cell.resetter = None;
    }

    // ----- data cells (two-phase, monitored) --------------------------------

    pub fn data_write_begin(&mut self, pid: Pid, ix: usize, v: Option<P>) {
        if !self.data[ix].writers.is_empty() {
            self.violation(pid, "data", ix, "write during write");
            self.data[ix].write_race = true;
        }
        for r in &mut self.data[ix].readers {
            r.1 = true;
        }
        self.data[ix].writers.push((pid, v));
    }

    pub fn data_write_end(&mut self, pid: Pid, ix: usize) {
        let cell = &mut self.data[ix];
        let pos = cell
            .writers
            .iter()
            .position(|(p, _)| *p == pid)
            .expect("write window must be open");
        let (_, pending) = cell.writers.remove(pos);
        // Unlike safe words we cannot fabricate a payload; last finisher
        // wins, and the violation above is what tests key on.
        cell.value = pending;
        if cell.writers.is_empty() {
            cell.write_race = false;
        }
    }

    pub fn data_read_begin(&mut self, pid: Pid, ix: usize) {
        let dirty = !self.data[ix].writers.is_empty();
        self.data[ix].readers.push((pid, dirty));
    }

    pub fn data_read_end(&mut self, pid: Pid, ix: usize) -> Option<P> {
        let cell = &mut self.data[ix];
        let pos = cell
            .readers
            .iter()
            .position(|(p, _)| *p == pid)
            .expect("read window must be open");
        let (_, dirty) = cell.readers.remove(pos);
        if dirty {
            // The violation was recorded at begin (or by the writer); the
            // reader sees the current (possibly torn-in-spirit) value.
            self.violations.push(Violation {
                clock: self.clock,
                pid,
                object: "data",
                index: ix,
                what: "read overlapped a write",
            });
        }
        cell.value.clone()
    }
}

/// The conductor: state plus the two rendezvous condvars.
pub(crate) struct SimCore<P> {
    pub state: Mutex<SimState<P>>,
    /// Workers wait here for their grant.
    pub worker_cv: Condvar,
    /// The scheduler waits here for workers to park, finish, or consume a
    /// grant.
    pub sched_cv: Condvar,
}

impl<P: Clone> SimCore<P> {
    pub fn new(n_procs: usize, policy: Box<dyn Adversary>) -> Self {
        Self {
            state: Mutex::new(SimState::new(n_procs, policy)),
            worker_cv: Condvar::new(),
            sched_cv: Condvar::new(),
        }
    }
}

#[cfg(test)]
mod violation_tests {
    use super::*;

    #[test]
    fn violation_displays_context() {
        let v = Violation {
            clock: 42,
            pid: Pid(1),
            object: "sticky",
            index: 7,
            what: "jam during flush",
        };
        let s = v.to_string();
        assert!(s.contains("42") && s.contains("p1") && s.contains("sticky[7]"));
        assert!(s.contains("jam during flush"));
    }

    #[test]
    fn choice_point_equality() {
        let a = ChoicePoint {
            options: 3,
            chosen: 1,
            enabled: 0b111,
            crash_allowed: false,
        };
        assert_eq!(
            a,
            ChoicePoint {
                options: 3,
                chosen: 1,
                enabled: 0b111,
                crash_allowed: false,
            }
        );
        assert_ne!(
            a,
            ChoicePoint {
                options: 3,
                chosen: 2,
                enabled: 0b111,
                crash_allowed: false,
            }
        );
    }

    #[test]
    fn choice_point_decodes_options_to_pids() {
        // Enabled pids {0, 2, 5}, with crash branches: 6 options.
        let cp = ChoicePoint {
            options: 6,
            chosen: 0,
            enabled: 0b100101,
            crash_allowed: true,
        };
        assert_eq!(cp.num_enabled(), 3);
        assert_eq!(cp.decode(0), (0, false));
        assert_eq!(cp.decode(1), (2, false));
        assert_eq!(cp.decode(2), (5, false));
        assert_eq!(cp.decode(3), (0, true));
        assert_eq!(cp.decode(5), (5, true));
        // encode is the inverse on valid inputs.
        for opt in 0..6 {
            let (pid, crash) = cp.decode(opt);
            assert_eq!(cp.encode(pid, crash), Some(opt));
        }
        assert_eq!(cp.encode(1, false), None, "pid 1 is not enabled");
    }

    #[test]
    fn choice_point_encode_rejects_crash_when_disallowed() {
        let cp = ChoicePoint {
            options: 2,
            chosen: 0,
            enabled: 0b11,
            crash_allowed: false,
        };
        assert_eq!(cp.encode(1, false), Some(1));
        assert_eq!(cp.encode(1, true), None);
    }

    #[test]
    fn step_access_dependence_relation() {
        use sbu_mem::AccessKind::{Read, Write};
        let acc = |pid: usize, loc: LocId, kind| StepAccess {
            pid: Pid(pid),
            loc,
            kind,
        };
        // Same pid: always dependent, even on disjoint locations.
        assert!(acc(0, LocId::Atomic(0), Read).dependent(&acc(0, LocId::Atomic(1), Read)));
        // Different pids, disjoint locations: independent.
        assert!(!acc(0, LocId::Atomic(0), Write).dependent(&acc(1, LocId::Atomic(1), Write)));
        // Same location: dependent iff a write is involved.
        assert!(acc(0, LocId::StickyBit(3), Write).dependent(&acc(1, LocId::StickyBit(3), Read)));
        assert!(!acc(0, LocId::Safe(2), Read).dependent(&acc(1, LocId::Safe(2), Read)));
        // Clock steps conflict with each other but not with memory steps.
        assert!(acc(0, LocId::Clock, Write).dependent(&acc(1, LocId::Clock, Write)));
        assert!(!acc(0, LocId::Clock, Write).dependent(&acc(1, LocId::Atomic(0), Write)));
        // Global effects conflict with everything.
        assert!(acc(0, LocId::Global, Write).dependent(&acc(1, LocId::Safe(9), Read)));
        // Fences conflict with persistent-location writes (either order)…
        assert!(acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::StickyBit(4), Write)));
        assert!(acc(1, LocId::Tas(0), Write).dependent(&acc(0, LocId::Fence(0), Write)));
        assert!(acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Data(1), Write)));
        // …but commute with reads, volatile accesses, clocks, and each other.
        assert!(!acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::StickyBit(4), Read)));
        assert!(!acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Safe(0), Write)));
        assert!(!acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Atomic(0), Write)));
        assert!(!acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Clock, Write)));
        assert!(!acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Fence(1), Write)));
        // Crashes are Global, so a fence never commutes past one.
        assert!(acc(0, LocId::Fence(0), Write).dependent(&acc(1, LocId::Global, Write)));
    }
}
