//! # sbu-sim — deterministic adversarial simulation of shared memory
//!
//! The paper's correctness claims quantify over *all* interleavings of an
//! asynchronous shared-memory multiprocessor with fail-stop processors, and
//! over *arbitrary* values returned by safe registers under overlap. This
//! crate makes that adversary executable:
//!
//! * [`SimMem`] implements the `sbu-mem` backend traits on top of a
//!   **conductor**: every primitive memory operation is a scheduling point
//!   at which a single processor, chosen by an [`adversary::Adversary`]
//!   policy, takes one atomic step. Safe-register reads and writes occupy
//!   *two* points (begin/commit) so genuinely overlapping accesses exist and
//!   yield adversary-fabricated words, exactly per Lamport's definition.
//! * Non-atomic operations (`Flush` on sticky bits/words, TAS reset, data
//!   cells read during a write) are **monitored**: an overlap the protocol
//!   was supposed to prevent is recorded as a [`Violation`], failing tests.
//! * The adversary can **crash** processors at any scheduling point
//!   (fail-stop); the run continues, letting wait-freedom be observed rather
//!   than assumed. Per-processor step counts support the paper's complexity
//!   accounting (Theorem 6.6, Section 6.4).
//! * [`runner::run`] executes a set of processor closures to completion
//!   under a policy and returns results, step counts, violations and the
//!   recorded choice log.
//! * [`explore::Explorer`] enumerates *every* schedule of a small system
//!   (optionally with every ≤ k crash placement) by scripted replay — a
//!   stateless model checker standing in for the paper's case analyses.
//!   [`adversary::Scripted::with_preemption_bound`] adds CHESS-style
//!   context-switch bounding, shrinking the tree enough to exhaust every
//!   ≤ k-preemption schedule of even the full universal construction.
//! * [`recorder::HistoryRecorder`] assembles typed
//!   [`sbu_spec::history::History`] values (with conductor timestamps) for
//!   the linearizability checker.
//!
//! Determinism: workers advance in lockstep — the conductor waits until
//! every live processor is parked at its next scheduling point before
//! consulting the policy — so the policy's decisions fully determine the
//! execution, independent of OS thread timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod corpus;
pub mod explore;
pub mod mem;
pub mod recorder;
pub mod runner;
mod state;

pub use adversary::{Adversary, CrashPlan, Decision, RandomAdversary, RoundRobin, Scripted};
pub use corpus::{load_corpus, replay_corpus, CorpusReport, ScheduleCase};
pub use explore::{minimize_script, EpisodeResult, ExploreReport, Explorer};
pub use mem::SimMem;
pub use recorder::HistoryRecorder;
pub use runner::{run, run_uniform, ProcOutcome, RunOptions, RunOutcome};
pub use state::{ChoicePoint, StepAccess, Violation};
