//! Executing a set of processor closures under the conductor.

use crate::adversary::{Adversary, Decision};
use crate::mem::SimMem;
use crate::state::{ChoicePoint, CrashSignal, Status, StepAccess, Violation};
use sbu_mem::Pid;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Options for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Abort the run (crashing all processors) after this many scheduled
    /// steps. Guards against non-wait-free algorithms live-locking the
    /// conductor; wait-free code never comes close.
    pub max_steps: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_steps: 2_000_000,
        }
    }
}

/// Per-processor result of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcOutcome<T> {
    /// The closure returned normally.
    Completed(T),
    /// The processor was fail-stopped (by the adversary or the step-limit
    /// abort).
    Crashed,
}

impl<T> ProcOutcome<T> {
    /// The returned value, if completed.
    pub fn completed(&self) -> Option<&T> {
        match self {
            ProcOutcome::Completed(v) => Some(v),
            ProcOutcome::Crashed => None,
        }
    }

    /// Whether the processor crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, ProcOutcome::Crashed)
    }
}

/// Everything observed during a run.
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// Per-processor results, indexed by pid.
    pub outcomes: Vec<ProcOutcome<T>>,
    /// Total scheduled steps.
    pub steps: u64,
    /// Scheduled steps per processor.
    pub steps_per_proc: Vec<u64>,
    /// Monitored non-atomicity violations (should be empty for a correct
    /// protocol).
    pub violations: Vec<Violation>,
    /// The run hit `max_steps` and was aborted.
    pub aborted: bool,
    /// The adversary's recorded choice log (empty unless it keeps one, e.g.
    /// [`crate::adversary::Scripted`]).
    pub choice_log: Vec<ChoicePoint>,
    /// Per-step memory accesses, aligned 1:1 with the scheduling decisions
    /// (entry `i` is the access performed under grant `i`; crash grants
    /// record a global write). Consumed by the DPOR explorer's independence
    /// analysis.
    pub access_log: Vec<StepAccess>,
}

impl<T> RunOutcome<T> {
    /// Number of processors that completed.
    pub fn completed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !matches!(o, ProcOutcome::Crashed))
            .count()
    }

    /// Number of processors that crashed.
    pub fn crashed_count(&self) -> usize {
        self.outcomes.len() - self.completed_count()
    }

    /// The completed results, in pid order.
    pub fn results(&self) -> Vec<&T> {
        self.outcomes.iter().filter_map(|o| o.completed()).collect()
    }

    /// Panic if the run aborted or recorded any violation. The standard
    /// postcondition for correct wait-free protocols.
    pub fn assert_clean(&self) {
        assert!(!self.aborted, "run aborted at step limit");
        assert!(
            self.violations.is_empty(),
            "non-atomicity violations: {:?}",
            self.violations
        );
    }
}

static QUIET_CRASH_HOOK: Once = Once::new();

/// Suppress panic-hook output for the conductor's own crash-unwind signal
/// while leaving genuine panics visible.
fn install_quiet_crash_hook() {
    QUIET_CRASH_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Run one closure per processor to completion under `adversary`.
///
/// Each closure receives the shared memory and its [`Pid`]; every primitive
/// memory operation inside it becomes one or two scheduling points. The
/// function returns when every processor has completed or crashed.
///
/// ```
/// use sbu_sim::{run_uniform, RandomAdversary, RunOptions, SimMem};
/// use sbu_mem::{Pid, WordMem};
///
/// let mut mem: SimMem<()> = SimMem::new(2);
/// let reg = mem.alloc_atomic(0);
/// let out = run_uniform(
///     &mem,
///     Box::new(RandomAdversary::new(7)),
///     RunOptions::default(),
///     2,
///     |mem, pid| mem.rmw(pid, reg, &|x| x + 1),
/// );
/// out.assert_clean();
/// assert_eq!(mem.atomic_read(Pid(0), reg), 2);
/// ```
///
/// # Panics
///
/// Panics if `procs.len()` differs from the memory's processor count, or —
/// re-raised on the caller's thread — if a closure panics with anything
/// other than the conductor's crash signal (i.e. a genuine bug).
pub fn run<P, T, F>(
    mem: &SimMem<P>,
    adversary: Box<dyn Adversary>,
    opts: RunOptions,
    procs: Vec<F>,
) -> RunOutcome<T>
where
    P: Clone + Send + Sync,
    T: Send,
    F: FnOnce(&SimMem<P>, Pid) -> T + Send,
{
    install_quiet_crash_hook();
    let n = procs.len();
    assert_eq!(
        n,
        mem.n_procs(),
        "one closure per configured processor is required"
    );

    // Reset per-run bookkeeping and install the adversary.
    {
        let core = mem.core();
        let mut st = core.state.lock();
        assert!(!st.running, "memory is already being driven by a run");
        st.statuses = vec![Status::Busy; n];
        st.granted = None;
        st.crash_granted = false;
        st.aborting = false;
        st.step = 0;
        st.steps_per_proc = vec![0; n];
        st.violations.clear();
        st.access_log.clear();
        st.corrupt_draws = 0;
        st.policy = adversary;
        st.running = true;
    }

    let fatals: parking_lot::Mutex<Vec<Box<dyn std::any::Any + Send>>> =
        parking_lot::Mutex::new(Vec::new());

    let results: Vec<Option<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = procs
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let mem2 = mem.clone();
                let fatals = &fatals;
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(&mem2, Pid(i))));
                    let core = mem2.core();
                    let mut st = core.state.lock();
                    match out {
                        Ok(v) => {
                            st.statuses[i] = Status::Done;
                            core.sched_cv.notify_all();
                            Some(v)
                        }
                        Err(payload) => {
                            st.statuses[i] = Status::Crashed;
                            st.close_windows(Pid(i));
                            core.sched_cv.notify_all();
                            drop(st);
                            if !payload.is::<CrashSignal>() {
                                fatals.lock().push(payload);
                            }
                            None
                        }
                    }
                })
            })
            .collect();

        scheduler_loop(mem, &opts);

        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    let core = mem.core();
    let mut st = core.state.lock();
    st.running = false;
    if let Some(payload) = fatals.into_inner().into_iter().next() {
        drop(st);
        resume_unwind(payload);
    }
    let choice_log = st.policy.take_choice_log();
    let access_log = std::mem::take(&mut st.access_log);
    debug_assert!(
        choice_log.is_empty() || choice_log.len() == access_log.len(),
        "choice log ({}) and access log ({}) must stay aligned",
        choice_log.len(),
        access_log.len()
    );
    RunOutcome {
        outcomes: results
            .into_iter()
            .map(|r| match r {
                Some(v) => ProcOutcome::Completed(v),
                None => ProcOutcome::Crashed,
            })
            .collect(),
        steps: st.step,
        steps_per_proc: st.steps_per_proc.clone(),
        violations: st.violations.clone(),
        aborted: st.aborting,
        choice_log,
        access_log,
    }
}

/// Run the same closure on `n` processors (branch on pid inside for
/// asymmetric behaviour).
pub fn run_uniform<P, T, F>(
    mem: &SimMem<P>,
    adversary: Box<dyn Adversary>,
    opts: RunOptions,
    n: usize,
    f: F,
) -> RunOutcome<T>
where
    P: Clone + Send + Sync,
    T: Send,
    F: Fn(&SimMem<P>, Pid) -> T + Sync,
{
    let f = &f;
    run(
        mem,
        adversary,
        opts,
        (0..n)
            .map(|_| move |mem: &SimMem<P>, pid: Pid| f(mem, pid))
            .collect(),
    )
}

fn scheduler_loop<P: Clone + Send + Sync>(mem: &SimMem<P>, opts: &RunOptions) {
    let core = mem.core();
    let mut st = core.state.lock();
    loop {
        // Lockstep: wait until no processor is computing between points.
        while st.statuses.iter().any(|s| matches!(s, Status::Busy)) {
            core.sched_cv.wait(&mut st);
        }
        let waiting: Vec<Pid> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Waiting))
            .map(|(i, _)| Pid(i))
            .collect();
        if waiting.is_empty() {
            break; // all done or crashed
        }
        if st.step >= opts.max_steps {
            st.aborting = true;
            core.worker_cv.notify_all();
            while st
                .statuses
                .iter()
                .any(|s| matches!(s, Status::Busy | Status::Waiting))
            {
                core.sched_cv.wait(&mut st);
            }
            break;
        }
        let step = st.step;
        let decision = st.policy.decide(&waiting, step);
        let (index, crash) = match decision {
            Decision::Step(i) => (i, false),
            Decision::Crash(i) => (i, true),
        };
        assert!(index < waiting.len(), "adversary chose out of range");
        st.granted = Some(waiting[index]);
        st.crash_granted = crash;
        core.worker_cv.notify_all();
        // Wait for the grant to be consumed.
        loop {
            match st.granted {
                None => break,
                Some(g) if matches!(st.statuses[g.0], Status::Crashed | Status::Done) => {
                    st.granted = None;
                    break;
                }
                Some(_) => core.sched_cv.wait(&mut st),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashPlan, RandomAdversary, RoundRobin, Scripted};
    use sbu_mem::WordMem;

    #[test]
    fn two_incrementers_always_sum_to_two() {
        for seed in 0..20 {
            let mut mem: SimMem<()> = SimMem::new(2);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                2,
                |mem, pid| mem.rmw(pid, a, &|x| x + 1),
            );
            out.assert_clean();
            assert_eq!(out.completed_count(), 2);
            assert_eq!(mem.atomic_read(Pid(0), a), 2);
            // rmw returns old values: {0, 1} in some order.
            let mut olds: Vec<u64> = out.results().into_iter().copied().collect();
            olds.sort_unstable();
            assert_eq!(olds, vec![0, 1]);
        }
    }

    #[test]
    fn deterministic_replay_per_seed() {
        let episode = |seed: u64| {
            let mut mem: SimMem<()> = SimMem::new(3);
            let a = mem.alloc_atomic(0);
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                3,
                |mem, pid| {
                    let old = mem.rmw(pid, a, &|x| x * 3 + 1);
                    let v = mem.atomic_read(pid, a);
                    (old, v)
                },
            );
            (
                out.steps,
                out.results().into_iter().copied().collect::<Vec<_>>(),
            )
        };
        assert_eq!(episode(42), episode(42));
    }

    #[test]
    fn crash_plan_kills_victim_and_survivor_finishes() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let out = run_uniform(
            &mem,
            Box::new(CrashPlan::new(vec![(Pid(1), 0)], RoundRobin::new())),
            RunOptions::default(),
            2,
            |mem, pid| {
                for _ in 0..10 {
                    mem.rmw(pid, a, &|x| x + 1);
                }
            },
        );
        assert!(out.outcomes[1].is_crashed());
        assert_eq!(out.completed_count(), 1);
        assert_eq!(mem.atomic_read(Pid(0), a), 10);
        assert!(!out.aborted);
    }

    #[test]
    fn step_limit_aborts_busy_wait() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let flag = mem.alloc_atomic(0);
        let out = run_uniform(
            &mem,
            // Adversary only ever runs pid 0, which spins on a flag pid 1
            // would set: a busy-wait implementation is not wait-free.
            Box::new(Scripted::new(vec![0; 4096])),
            RunOptions { max_steps: 500 },
            2,
            |mem, pid| {
                if pid.0 == 0 {
                    while mem.atomic_read(pid, flag) == 0 {}
                } else {
                    mem.atomic_write(pid, flag, 1);
                }
            },
        );
        assert!(out.aborted);
        assert_eq!(out.completed_count(), 0);
    }

    #[test]
    fn safe_read_overlapping_write_returns_adversary_word() {
        // pid 1 writes (two points); pid 0 reads in between.
        // Schedule: grant 1 (write begin), grant 0 (read begin),
        //           grant 0 (read end — dirty), grant 1 (write end).
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(7);
        let out = run(
            &mem,
            Box::new(Scripted::new(vec![1, 0, 0, 0]).with_corrupt_palette(vec![999])),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| mem.safe_read(pid, s) as i64)
                    as Box<dyn FnOnce(&SimMem<()>, Pid) -> i64 + Send>,
                Box::new(move |mem: &SimMem<()>, pid: Pid| {
                    mem.safe_write(pid, s, 8);
                    -1
                }),
            ],
        );
        out.assert_clean();
        let read_value = out.outcomes[0].completed().copied().unwrap();
        assert_eq!(read_value, 999, "overlapped safe read must be corrupt");
        // After the run the register holds the written value.
        assert_eq!(mem.safe_read(Pid(0), s), 8);
    }

    #[test]
    fn non_overlapping_safe_ops_are_exact() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(7);
        // Default script (all zeros): p0 takes both write phases, finishes,
        // then p1 reads — fully sequential, so the read is exact.
        let out = run(
            &mem,
            Box::new(Scripted::new(vec![]).with_corrupt_palette(vec![999])),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.safe_write(pid, s, 8);
                    0u64
                }) as Box<dyn FnOnce(&SimMem<()>, Pid) -> u64 + Send>,
                Box::new(|mem: &SimMem<()>, pid: Pid| mem.safe_read(pid, s)),
            ],
        );
        out.assert_clean();
        let seen = out.outcomes[1].completed().copied().unwrap();
        assert_eq!(seen, 8, "a read not concurrent with any write is exact");
    }

    #[test]
    fn sticky_flush_overlap_is_flagged() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_sticky_bit();
        // pid 0 flushes (two points); pid 1 jams in between:
        // grants: p0 (flush begin), p1 (jam -> violation), p0 (flush end).
        let out = run(
            &mem,
            Box::new(Scripted::new(vec![0, 1, 0])),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.sticky_flush(pid, s);
                }) as Box<dyn FnOnce(&SimMem<()>, Pid) + Send>,
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.sticky_jam(pid, s, true);
                }),
            ],
        );
        assert!(
            out.violations.iter().any(|v| v.object == "sticky"),
            "expected a sticky flush-overlap violation, got {:?}",
            out.violations
        );
    }

    #[test]
    fn genuine_panic_in_algorithm_code_propagates() {
        let mut mem: SimMem<()> = SimMem::new(1);
        let a = mem.alloc_atomic(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_uniform(
                &mem,
                Box::new(RoundRobin::new()),
                RunOptions::default(),
                1,
                |mem, pid| {
                    mem.atomic_read(pid, a);
                    panic!("algorithm bug");
                },
            )
        }));
        assert!(result.is_err(), "the bug must surface to the caller");
        // The memory is reusable afterwards (running flag was reset).
        assert_eq!(mem.atomic_read(Pid(0), a), 0);
    }

    #[test]
    fn steps_are_attributed_per_processor() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let a = mem.alloc_atomic(0);
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions::default(),
            2,
            |mem, pid| {
                for _ in 0..pid.0 + 1 {
                    mem.atomic_write(pid, a, 1);
                }
            },
        );
        out.assert_clean();
        assert_eq!(out.steps_per_proc[0], 1);
        assert_eq!(out.steps_per_proc[1], 2);
        assert_eq!(out.steps, 3);
    }
}

#[cfg(test)]
mod crash_window_tests {
    use super::*;
    use crate::adversary::Scripted;
    use crate::mem::SimMem;
    use sbu_mem::{Pid, WordMem};

    /// A processor crashing mid-write leaves the register holding an
    /// arbitrary but **fixed** value: two subsequent non-overlapping reads
    /// agree (a dead processor cannot keep corrupting reads).
    #[test]
    fn crashed_write_settles_to_a_fixed_value() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(7);
        // Script: p0 write-begin (index 0), crash p0 (index 2 + 0 with two
        // waiting, crash half), then p1 reads twice (defaults).
        let out = run(
            &mem,
            Box::new(Scripted::new(vec![0, 2]).with_crashes(1)),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.safe_write(pid, s, 8);
                    (0u64, 0u64)
                }) as Box<dyn FnOnce(&SimMem<()>, Pid) -> (u64, u64) + Send>,
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    (mem.safe_read(pid, s), mem.safe_read(pid, s))
                }),
            ],
        );
        assert!(out.outcomes[0].is_crashed());
        let (r1, r2) = out.outcomes[1].completed().copied().unwrap();
        assert_eq!(r1, r2, "the settled value must be stable");
        // And it stays stable after the run.
        assert_eq!(mem.safe_read(Pid(0), s), r1);
    }

    /// A processor crashing mid-flush completes the flush (the object
    /// settles to ⊥ with the window closed): later operations see a
    /// defined state and raise no violations.
    #[test]
    fn crashed_flush_settles_and_unblocks() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let sb = mem.alloc_sticky_bit();
        mem.sticky_jam(Pid(0), sb, true);
        // p0: flush (2 phases); crash after phase 1. p1 then jams.
        let out = run(
            &mem,
            Box::new(Scripted::new(vec![0, 2]).with_crashes(1)),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.sticky_flush(pid, sb);
                }) as Box<dyn FnOnce(&SimMem<()>, Pid) + Send>,
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.sticky_jam(pid, sb, false);
                }),
            ],
        );
        assert!(out.outcomes[0].is_crashed());
        assert!(
            out.violations.is_empty(),
            "the closed flush window must not flag the later jam: {:?}",
            out.violations
        );
        assert_eq!(mem.sticky_read(Pid(1), sb), sbu_mem::Tri::Zero);
    }

    /// Crashed readers simply vanish: their open read windows do not
    /// corrupt the register for anyone else.
    #[test]
    fn crashed_read_window_vanishes() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(5);
        let out = run(
            &mem,
            // p0 read-begin, crash p0; p1 writes then reads.
            Box::new(Scripted::new(vec![0, 2]).with_crashes(1)),
            RunOptions::default(),
            vec![
                Box::new(|mem: &SimMem<()>, pid: Pid| mem.safe_read(pid, s))
                    as Box<dyn FnOnce(&SimMem<()>, Pid) -> u64 + Send>,
                Box::new(|mem: &SimMem<()>, pid: Pid| {
                    mem.safe_write(pid, s, 6);
                    mem.safe_read(pid, s)
                }),
            ],
        );
        assert!(out.outcomes[0].is_crashed());
        assert_eq!(out.outcomes[1].completed().copied(), Some(6));
    }
}

#[cfg(test)]
mod safe_race_tests {
    use super::*;
    use crate::adversary::Scripted;
    use crate::mem::SimMem;
    use sbu_mem::{Pid, WordMem};

    /// Two writers racing with the SAME value: the register settles to that
    /// value (writing identical bit patterns concurrently is harmless) —
    /// the property the two-safe-bit ASB construction of Section 4 needs.
    #[test]
    fn same_value_write_race_settles_to_that_value() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(0);
        // Interleave the two 2-phase writes: p0 begin, p1 begin, p0 end,
        // p1 end — script [0, 1, 0, 0] (waiting list shrinks as they park).
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(vec![0, 1, 0, 0]).with_corrupt_palette(vec![0xBAD])),
            RunOptions::default(),
            2,
            |mem, pid| mem.safe_write(pid, s, 9),
        );
        out.assert_clean();
        assert_eq!(
            mem.safe_read(Pid(0), s),
            9,
            "agreeing race must settle to 9"
        );
    }

    /// Two writers racing with DIFFERENT values: the adversary fabricates
    /// the result.
    #[test]
    fn differing_write_race_is_adversarial() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(0);
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(vec![0, 1, 0, 0]).with_corrupt_palette(vec![0xBAD])),
            RunOptions::default(),
            2,
            |mem, pid| mem.safe_write(pid, s, pid.0 as u64 + 1),
        );
        out.assert_clean();
        assert_eq!(
            mem.safe_read(Pid(0), s),
            0xBAD,
            "disagreeing race must yield the adversary's word"
        );
    }

    /// Sequential (non-overlapping) writes never involve the adversary.
    #[test]
    fn sequential_writes_are_exact() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(0);
        let out = run_uniform(
            &mem,
            // Default script: p0 completes fully, then p1.
            Box::new(Scripted::new(vec![]).with_corrupt_palette(vec![0xBAD])),
            RunOptions::default(),
            2,
            |mem, pid| mem.safe_write(pid, s, pid.0 as u64 + 1),
        );
        out.assert_clean();
        assert_eq!(mem.safe_read(Pid(0), s), 2, "last (p1's) write wins");
    }
}
