//! [`SimMem`]: the simulated backend implementing the `sbu-mem` traits.

use crate::adversary::RoundRobin;
use crate::state::{CrashSignal, SimCore, SimState, Status, StepAccess};
use sbu_mem::{
    AccessKind, AtomicId, DataId, DataMem, JamOutcome, LocId, Pid, SafeId, StickyBitId,
    StickyWordId, TasId, Tri, Word, WordMem, STICKY_WORD_UNDEF,
};
use std::panic::panic_any;
use std::sync::Arc;

/// Handle to a simulated shared memory. Cloning is cheap (an `Arc`); all
/// clones refer to the same memory and conductor.
///
/// Outside of [`crate::runner::run`] — during object setup and post-run
/// inspection — operations execute inline without scheduling. During a run,
/// every operation is one or two scheduling points mediated by the
/// conductor.
pub struct SimMem<P> {
    core: Arc<SimCore<P>>,
}

impl<P> std::fmt::Debug for SimMem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("SimMem")
            .field("n_procs", &st.n_procs)
            .field("running", &st.running)
            .field("step", &st.step)
            .finish_non_exhaustive()
    }
}

impl<P> Clone for SimMem<P> {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
        }
    }
}

impl<P: Clone + Send> SimMem<P> {
    /// A simulated memory for `n_procs` processors (pids `0..n_procs`).
    pub fn new(n_procs: usize) -> Self {
        Self {
            core: Arc::new(SimCore::new(n_procs, Box::new(RoundRobin::new()))),
        }
    }

    /// Number of processors this memory was configured for.
    pub fn n_procs(&self) -> usize {
        self.core.state.lock().n_procs
    }

    pub(crate) fn core(&self) -> &Arc<SimCore<P>> {
        &self.core
    }

    /// Violations recorded so far (typically inspected after a run).
    pub fn violations(&self) -> Vec<crate::state::Violation> {
        self.core.state.lock().violations.clone()
    }

    /// Counts of allocated registers, for Theorem 6.6 space accounting.
    /// Returns `(safe, atomic, sticky_bits, sticky_words, tas, data)`.
    pub fn census(&self) -> (usize, usize, usize, usize, usize, usize) {
        let st = self.core.state.lock();
        (
            st.safes.len(),
            st.atomics.len(),
            st.stickies.len(),
            st.sticky_words.len(),
            st.tas_bits.len(),
            st.data.len(),
        )
    }

    /// Execute one scheduling point for `pid`, applying `effect` atomically
    /// when granted. Inline (no scheduling) outside of a run.
    ///
    /// `loc`/`kind` describe the memory access the effect performs; during a
    /// run they are appended to the access log in lockstep with the
    /// adversary's choice log (a crash grant records a global write
    /// instead, and an effect that consumed an adversary-fabricated word is
    /// promoted to a global access).
    fn step<R>(
        &self,
        pid: Pid,
        loc: LocId,
        kind: AccessKind,
        effect: impl FnOnce(&mut SimState<P>) -> R,
    ) -> R {
        let core = &*self.core;
        let mut st = core.state.lock();
        if !st.running {
            st.clock += 1;
            return effect(&mut st);
        }
        debug_assert!(
            matches!(st.statuses[pid.0], Status::Busy),
            "processor {pid} must be busy when reaching a scheduling point"
        );
        st.statuses[pid.0] = Status::Waiting;
        core.sched_cv.notify_all();
        loop {
            if st.aborting {
                st.statuses[pid.0] = Status::Crashed;
                st.close_windows(pid);
                core.sched_cv.notify_all();
                drop(st);
                panic_any(CrashSignal);
            }
            if st.granted == Some(pid) {
                break;
            }
            core.worker_cv.wait(&mut st);
        }
        st.granted = None;
        if st.crash_granted {
            st.crash_granted = false;
            st.statuses[pid.0] = Status::Crashed;
            st.access_log.push(StepAccess {
                pid,
                loc: LocId::Global,
                kind: AccessKind::Write,
            });
            st.close_windows(pid);
            core.sched_cv.notify_all();
            drop(st);
            panic_any(CrashSignal);
        }
        st.statuses[pid.0] = Status::Busy;
        st.step += 1;
        st.clock += 1;
        st.steps_per_proc[pid.0] += 1;
        let draws_before = st.corrupt_draws;
        let r = effect(&mut st);
        let loc = if st.corrupt_draws != draws_before {
            LocId::Global
        } else {
            loc
        };
        st.access_log.push(StepAccess { pid, loc, kind });
        core.sched_cv.notify_all();
        r
    }
}

impl<P: Clone + Send + Sync> WordMem for SimMem<P> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.safes.push(Default::default());
        let ix = st.safes.len() - 1;
        st.safe_write_begin(Pid(0), ix, init);
        st.safe_write_end(Pid(0), ix);
        SafeId(ix)
    }

    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.atomics.push(init);
        AtomicId(st.atomics.len() - 1)
    }

    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.stickies.push(Default::default());
        StickyBitId(st.stickies.len() - 1)
    }

    fn alloc_sticky_word(&mut self) -> StickyWordId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.sticky_words.push(Default::default());
        StickyWordId(st.sticky_words.len() - 1)
    }

    fn alloc_tas(&mut self) -> TasId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.tas_bits.push(Default::default());
        TasId(st.tas_bits.len() - 1)
    }

    fn safe_read(&self, pid: Pid, r: SafeId) -> Word {
        self.step(pid, r.into(), AccessKind::Read, |st| {
            st.safe_read_begin(pid, r.0)
        });
        self.step(pid, r.into(), AccessKind::Read, |st| {
            st.safe_read_end(pid, r.0)
        })
    }

    fn safe_write(&self, pid: Pid, r: SafeId, v: Word) {
        self.step(pid, r.into(), AccessKind::Write, |st| {
            st.safe_write_begin(pid, r.0, v)
        });
        self.step(pid, r.into(), AccessKind::Write, |st| {
            st.safe_write_end(pid, r.0)
        });
    }

    fn atomic_read(&self, pid: Pid, r: AtomicId) -> Word {
        self.step(pid, r.into(), AccessKind::Read, |st| st.atomic_read(r.0))
    }

    fn atomic_write(&self, pid: Pid, r: AtomicId, v: Word) {
        self.step(pid, r.into(), AccessKind::Write, |st| {
            st.atomic_write(r.0, v)
        });
    }

    fn rmw(&self, pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.step(pid, r.into(), AccessKind::Write, |st| st.atomic_rmw(r.0, f))
    }

    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_jam(pid, s.0, v)
        })
    }

    fn sticky_read(&self, pid: Pid, s: StickyBitId) -> Tri {
        self.step(pid, s.into(), AccessKind::Read, |st| {
            st.sticky_read(pid, s.0)
        })
    }

    fn sticky_flush(&self, pid: Pid, s: StickyBitId) {
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_flush_begin(pid, s.0)
        });
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_flush_end(pid, s.0)
        });
    }

    fn sticky_word_jam(&self, pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        assert!(
            v != STICKY_WORD_UNDEF,
            "sticky word payloads must be < STICKY_WORD_UNDEF"
        );
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_word_jam(pid, s.0, v)
        })
    }

    fn sticky_word_read(&self, pid: Pid, s: StickyWordId) -> Option<Word> {
        self.step(pid, s.into(), AccessKind::Read, |st| {
            st.sticky_word_read(pid, s.0)
        })
    }

    fn sticky_word_flush(&self, pid: Pid, s: StickyWordId) {
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_word_flush_begin(pid, s.0)
        });
        self.step(pid, s.into(), AccessKind::Write, |st| {
            st.sticky_word_flush_end(pid, s.0)
        });
    }

    fn tas_test_and_set(&self, pid: Pid, t: TasId) -> bool {
        self.step(pid, t.into(), AccessKind::Write, |st| {
            st.tas_test_and_set(pid, t.0)
        })
    }

    fn tas_read(&self, pid: Pid, t: TasId) -> bool {
        self.step(pid, t.into(), AccessKind::Read, |st| st.tas_read(pid, t.0))
    }

    fn tas_reset(&self, pid: Pid, t: TasId) {
        self.step(pid, t.into(), AccessKind::Write, |st| {
            st.tas_reset_begin(pid, t.0)
        });
        self.step(pid, t.into(), AccessKind::Write, |st| {
            st.tas_reset_end(pid, t.0)
        });
    }

    // Timestamp steps: mutually ordered (the linearizability checker reads
    // their relative order) but commuting with ordinary memory steps — see
    // the soundness note on `LocId::Clock`.
    fn op_invoke(&self, pid: Pid) -> u64 {
        self.step(pid, LocId::Clock, AccessKind::Write, |st| st.clock)
    }

    fn op_return(&self, pid: Pid) -> u64 {
        self.step(pid, LocId::Clock, AccessKind::Write, |st| st.clock)
    }

    /// A persistency fence is one scheduling point with no effect on the
    /// simulated (volatile-visible) state: its entire purpose is to give
    /// crash decisions a place to land *between* a write and its fence, so
    /// `DurableMem`'s torn-persist bookkeeping — which runs in the caller
    /// right after this step is granted, before any other processor can be
    /// granted (the conductor is lockstep) — sits at a definite point in
    /// the schedule.
    fn persist(&self, pid: Pid) {
        self.step(pid, LocId::Fence(pid.0), AccessKind::Write, |_| ());
    }
}

impl<P: Clone + Send + Sync> DataMem<P> for SimMem<P> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        let mut st = self.core.state.lock();
        assert!(!st.running, "allocation is a setup-phase operation");
        st.data.push(Default::default());
        let ix = st.data.len() - 1;
        if init.is_some() {
            st.data_write_begin(Pid(0), ix, init);
            st.data_write_end(Pid(0), ix);
        }
        DataId(ix)
    }

    fn data_read(&self, pid: Pid, d: DataId) -> Option<P> {
        self.step(pid, d.into(), AccessKind::Read, |st| {
            st.data_read_begin(pid, d.0)
        });
        self.step(pid, d.into(), AccessKind::Read, |st| {
            st.data_read_end(pid, d.0)
        })
    }

    fn data_write(&self, pid: Pid, d: DataId, v: P) {
        self.step(pid, d.into(), AccessKind::Write, |st| {
            st.data_write_begin(pid, d.0, Some(v))
        });
        self.step(pid, d.into(), AccessKind::Write, |st| {
            st.data_write_end(pid, d.0)
        });
    }

    fn data_clear(&self, pid: Pid, d: DataId) {
        self.step(pid, d.into(), AccessKind::Write, |st| {
            st.data_write_begin(pid, d.0, None)
        });
        self.step(pid, d.into(), AccessKind::Write, |st| {
            st.data_write_end(pid, d.0)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_mode_operations_execute_inline() {
        let mut mem: SimMem<()> = SimMem::new(2);
        let s = mem.alloc_safe(5);
        assert_eq!(mem.safe_read(Pid(0), s), 5);
        mem.safe_write(Pid(0), s, 6);
        assert_eq!(mem.safe_read(Pid(1), s), 6);

        let sb = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_jam(Pid(0), sb, true), JamOutcome::Success);
        assert_eq!(mem.sticky_read(Pid(1), sb), Tri::One);
        mem.sticky_flush(Pid(0), sb);
        assert_eq!(mem.sticky_read(Pid(1), sb), Tri::Undef);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn census_reports_allocations() {
        let mut mem: SimMem<u8> = SimMem::new(1);
        mem.alloc_safe(0);
        mem.alloc_atomic(0);
        mem.alloc_sticky_bit();
        mem.alloc_sticky_bit();
        mem.alloc_sticky_word();
        mem.alloc_tas();
        mem.alloc_data(Some(1));
        assert_eq!(mem.census(), (1, 1, 2, 1, 1, 1));
        assert_eq!(mem.n_procs(), 1);
    }

    #[test]
    fn inline_rmw_and_tas() {
        let mut mem: SimMem<()> = SimMem::new(1);
        let a = mem.alloc_atomic(3);
        assert_eq!(mem.rmw(Pid(0), a, &|x| x + 1), 3);
        assert_eq!(mem.atomic_read(Pid(0), a), 4);
        let t = mem.alloc_tas();
        assert!(!mem.tas_test_and_set(Pid(0), t));
        assert!(mem.tas_test_and_set(Pid(0), t));
        mem.tas_reset(Pid(0), t);
        assert!(!mem.tas_read(Pid(0), t));
    }

    #[test]
    fn data_cells_inline() {
        let mut mem: SimMem<String> = SimMem::new(1);
        let d = mem.alloc_data(None);
        assert_eq!(mem.data_read(Pid(0), d), None);
        mem.data_write(Pid(0), d, "x".into());
        assert_eq!(mem.data_read(Pid(0), d), Some("x".to_string()));
        mem.data_clear(Pid(0), d);
        assert_eq!(mem.data_read(Pid(0), d), None);
    }
}

#[cfg(test)]
mod conformance_tests {
    use super::*;

    /// The simulated backend satisfies the same sequential contract as the
    /// native one (in inline/setup mode).
    #[test]
    fn sim_backend_conforms() {
        let mut mem: SimMem<String> = SimMem::new(2);
        sbu_mem::conformance::exercise_word_mem(&mut mem);
        sbu_mem::conformance::exercise_data_mem(&mut mem, "a".to_string(), "b".to_string());
        assert!(mem.violations().is_empty());
    }
}
