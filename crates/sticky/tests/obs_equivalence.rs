//! Observability is free at the schedule level: attaching instruments to
//! the Figure 2 sticky byte never issues a shared-memory step, so an
//! instrumented object and a bare one explore *identical* DPOR schedule
//! trees and produce identical outcome sets. This is the contract that
//! lets the stress harness and experiments run with metrics on without
//! invalidating anything the model checker proved about the bare object.

use proptest::prelude::*;
use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
use sbu_sticky::JamWord;
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Explore the full 2-processor jam tree for proposals `(v0, v1)`,
/// optionally with instruments attached, and return the schedule count
/// plus the set of observable outcomes (final value + per-processor
/// results) across all schedules.
fn explore_jam(v0: u64, v1: u64, attach: bool) -> (usize, BTreeSet<String>) {
    let registry = sbu_obs::Registry::new(2);
    let outcomes = RefCell::new(BTreeSet::new());
    let report = Explorer::new(500_000).explore_dpor(|script| {
        let mut mem: SimMem<()> = SimMem::new(2);
        let mut jw = JamWord::new(&mut mem, 2, 2);
        if attach {
            jw = jw.with_obs(&registry);
        }
        let reader = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            2,
            move |mem, pid| {
                let value = if pid.0 == 0 { v0 } else { v1 };
                jw.jam(mem, pid, value)
            },
        );
        let verdict = if out.violations.is_empty() {
            Ok(())
        } else {
            Err(format!("violations: {:?}", out.violations))
        };
        outcomes.borrow_mut().insert(format!(
            "final={:?} results={:?}",
            reader.read(&mem, sbu_mem::Pid(0)),
            out.results()
        ));
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_all_ok();
    assert!(report.complete, "exploration must exhaust the tree");
    (report.schedules, outcomes.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// With and without instruments, DPOR explores the same number of
    /// schedules and observes the same outcome set — the instruments are
    /// invisible to the schedule space.
    #[test]
    fn instruments_do_not_perturb_the_dpor_tree(v0 in 0u64..4, v1 in 0u64..4) {
        let (bare_schedules, bare_outcomes) = explore_jam(v0, v1, false);
        let (obs_schedules, obs_outcomes) = explore_jam(v0, v1, true);
        prop_assert_eq!(bare_schedules, obs_schedules);
        prop_assert_eq!(bare_outcomes, obs_outcomes);
    }
}

/// Sanity check on the check itself: with the `obs` feature on, the
/// attached run really does record events (the tree contains contended
/// schedules where helping switches the candidate), so the equivalence
/// above is not vacuous.
#[cfg(feature = "obs")]
#[test]
fn attached_exploration_actually_records() {
    let registry = sbu_obs::Registry::new(2);
    let report = Explorer::new(500_000).explore_dpor(|script| {
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 2).with_obs(&registry);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            2,
            move |mem, pid| {
                let value = if pid.0 == 0 { 0b01 } else { 0b10 };
                jw2.jam(mem, pid, value)
            },
        );
        EpisodeResult::from_outcome(&out, Ok(()))
    });
    report.assert_all_ok();
    let snap = registry.snapshot();
    assert!(
        snap.counter("jam.candidate_switch") > 0,
        "some schedule must force a helping switch"
    );
}
