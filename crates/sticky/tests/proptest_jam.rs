//! Property tests for the Figure 2 sticky byte: over proptest-generated
//! schedules (decision scripts) and value assignments, agreement, validity
//! and outcome-consistency always hold.

use proptest::prelude::*;
use sbu_mem::{JamOutcome, Pid, Word};
use sbu_sim::{run_uniform, RunOptions, Scripted, SimMem};
use sbu_sticky::{Consensus, JamWord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Two processors, random 3-bit values, random schedule prefixes (the
    /// Scripted adversary treats indices modulo the waiting set via the
    /// generated range), optional crash decisions included.
    #[test]
    fn jam_word_agreement_validity_outcomes(
        script in prop::collection::vec(0usize..2, 0..64),
        v0 in 0u64..8,
        v1 in 0u64..8,
    ) {
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 3);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script)),
            RunOptions::default(),
            2,
            move |mem, pid| jw2.jam(mem, pid, if pid.0 == 0 { v0 } else { v1 }),
        );
        prop_assert!(out.violations.is_empty());
        prop_assert!(!out.aborted);
        let final_value = jw.read(&mem, Pid(0)).expect("both completed");
        prop_assert!(final_value == v0 || final_value == v1, "blend {final_value:#b}");
        for (i, o) in out.outcomes.iter().enumerate() {
            let (outcome, seen) = o.completed().expect("no crashes scheduled");
            let mine = if i == 0 { v0 } else { v1 };
            prop_assert_eq!(*seen, final_value);
            prop_assert_eq!(outcome.is_success(), mine == final_value);
        }
    }

    /// Scripts with one crash decision allowed: survivors still agree and
    /// never see a blended value.
    #[test]
    fn jam_word_with_crash_scripts(
        script in prop::collection::vec(0usize..4, 0..48),
        v0 in 0u64..4,
        v1 in 0u64..4,
    ) {
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 2);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script).with_crashes(1)),
            RunOptions::default(),
            2,
            move |mem, pid| jw2.jam(mem, pid, if pid.0 == 0 { v0 } else { v1 }),
        );
        prop_assert!(out.violations.is_empty());
        let final_value = jw.read(&mem, Pid(0));
        for (i, o) in out.outcomes.iter().enumerate() {
            if let Some((outcome, seen)) = o.completed() {
                let fv = final_value.expect("a completer defines the byte");
                prop_assert!(fv == v0 || fv == v1);
                prop_assert_eq!(*seen, fv);
                let mine = if i == 0 { v0 } else { v1 };
                prop_assert_eq!(outcome.is_success(), mine == fv);
            }
        }
    }

    /// Consensus objects built from sticky primitives: agreement + validity
    /// over random schedules and inputs, three processors.
    #[test]
    fn sticky_consensus_properties(
        script in prop::collection::vec(0usize..3, 0..64),
        inputs in prop::collection::vec(0u64..2, 3),
    ) {
        use sbu_sticky::consensus::StickyBinaryConsensus;
        let mut mem: SimMem<()> = SimMem::new(3);
        let cons = StickyBinaryConsensus::new(&mut mem);
        let inputs2 = inputs.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script)),
            RunOptions::default(),
            3,
            move |mem, pid| cons.propose(mem, pid, inputs2[pid.0]),
        );
        prop_assert!(!out.aborted);
        let ds: Vec<Word> = out.results().into_iter().copied().collect();
        prop_assert!(ds.iter().all(|&d| d == ds[0]));
        prop_assert!(inputs.contains(&ds[0]), "decision {} not an input", ds[0]);
    }
}

/// Deterministic replay: the same script always yields the same outcome
/// tuple (no hidden nondeterminism in the conductor).
#[test]
fn scripts_replay_identically() {
    let script = vec![1usize, 0, 1, 1, 0, 0, 1];
    let run = || {
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 4);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.clone())),
            RunOptions::default(),
            2,
            move |mem, pid| jw2.jam(mem, pid, pid.0 as u64 + 5),
        );
        let results: Vec<(JamOutcome, Word)> = out.results().into_iter().cloned().collect();
        (out.steps, results)
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Meta-property of the conductor: a scripted run is a pure function of
    /// its script — replaying yields identical results, step counts, and
    /// violation lists (the foundation the explorer stands on).
    #[test]
    fn replay_determinism_over_random_scripts(
        script in prop::collection::vec(0usize..4, 0..80),
        v0 in 0u64..16,
        v1 in 0u64..16,
    ) {
        let run = |script: Vec<usize>| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let jw = JamWord::new(&mut mem, 2, 4);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| jw2.jam(mem, pid, if pid.0 == 0 { v0 } else { v1 }),
            );
            (
                out.steps,
                out.steps_per_proc.clone(),
                out.violations.len(),
                out.results().into_iter().cloned().collect::<Vec<_>>(),
                jw.read(&mem, Pid(0)),
            )
        };
        prop_assert_eq!(run(script.clone()), run(script));
    }
}
