//! Model-checking the recoverable sticky byte under crash–restart
//! (acceptance for the crash–restart PR):
//!
//! 1. For an in-flight jam at a crash point, the explorer reaches **both**
//!    persistence outcomes — the torn write persisted (`TornPersist::Persist`
//!    keeps unfenced writes) and the torn write lost (`TornPersist::Lose`
//!    reverts them) — each exercised as a separate exploration so torn
//!    decisions never contaminate the schedule logs DPOR replays.
//! 2. Under either policy, the recoverable JamWord admits **no violation**
//!    on 2 processors (exhaustive, DPOR-reduced) and on a bounded-exhaustive
//!    3-processor prefix: survivors and recovered processors agree, values
//!    are never blended, acknowledged results survive the crash.
//!
//! Crash bookkeeping (`DurableMem::crash`) and recovery run after the
//! simulated schedule, which is faithful here: the flush-on-dependence
//! discipline makes every bit a survivor has acted on fenced and co-written,
//! so deferring the torn-persist decision to the quiescent point cannot
//! change what any survivor observed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sbu_mem::{DurableMem, JamOutcome, Pid, TornPersist, Word};
use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
use sbu_sticky::RecoverableJamWord;

/// One episode: `n` processors jam distinct values with ≤1 crash; after the
/// schedule, crashed processors take the torn-persist hit, restart, and run
/// recovery. The verdict checks agreement, validity, outcome consistency,
/// durability of acknowledged results, and absence of monitor violations.
fn recovery_episode(
    script: &[usize],
    n: usize,
    policy: TornPersist,
    kept: &AtomicBool,
    torn: &AtomicBool,
) -> EpisodeResult {
    let proposals: [Word; 3] = [0b01, 0b10, 0b11];
    let mem: SimMem<()> = SimMem::new(n);
    let mut dmem = DurableMem::with_policy(mem.clone(), policy);
    let jw = RecoverableJamWord::new(&mut dmem, n, 2);
    let dmem = Arc::new(dmem);
    let jw2 = jw.clone();
    let d2 = Arc::clone(&dmem);
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
        RunOptions::default(),
        n,
        move |_, pid| jw2.jam(&*d2, pid, proposals[pid.0]),
    );
    let verdict = (|| {
        if !out.violations.is_empty() {
            return Err(format!("sim violations: {:?}", out.violations));
        }
        let crashed: Vec<Pid> = out
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_crashed())
            .map(|(i, _)| Pid(i))
            .collect();
        let mut recovered: Vec<(Pid, (JamOutcome, Word))> = Vec::new();
        if !crashed.is_empty() {
            let before = jw.defined_bits(&*dmem, Pid(0));
            dmem.crash::<()>(&crashed);
            let after = jw.defined_bits(&*dmem, Pid(0));
            if before > 0 && after == before {
                kept.store(true, Ordering::Relaxed);
            }
            if after < before {
                torn.store(true, Ordering::Relaxed);
            }
            for &p in &crashed {
                dmem.restart(p);
                if let Some(r) = jw.recover(&*dmem, p) {
                    recovered.push((p, r));
                }
            }
        }
        if !dmem.violations().is_empty() {
            return Err(format!("durable violations: {:?}", dmem.violations()));
        }
        let final_value = jw.read(&*dmem, Pid(0));
        let check =
            |who: String, outcome: JamOutcome, seen: Word, mine: Word| -> Result<(), String> {
                let fv = final_value.ok_or(format!("{who}: object left undefined"))?;
                if seen != fv {
                    return Err(format!("{who} saw {seen:#b}, object {fv:#b}"));
                }
                if !proposals[..n].contains(&fv) {
                    return Err(format!("blended value {fv:#b}"));
                }
                if outcome.is_success() != (mine == fv) {
                    return Err(format!("{who} wrong outcome {outcome:?} for final {fv:#b}"));
                }
                Ok(())
            };
        for (i, o) in out.outcomes.iter().enumerate() {
            if let Some(&(outcome, seen)) = o.completed() {
                check(format!("p{i}"), outcome, seen, proposals[i])?;
            }
        }
        for &(p, (outcome, seen)) in &recovered {
            check(format!("recovered {p}"), outcome, seen, proposals[p.0])?;
        }
        Ok(())
    })();
    EpisodeResult::from_outcome(&out, verdict)
}

/// A solo processor crashing mid-jam: post-schedule state *is* crash-time
/// state, so the kept/torn classification is exact. Under `Persist` the
/// in-flight bits survive; under `Lose` the unfenced tail is reverted. Both
/// outcomes must actually be reached, and recovery must close over either.
#[test]
fn solo_inflight_jam_reaches_both_persistence_outcomes() {
    let kept_p = AtomicBool::new(false);
    let torn_p = AtomicBool::new(false);
    let explorer = Explorer {
        max_schedules: 100_000,
        max_failures: 1,
    };
    let report =
        explorer.explore_dpor(|s| recovery_episode(s, 1, TornPersist::Persist, &kept_p, &torn_p));
    report.assert_all_ok();
    assert!(
        kept_p.load(Ordering::Relaxed),
        "Persist: some schedule must crash with jammed bits that survive"
    );
    assert!(
        !torn_p.load(Ordering::Relaxed),
        "Persist never loses writes"
    );

    let kept_l = AtomicBool::new(false);
    let torn_l = AtomicBool::new(false);
    let report =
        explorer.explore_dpor(|s| recovery_episode(s, 1, TornPersist::Lose, &kept_l, &torn_l));
    report.assert_all_ok();
    assert!(
        torn_l.load(Ordering::Relaxed),
        "Lose: some schedule must crash with an unfenced jam that is torn away"
    );
    assert!(
        kept_l.load(Ordering::Relaxed),
        "Lose: some schedule must crash right after a fence, keeping the bits"
    );
}

/// Exhaustive 2-processor check under both honest policies: no schedule and
/// no torn-persist outcome produces a violation.
#[test]
fn dpor_two_procs_crash_restart_no_violation() {
    let ignore = AtomicBool::new(false);
    for policy in [TornPersist::Persist, TornPersist::Lose] {
        let explorer = Explorer {
            max_schedules: 4_000_000,
            max_failures: 1,
        };
        let report = explorer.explore_dpor(|s| recovery_episode(s, 2, policy, &ignore, &ignore));
        report.assert_all_ok();
        assert!(
            report.schedules > 100,
            "{policy}: non-trivial schedule tree expected"
        );
    }
}

/// Bounded-exhaustive 3-processor prefix (the full tree is astronomical).
#[test]
fn dpor_three_procs_crash_restart_no_violation_prefix() {
    let ignore = AtomicBool::new(false);
    for policy in [TornPersist::Persist, TornPersist::Lose] {
        let explorer = Explorer::new(25_000);
        let report = explorer.explore_dpor(|s| recovery_episode(s, 3, policy, &ignore, &ignore));
        report.assert_no_failures();
    }
}
