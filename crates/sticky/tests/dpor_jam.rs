//! Model-checking the Figure 2 sticky byte at scale: partial-order
//! reduction versus naive DFS on the same systems.
//!
//! Three claims are checked mechanically:
//!
//! 1. The full crash-tolerant Jam tree (2 processors × 2-bit word, ≤ 1
//!    crash) is exhausted by both explorers with no counterexample, and
//!    DPOR visits *strictly fewer* schedules — the reduction actually
//!    reduces on the paper's own construction (announce registers of
//!    different processors are disjoint locations).
//! 2. On a seeded-bug variant (`jam_oblivious`, the Section 4 straw-man
//!    that jams all bits without helping), both explorers find the
//!    *identical* set of failure messages — reduction loses no bugs.
//! 3. The minimizer shrinks the first DPOR counterexample to a script that
//!    still reproduces the same failure.

use sbu_mem::{JamOutcome, Pid, Word};
use sbu_sim::{
    minimize_script, run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem,
};
use sbu_sticky::JamWord;

/// The clean Figure 2 system: both processors jam, ≤ `crashes` crash, and
/// the verdict checks agreement, validity, outcome consistency and absence
/// of monitored violations — all schedule-equivalence invariants.
fn fig2_episode(script: &[usize], crashes: usize) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let jw = JamWord::new(&mut mem, 2, 2);
    let jw2 = jw.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(crashes)),
        RunOptions::default(),
        2,
        move |mem, pid| {
            let value = if pid.0 == 0 { 0b01 } else { 0b10 };
            jw2.jam(mem, pid, value)
        },
    );
    let verdict = (|| {
        if !out.violations.is_empty() {
            return Err(format!("violations: {:?}", out.violations));
        }
        let final_value = jw.read(&mem, Pid(0));
        for (i, o) in out.outcomes.iter().enumerate() {
            if let Some((outcome, seen)) = o.completed() {
                let fv = final_value.ok_or("completer left object undefined")?;
                if *seen != fv {
                    return Err(format!("p{i} saw {seen:#b}, object {fv:#b}"));
                }
                if fv != 0b01 && fv != 0b10 {
                    return Err(format!("blended value {fv:#b}"));
                }
                let mine: Word = if i == 0 { 0b01 } else { 0b10 };
                let _: &JamOutcome = outcome;
                if outcome.is_success() != (mine == fv) {
                    return Err(format!("p{i} wrong outcome {outcome:?}"));
                }
            }
        }
        Ok(())
    })();
    EpisodeResult::from_outcome(&out, verdict)
}

/// The seeded-bug variant: oblivious jamming can blend the two proposals.
fn oblivious_episode(script: &[usize]) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let jw = JamWord::new(&mut mem, 2, 2);
    let jw2 = jw.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec())),
        RunOptions::default(),
        2,
        move |mem, pid| {
            let value = if pid.0 == 0 { 0b01 } else { 0b10 };
            jw2.jam_oblivious(mem, pid, value)
        },
    );
    let verdict = match jw.read(&mem, Pid(0)) {
        Some(v) if v != 0b01 && v != 0b10 => Err(format!("blended into {v:#b}")),
        _ => Ok(()),
    };
    EpisodeResult::from_outcome(&out, verdict)
}

fn failure_messages(report: &sbu_sim::ExploreReport) -> Vec<String> {
    let mut msgs: Vec<String> = report.failures.iter().map(|(_, m)| m.clone()).collect();
    msgs.sort_unstable();
    msgs.dedup();
    msgs
}

/// Claim 1: exhaustive crash-tolerant model check, with a real reduction.
#[test]
fn dpor_exhausts_fig2_with_crashes_in_fewer_schedules() {
    let explorer = Explorer {
        max_schedules: 2_000_000,
        max_failures: 1,
    };
    let naive = explorer.explore(|s| fig2_episode(s, 1));
    let dpor = explorer.explore_dpor(|s| fig2_episode(s, 1));
    naive.assert_all_ok();
    dpor.assert_all_ok();
    assert!(
        dpor.schedules * 2 <= naive.schedules,
        "expected ≥2× reduction: DPOR {} vs naive {}",
        dpor.schedules,
        naive.schedules
    );
}

/// Claim 1, crash-free corner: the reduction also holds without crash
/// branching (crash options are the part DPOR cannot prune).
#[test]
fn dpor_exhausts_fig2_crash_free_in_fewer_schedules() {
    let explorer = Explorer::new(500_000);
    let naive = explorer.explore(|s| fig2_episode(s, 0));
    let dpor = explorer.explore_dpor(|s| fig2_episode(s, 0));
    naive.assert_all_ok();
    dpor.assert_all_ok();
    assert!(
        dpor.schedules * 2 <= naive.schedules,
        "expected ≥2× reduction: DPOR {} vs naive {}",
        dpor.schedules,
        naive.schedules
    );
}

/// Claim 2: the seeded bug is found by both explorers with identical
/// failure sets — reduction loses no counterexamples.
#[test]
fn dpor_finds_the_same_oblivious_blends_as_naive() {
    let explorer = Explorer {
        max_schedules: 500_000,
        max_failures: usize::MAX,
    };
    let naive = explorer.explore(oblivious_episode);
    let dpor = explorer.explore_dpor(oblivious_episode);
    naive.assert_some_failure();
    dpor.assert_some_failure();
    assert!(naive.complete && dpor.complete);
    assert_eq!(failure_messages(&naive), failure_messages(&dpor));
    assert!(dpor.schedules <= naive.schedules);
}

/// Claim 3: the first DPOR counterexample minimizes to a script that still
/// blends, with the same failure message shape.
#[test]
fn minimized_oblivious_counterexample_still_blends() {
    let explorer = Explorer {
        max_schedules: 500_000,
        max_failures: usize::MAX,
    };
    let report = explorer.explore_dpor(oblivious_episode);
    report.assert_some_failure();
    let (script, original_message) = report.failures[0].clone();
    let (minimal, message) = minimize_script(&script, oblivious_episode);
    assert!(minimal.len() <= script.len());
    assert!(message.starts_with("blended into"), "message: {message}");
    assert!(original_message.starts_with("blended into"));
    // Replaying the minimized script reproduces the minimized failure.
    assert_eq!(oblivious_episode(&minimal).verdict, Err(message));
}

/// The deep sweep: three processors jamming a 2-bit word, DPOR-reduced.
/// Tens of seconds in release mode, minutes in debug, so it is
/// `#[ignore]`d by default; `scripts/ci.sh --full` (or
/// `cargo test --release -- --ignored`) runs it.
#[test]
#[ignore = "deep exploration; run with --ignored or scripts/ci.sh --full"]
fn dpor_exhausts_three_proc_jam() {
    let explorer = Explorer {
        max_schedules: 50_000_000,
        max_failures: 1,
    };
    let report = explorer.explore_dpor(|script| {
        let mut mem: SimMem<()> = SimMem::new(3);
        let jw = JamWord::new(&mut mem, 3, 2);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            3,
            move |mem, pid| {
                let value = [0b01, 0b10, 0b11][pid.0];
                jw2.jam(mem, pid, value)
            },
        );
        let verdict = (|| {
            if !out.violations.is_empty() {
                return Err(format!("violations: {:?}", out.violations));
            }
            let fv = jw
                .read(&mem, Pid(0))
                .ok_or("completers left the word undefined")?;
            if ![0b01, 0b10, 0b11].contains(&fv) {
                return Err(format!("blended value {fv:#b}"));
            }
            for (i, o) in out.outcomes.iter().enumerate() {
                let (_, seen) = o.completed().expect("no crashes scheduled");
                if *seen != fv {
                    return Err(format!("p{i} saw {seen:#b}, object {fv:#b}"));
                }
            }
            Ok(())
        })();
        EpisodeResult::from_outcome(&out, verdict)
    });
    report.assert_all_ok();
}
