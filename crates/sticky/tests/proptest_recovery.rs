//! Property test: jam idempotence under recovery.
//!
//! For any prefix of jams followed by crash / restart / recover / re-jam,
//! the final sticky value equals the value of the **first successful jam**
//! (here: the first jam executed — on a fresh object it always succeeds),
//! every jam and every recovery reports that same value, and the persistence
//! bookkeeping records no protocol violation — under every honest
//! torn-persist policy.

use proptest::prelude::*;
use sbu_mem::{native::NativeMem, DurableMem, Pid, TornPersist};
use sbu_sticky::RecoverableJamWord;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn recovery_preserves_the_first_successful_jam(
        jams in prop::collection::vec((0usize..3, 0u64..8), 1..12),
        cut in 0usize..12,
        policy in 0usize..3,
        seed in 0u64..1024,
    ) {
        let policy = [
            TornPersist::Persist,
            TornPersist::Lose,
            TornPersist::Seeded(seed),
        ][policy];
        let mut mem: DurableMem<NativeMem<()>> =
            DurableMem::with_policy(NativeMem::new(), policy);
        let jw = RecoverableJamWord::new(&mut mem, 3, 3);
        let first = jams[0].1;
        let cut = cut.min(jams.len());

        for &(pid, v) in &jams[..cut] {
            let (outcome, seen) = jw.jam(&mem, Pid(pid), v);
            prop_assert_eq!(seen, first, "pre-crash jam must report the stuck value");
            prop_assert_eq!(outcome.is_success(), jw.peek(&mem, Pid(pid)) == Some(v));
        }

        // Full-system crash: completed jams were fenced, so they survive
        // regardless of policy; then everyone restarts and recovers.
        mem.crash_all::<()>(3);
        for p in 0..3 {
            mem.restart(Pid(p));
        }
        for p in 0..3 {
            if let Some((_, seen)) = jw.recover(&mem, Pid(p)) {
                prop_assert_eq!(seen, first, "recovery must converge on the first value");
            } else {
                // Nothing to recover: this pid never durably announced,
                // which sequentially means it never jammed before the cut.
                prop_assert!(jams[..cut].iter().all(|&(pid, _)| pid != p));
            }
        }

        for &(pid, v) in &jams[cut..] {
            let (_, seen) = jw.jam(&mem, Pid(pid), v);
            prop_assert_eq!(seen, first, "post-restart jam must report the stuck value");
        }

        prop_assert_eq!(jw.read(&mem, Pid(0)), Some(first));
        prop_assert!(mem.violations().is_empty(), "{:?}", mem.violations());
    }
}
