//! An atomic sticky bit from one initializable consensus object and two
//! safe bits (Section 4).
//!
//! > "It is easy to see that it is possible to construct an atomic Sticky
//! > Bit from an initializable single-bit consensus object and two safe
//! > bits."
//!
//! This module makes the observation concrete — and verifies it with the
//! linearizability checker over exhaustive schedules. The construction:
//!
//! * `Jam(v)`: raise the safe *witness* bit `w_v`, then `propose(v)`;
//!   succeed iff the decision is `v`.
//! * `Read`: if both witness bits are down, return `⊥` (no jam has
//!   completed its witness write, so `⊥` is linearizable); otherwise join
//!   the consensus with a witnessed value and return the decision.
//! * `Flush`: reset the consensus and the witness bits (non-atomic, per
//!   Definition 4.1).
//!
//! Why reads are safe with *safe* bits: a read that observes garbage in
//! `w_v` necessarily overlaps the jam writing it, so either serialization
//! order is linearizable; a read that observes a stable `1` joins a
//! consensus whose value was genuinely proposed (validity), and one that
//! observes stable `0`s cannot have missed any *completed* jam.
//!
//! Combined with [`crate::randomized::RandomizedConsensus`] this yields a
//! randomized wait-free sticky bit from registers only — the paper's
//! corollary that polynomially many safe bits suffice for randomized
//! universality.

use crate::consensus::InitializableConsensus;
use sbu_mem::{JamOutcome, Pid, SafeId, Tri, WordMem};

/// A sticky bit built from a consensus object plus two safe witness bits.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid, JamOutcome, Tri};
/// use sbu_sticky::{ConsensusStickyBit, consensus::StickyWordConsensus};
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let cons = StickyWordConsensus::new(&mut mem);
/// let sb = ConsensusStickyBit::new(&mut mem, cons);
/// assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
/// assert_eq!(sb.jam(&mem, Pid(0), true), JamOutcome::Success);
/// assert_eq!(sb.jam(&mem, Pid(1), false), JamOutcome::Fail);
/// assert_eq!(sb.read(&mem, Pid(1)), Tri::One);
/// ```
#[derive(Debug, Clone)]
pub struct ConsensusStickyBit<C> {
    consensus: C,
    /// Witness bits `w_0`, `w_1`: `w_v` is raised before proposing `v`.
    witness: [SafeId; 2],
}

impl<C> ConsensusStickyBit<C> {
    /// Wrap an initializable consensus object.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, consensus: C) -> Self {
        Self {
            consensus,
            witness: [mem.alloc_safe(0), mem.alloc_safe(0)],
        }
    }
}

impl<C> ConsensusStickyBit<C> {
    /// `Jam(v)` per Definition 4.1.
    pub fn jam<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, v: bool) -> JamOutcome
    where
        C: InitializableConsensus<M>,
    {
        mem.safe_write(pid, self.witness[v as usize], 1);
        let decided = self.consensus.propose(mem, pid, v as u64);
        if decided == v as u64 {
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        }
    }

    /// `Read` per Definition 4.1.
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Tri
    where
        C: InitializableConsensus<M>,
    {
        let w0 = mem.safe_read(pid, self.witness[0]) != 0;
        let w1 = mem.safe_read(pid, self.witness[1]) != 0;
        let propose = match (w0, w1) {
            (false, false) => return Tri::Undef,
            (_, true) => true,
            (true, false) => false,
        };
        let decided = self.consensus.propose(mem, pid, propose as u64);
        Tri::from_bit(decided == 1)
    }

    /// `Flush`: non-atomic reset (Definition 4.1 caveat applies).
    pub fn flush<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid)
    where
        C: InitializableConsensus<M>,
    {
        self.consensus.reset(mem, pid);
        mem.safe_write(pid, self.witness[0], 0);
        mem.safe_write(pid, self.witness[1], 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{StickyBinaryConsensus, StickyWordConsensus};
    use crate::randomized::RandomizedConsensus;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{
        run_uniform, EpisodeResult, Explorer, HistoryRecorder, RandomAdversary, RunOptions,
        Scripted, SimMem,
    };
    use sbu_spec::linearize::check;
    use sbu_spec::specs::{StickyOp, StickyResp, StickySpec};

    #[test]
    fn sequential_semantics_match_definition_4_1() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let cons = StickyWordConsensus::new(&mut mem);
        let sb = ConsensusStickyBit::new(&mut mem, cons);
        assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
        assert_eq!(sb.jam(&mem, Pid(0), false), JamOutcome::Success);
        assert_eq!(sb.jam(&mem, Pid(1), false), JamOutcome::Success);
        assert_eq!(sb.jam(&mem, Pid(2), true), JamOutcome::Fail);
        assert_eq!(sb.read(&mem, Pid(2)), Tri::Zero);
        sb.flush(&mem, Pid(0));
        assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
        assert_eq!(sb.jam(&mem, Pid(2), true), JamOutcome::Success);
        assert_eq!(sb.read(&mem, Pid(0)), Tri::One);
    }

    /// Exhaustive linearizability against `StickySpec` for two processors
    /// (one jams, one reads, then both jam opposite values), with one crash.
    #[test]
    fn exhaustive_linearizable_against_sticky_spec() {
        let explorer = Explorer {
            max_schedules: 3_000_000,
            max_failures: 1,
        };
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let cons = StickyBinaryConsensus::new(&mut mem);
            let sb = ConsensusStickyBit::new(&mut mem, cons);
            let sb2 = sb.clone();
            let rec: std::sync::Arc<HistoryRecorder<StickyOp, StickyResp>> =
                std::sync::Arc::new(HistoryRecorder::new());
            let rec2 = std::sync::Arc::clone(&rec);
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    if pid.0 == 0 {
                        rec2.record(mem, pid, StickyOp::Jam(true), || {
                            match sb2.jam(mem, pid, true) {
                                JamOutcome::Success => StickyResp::Success,
                                JamOutcome::Fail => StickyResp::Fail,
                            }
                        });
                    } else {
                        rec2.record(mem, pid, StickyOp::Read, || {
                            StickyResp::Value(sb2.read(mem, pid))
                        });
                        rec2.record(mem, pid, StickyOp::Jam(false), || {
                            match sb2.jam(mem, pid, false) {
                                JamOutcome::Success => StickyResp::Success,
                                JamOutcome::Fail => StickyResp::Fail,
                            }
                        });
                    }
                },
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let h = rec.history();
                if !check(&h, StickySpec::new()).is_linearizable() {
                    return Err(format!("not linearizable: {h:?}"));
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    /// The paper's corollary: a randomized wait-free sticky bit from
    /// registers only.
    #[test]
    fn randomized_sticky_bit_from_registers_only() {
        for seed in 0..15 {
            let n = 3;
            let mut mem: SimMem<()> = SimMem::new(n);
            let cons = RandomizedConsensus::new(&mut mem, n, seed);
            let sb = ConsensusStickyBit::new(&mut mem, cons);
            let sb2 = sb.clone();
            let rec: std::sync::Arc<HistoryRecorder<StickyOp, StickyResp>> =
                std::sync::Arc::new(HistoryRecorder::new());
            let rec2 = std::sync::Arc::clone(&rec);
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed).with_crashes(1, 10_000)),
                RunOptions::default(),
                n,
                move |mem, pid| {
                    let bit = pid.0 % 2 == 0;
                    rec2.record(mem, pid, StickyOp::Jam(bit), || {
                        match sb2.jam(mem, pid, bit) {
                            JamOutcome::Success => StickyResp::Success,
                            JamOutcome::Fail => StickyResp::Fail,
                        }
                    });
                    rec2.record(mem, pid, StickyOp::Read, || {
                        StickyResp::Value(sb2.read(mem, pid))
                    });
                },
            );
            assert!(!out.aborted, "seed {seed}");
            let h = rec.history();
            assert!(
                check(&h, StickySpec::new()).is_linearizable(),
                "seed {seed}: {h:?}"
            );
        }
    }

    #[test]
    fn flush_then_fresh_round() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let cons = StickyWordConsensus::new(&mut mem);
        let sb = ConsensusStickyBit::new(&mut mem, cons);
        for round in 0..5 {
            let bit = round % 2 == 0;
            assert_eq!(sb.jam(&mem, Pid(0), bit), JamOutcome::Success);
            assert_eq!(sb.read(&mem, Pid(1)), Tri::from_bit(bit));
            sb.flush(&mem, Pid(1));
            assert_eq!(sb.read(&mem, Pid(0)), Tri::Undef);
        }
    }
}
