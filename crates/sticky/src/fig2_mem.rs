//! A backend adapter that realizes every sticky **word** as a Figure 2
//! sticky byte — ⌈log₂⌉ sticky *bits* plus announce registers.
//!
//! The rest of the workspace treats multi-bit sticky fields (`ProcID`,
//! `Next`, `Prev`, …) as primitives for model-checking tractability,
//! charging them `width` sticky bits in the Theorem 6.6 accounting.
//! [`Fig2Mem`] discharges that accounting debt *operationally*: wrap any
//! backend and every `sticky_word_*` operation is executed by the
//! [`JamWord`] helping algorithm over genuine sticky bits. Running the full
//! universal construction over `Fig2Mem<SimMem>` (see the workspace
//! integration tests) reproduces the paper's claim in its literal form —
//! **O(n² log n) sticky bits and safe registers only**.

use crate::JamWord;
use sbu_mem::{
    AtomicId, DataId, DataMem, JamOutcome, Pid, SafeId, StickyBitId, StickyWordId, TasId, Tri,
    Word, WordMem,
};

/// Backend wrapper: sticky words become Figure 2 sticky bytes.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid, WordMem, JamOutcome};
/// use sbu_sticky::fig2_mem::Fig2Mem;
///
/// // 4 processors, 10-bit sticky words.
/// let mut mem = Fig2Mem::new(NativeMem::<()>::new(), 4, 10);
/// let w = mem.alloc_sticky_word();
/// assert_eq!(mem.sticky_word_jam(Pid(0), w, 777), JamOutcome::Success);
/// assert_eq!(mem.sticky_word_jam(Pid(1), w, 778), JamOutcome::Fail);
/// assert_eq!(mem.sticky_word_read(Pid(1), w), Some(777));
/// // No primitive sticky word was allocated — only sticky bits:
/// assert_eq!(mem.inner().allocation_census().sticky_words, 0);
/// assert_eq!(mem.inner().allocation_census().sticky_bits, 10);
/// ```
pub struct Fig2Mem<M> {
    inner: M,
    n: usize,
    width: u32,
    words: Vec<JamWord>,
}

impl<M> std::fmt::Debug for Fig2Mem<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fig2Mem")
            .field("n_procs", &self.n)
            .field("width", &self.width)
            .field("words_realized", &self.words.len())
            .finish_non_exhaustive()
    }
}

impl<M: WordMem> Fig2Mem<M> {
    /// Wrap `inner` for `n` processors; every sticky word allocated through
    /// this adapter holds `width`-bit values (`width ≤ 62`).
    pub fn new(inner: M, n: usize, width: u32) -> Self {
        assert!(n >= 1);
        assert!((1..=62).contains(&width));
        Self {
            inner,
            n,
            width,
            words: Vec::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Number of sticky words realized as sticky bytes.
    pub fn words_realized(&self) -> usize {
        self.words.len()
    }
}

impl<M: WordMem> WordMem for Fig2Mem<M> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        self.inner.alloc_safe(init)
    }

    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        self.inner.alloc_atomic(init)
    }

    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        self.inner.alloc_sticky_bit()
    }

    fn alloc_sticky_bits(&mut self, count: usize) -> Vec<StickyBitId> {
        self.inner.alloc_sticky_bits(count)
    }

    fn alloc_sticky_word(&mut self) -> StickyWordId {
        let jw = JamWord::new(&mut self.inner, self.n, self.width);
        self.words.push(jw);
        StickyWordId(self.words.len() - 1)
    }

    fn alloc_tas(&mut self) -> TasId {
        self.inner.alloc_tas()
    }

    fn safe_read(&self, pid: Pid, r: SafeId) -> Word {
        self.inner.safe_read(pid, r)
    }

    fn safe_write(&self, pid: Pid, r: SafeId, v: Word) {
        self.inner.safe_write(pid, r, v)
    }

    fn atomic_read(&self, pid: Pid, r: AtomicId) -> Word {
        self.inner.atomic_read(pid, r)
    }

    fn atomic_write(&self, pid: Pid, r: AtomicId, v: Word) {
        self.inner.atomic_write(pid, r, v)
    }

    fn rmw(&self, pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.inner.rmw(pid, r, f)
    }

    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        self.inner.sticky_jam(pid, s, v)
    }

    fn sticky_read(&self, pid: Pid, s: StickyBitId) -> Tri {
        self.inner.sticky_read(pid, s)
    }

    fn sticky_read_word(&self, pid: Pid, bits: &[StickyBitId]) -> Option<Word> {
        self.inner.sticky_read_word(pid, bits)
    }

    fn sticky_flush(&self, pid: Pid, s: StickyBitId) {
        self.inner.sticky_flush(pid, s)
    }

    fn sticky_word_jam(&self, pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        let jw = &self.words[s.0];
        assert!(
            v <= jw.max_value(),
            "value {v} exceeds the {}-bit sticky byte realizing this word",
            jw.width()
        );
        let (outcome, _) = jw.jam(&self.inner, pid, v);
        outcome
    }

    fn sticky_word_read(&self, pid: Pid, s: StickyWordId) -> Option<Word> {
        self.words[s.0].read(&self.inner, pid)
    }

    fn sticky_word_flush(&self, pid: Pid, s: StickyWordId) {
        self.words[s.0].flush(&self.inner, pid)
    }

    fn tas_test_and_set(&self, pid: Pid, t: TasId) -> bool {
        self.inner.tas_test_and_set(pid, t)
    }

    fn tas_read(&self, pid: Pid, t: TasId) -> bool {
        self.inner.tas_read(pid, t)
    }

    fn tas_reset(&self, pid: Pid, t: TasId) {
        self.inner.tas_reset(pid, t)
    }

    fn op_invoke(&self, pid: Pid) -> u64 {
        self.inner.op_invoke(pid)
    }

    fn op_return(&self, pid: Pid) -> u64 {
        self.inner.op_return(pid)
    }

    fn persist(&self, pid: Pid) {
        self.inner.persist(pid)
    }
}

impl<P: Clone, M: DataMem<P>> DataMem<P> for Fig2Mem<M> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        self.inner.alloc_data(init)
    }

    fn data_read(&self, pid: Pid, d: DataId) -> Option<P> {
        self.inner.data_read(pid, d)
    }

    fn data_write(&self, pid: Pid, d: DataId, v: P) {
        self.inner.data_write(pid, d, v)
    }

    fn data_clear(&self, pid: Pid, d: DataId) {
        self.inner.data_clear(pid, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, RandomAdversary, RunOptions, SimMem};
    use std::sync::Arc;

    #[test]
    fn word_semantics_match_the_primitive() {
        let mut mem = Fig2Mem::new(NativeMem::<()>::new(), 2, 8);
        let w = mem.alloc_sticky_word();
        assert_eq!(mem.sticky_word_read(Pid(0), w), None);
        assert_eq!(mem.sticky_word_jam(Pid(0), w, 0xAB), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), w, 0xAB), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), w, 0xBA), JamOutcome::Fail);
        assert_eq!(mem.sticky_word_read(Pid(1), w), Some(0xAB));
        mem.sticky_word_flush(Pid(0), w);
        assert_eq!(mem.sticky_word_read(Pid(0), w), None);
        assert_eq!(mem.sticky_word_jam(Pid(1), w, 3), JamOutcome::Success);
        assert_eq!(mem.words_realized(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_values_are_rejected() {
        let mut mem = Fig2Mem::new(NativeMem::<()>::new(), 2, 4);
        let w = mem.alloc_sticky_word();
        mem.sticky_word_jam(Pid(0), w, 16);
    }

    #[test]
    fn pass_through_primitives_still_work() {
        let mut mem = Fig2Mem::new(NativeMem::<String>::new(), 2, 4);
        let s = mem.alloc_safe(1);
        let a = mem.alloc_atomic(2);
        let b = mem.alloc_sticky_bit();
        let t = mem.alloc_tas();
        let d = mem.alloc_data(Some("x".to_string()));
        assert_eq!(mem.safe_read(Pid(0), s), 1);
        assert_eq!(mem.rmw(Pid(0), a, &|x| x + 1), 2);
        assert!(mem.sticky_jam(Pid(0), b, true).is_success());
        assert!(!mem.tas_test_and_set(Pid(0), t));
        assert_eq!(mem.data_read(Pid(0), d), Some("x".to_string()));
        assert!(mem.op_invoke(Pid(0)) < mem.op_return(Pid(0)));
    }

    /// Concurrent jams through the adapter over the simulator: exactly the
    /// sticky-word contract, with zero primitive sticky words underneath.
    #[test]
    fn adversarial_jams_agree_over_sim() {
        for seed in 0..20 {
            let n = 3;
            let sim: SimMem<()> = SimMem::new(n);
            let mut mem = Fig2Mem::new(sim.clone(), n, 5);
            let w = mem.alloc_sticky_word();
            let mem = Arc::new(mem);
            let mem2 = Arc::clone(&mem);
            let out = run_uniform(
                &sim,
                Box::new(RandomAdversary::new(seed).with_crashes(1, 20_000)),
                RunOptions::default(),
                n,
                move |_sim, pid| {
                    let outcome = mem2.sticky_word_jam(pid, w, pid.0 as u64 + 7);
                    (outcome, mem2.sticky_word_read(pid, w))
                },
            );
            assert!(out.violations.is_empty(), "seed {seed}");
            let (_, _, _, prim_words, _, _) = sim.census();
            assert_eq!(prim_words, 0, "no primitive sticky words may exist");
            let finals: Vec<Option<Word>> = out.results().iter().map(|(_, v)| *v).collect();
            if let Some(&Some(first)) = finals.first() {
                assert!(finals.iter().all(|&v| v == Some(first)), "seed {seed}");
                assert!((7..7 + n as u64).contains(&first));
            }
            for (i, o) in out.outcomes.iter().enumerate() {
                if let Some((outcome, seen)) = o.completed() {
                    assert_eq!(
                        outcome.is_success(),
                        seen.unwrap() == i as u64 + 7,
                        "seed {seed} p{i}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod conformance_tests {
    use super::*;
    use sbu_mem::native::NativeMem;

    /// The adapter satisfies the same backend contract as the primitives it
    /// replaces.
    #[test]
    fn fig2_adapter_conforms() {
        let mut mem = Fig2Mem::new(NativeMem::<String>::new(), 2, 16);
        sbu_mem::conformance::exercise_word_mem(&mut mem);
        sbu_mem::conformance::exercise_data_mem(&mut mem, "a".to_string(), "b".to_string());
    }
}
