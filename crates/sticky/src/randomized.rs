//! Randomized binary consensus from registers only (the paper's
//! references \[1\]–\[4\] substrate).
//!
//! Deterministic wait-free consensus from registers is impossible (FLP /
//! Dolev–Dwork–Stockmeyer, see `sbu-rmw`'s empirical demonstration), but
//! *randomized* consensus — termination with probability 1 — is not. The
//! paper's introduction leans on this: composing a randomized consensus with
//! [`crate::from_consensus::ConsensusStickyBit`] yields a randomized
//! wait-free sticky bit, hence a randomized universal construction from
//! polynomially many bits.
//!
//! The implementation is the classic conciliator loop (after
//! Aspnes–Herlihy \[2\] / Gafni's adopt–commit):
//!
//! ```text
//! v ← input
//! for round r = 0, 1, …:
//!     v ← conciliator_r(v)            // probabilistically agreeing
//!     (status, v) ← adopt_commit_r(v) // deterministically safe
//!     if status = Commit: decide v
//! ```
//!
//! * The **adopt–commit** object guarantees: two commits agree; a commit
//!   forces every other participant to adopt the committed value; unanimous
//!   inputs always commit. It is built from multi-writer atomic registers.
//! * The **conciliator** makes all participants leave with the same value
//!   with constant probability, using a *voting weak shared coin*: each
//!   participant adds ±1 votes to its own single-writer register until the
//!   global tally clears a threshold, then takes the sign.
//!
//! Agreement and validity are deterministic (never violated); only the
//! number of rounds is random. A generous round budget is preallocated
//! because registers cannot be allocated mid-run; exceeding it panics with
//! vanishing probability (the paper's reference \[3\] is precisely about
//! bounding this).
//!
//! Honest accounting: we build on *atomic* registers. Lamport's register
//! constructions (reference \[9\]) implement single-writer atomic registers
//! from safe bits, and multi-writer from single-writer; we take those
//! classical reductions as given rather than reproducing them.

use crate::consensus::{Consensus, InitializableConsensus};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbu_mem::{AtomicId, Pid, Word, WordMem};
use std::sync::Arc;

/// Result of an adopt–commit round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcStatus {
    /// Safe to decide: every participant leaves with this value.
    Commit,
    /// Carry this value into the next round.
    Adopt,
}

/// Gafni-style adopt–commit object from atomic registers.
#[derive(Debug, Clone)]
pub struct AdoptCommit {
    n: usize,
    /// Announcements: `0 = ⊥`, else `value + 1`. Single-writer each.
    announce: Vec<AtomicId>,
    /// The racy write-once proposal register (multi-writer).
    proposal: AtomicId,
}

impl AdoptCommit {
    /// Allocate for processors `0..n`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize) -> Self {
        Self {
            n,
            announce: (0..n).map(|_| mem.alloc_atomic(0)).collect(),
            proposal: mem.alloc_atomic(0),
        }
    }

    /// One adopt–commit round.
    pub fn propose<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, v: Word) -> (AcStatus, Word) {
        mem.atomic_write(pid, self.announce[pid.0], v + 1);
        if mem.atomic_read(pid, self.proposal) == 0 {
            mem.atomic_write(pid, self.proposal, v + 1);
        }
        let p = mem.atomic_read(pid, self.proposal);
        debug_assert_ne!(p, 0, "someone wrote before any read returned non-zero");
        let adopted = p - 1;
        if adopted == v {
            let unanimous = (0..self.n).all(|j| {
                let a = mem.atomic_read(pid, self.announce[j]);
                a == 0 || a == v + 1
            });
            if unanimous {
                return (AcStatus::Commit, v);
            }
        }
        (AcStatus::Adopt, adopted)
    }

    /// Non-atomic reset.
    pub fn reset<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        for &a in &self.announce {
            mem.atomic_write(pid, a, 0);
        }
        mem.atomic_write(pid, self.proposal, 0);
    }
}

/// A voting weak shared coin plus value-announcement conciliator.
#[derive(Debug, Clone)]
pub struct Conciliator {
    n: usize,
    /// Per-processor vote tallies, biased by [`Conciliator::BIAS`].
    votes: Vec<AtomicId>,
    /// Value announcements: `0 = ⊥`, else `value + 1`.
    seen: Vec<AtomicId>,
    threshold: i64,
}

impl Conciliator {
    const BIAS: Word = 1 << 32;

    /// Allocate for processors `0..n`. The coin terminates when the global
    /// tally reaches `±threshold` (default `n + 1` votes of margin).
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize) -> Self {
        Self {
            n,
            votes: (0..n).map(|_| mem.alloc_atomic(Self::BIAS)).collect(),
            seen: (0..n).map(|_| mem.alloc_atomic(0)).collect(),
            threshold: n as i64 + 1,
        }
    }

    /// Produce a value: the unanimous input if there is one (validity),
    /// otherwise the shared coin's sign.
    pub fn propose<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        v: Word,
        rng: &mut SmallRng,
    ) -> Word {
        debug_assert!(v <= 1);
        mem.atomic_write(pid, self.seen[pid.0], v + 1);
        let coin = self.flip(mem, pid, rng);
        let mut values = [false; 2];
        for j in 0..self.n {
            match mem.atomic_read(pid, self.seen[j]) {
                0 => {}
                w => values[(w - 1) as usize] = true,
            }
        }
        match (values[0], values[1]) {
            (true, false) => 0,
            (false, true) => 1,
            _ => coin as Word,
        }
    }

    /// The voting weak shared coin: add ±1 votes until the global tally
    /// clears the threshold; return its sign.
    fn flip<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, rng: &mut SmallRng) -> bool {
        let mut my_tally: i64 = mem.atomic_read(pid, self.votes[pid.0]) as i64 - Self::BIAS as i64;
        loop {
            let vote: i64 = if rng.gen() { 1 } else { -1 };
            my_tally += vote;
            mem.atomic_write(
                pid,
                self.votes[pid.0],
                (my_tally + Self::BIAS as i64) as Word,
            );
            let total: i64 = (0..self.n)
                .map(|j| mem.atomic_read(pid, self.votes[j]) as i64 - Self::BIAS as i64)
                .sum();
            if total.abs() >= self.threshold {
                return total >= 0;
            }
        }
    }

    /// Non-atomic reset.
    pub fn reset<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        for &r in &self.votes {
            mem.atomic_write(pid, r, Self::BIAS);
        }
        for &r in &self.seen {
            mem.atomic_write(pid, r, 0);
        }
    }
}

struct Inner {
    n: usize,
    rounds: Vec<(Conciliator, AdoptCommit)>,
    /// Decision announcements: `0 = ⊥`, else `value + 1`.
    decided: Vec<AtomicId>,
    rngs: Vec<parking_lot::Mutex<SmallRng>>,
}

/// Randomized wait-free binary consensus from atomic registers only.
///
/// Agreement and validity hold in **every** execution; termination holds
/// with probability 1 (within the preallocated round budget, which panicking
/// enforces loudly rather than silently).
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_sticky::{Consensus, RandomizedConsensus};
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let rc = RandomizedConsensus::new(&mut mem, 2, 0xC0FFEE);
/// let d = rc.propose(&mem, Pid(0), 1);
/// assert_eq!(d, 1); // solo: my value wins
/// assert_eq!(rc.propose(&mem, Pid(1), 0), 1);
/// ```
#[derive(Clone)]
pub struct RandomizedConsensus {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for RandomizedConsensus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomizedConsensus")
            .field("n_procs", &self.inner.n)
            .field("round_budget", &self.inner.rounds.len())
            .finish_non_exhaustive()
    }
}

/// Preallocated round budget. Each round commits unanimity with constant
/// probability, so 64 rounds fail with probability ≈ 2⁻⁶⁴-ish.
pub const MAX_ROUNDS: usize = 64;

impl RandomizedConsensus {
    /// Allocate for processors `0..n`, with deterministic per-processor
    /// randomness derived from `seed`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize, seed: u64) -> Self {
        let rounds = (0..MAX_ROUNDS)
            .map(|_| (Conciliator::new(mem, n), AdoptCommit::new(mem, n)))
            .collect();
        Self {
            inner: Arc::new(Inner {
                n,
                rounds,
                decided: (0..n).map(|_| mem.alloc_atomic(0)).collect(),
                rngs: (0..n)
                    .map(|i| {
                        parking_lot::Mutex::new(SmallRng::seed_from_u64(
                            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(i as u64),
                        ))
                    })
                    .collect(),
            }),
        }
    }

    /// Number of participating processors.
    pub fn n_procs(&self) -> usize {
        self.inner.n
    }

    /// Like [`Consensus::propose`], but also reports how many
    /// conciliator/adopt–commit rounds this call used — the random variable
    /// the expected-time analyses of references \[1\]–\[4\] bound.
    pub fn propose_counting<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        value: Word,
    ) -> (Word, usize) {
        assert!(value <= 1, "binary consensus takes 0 or 1");
        let mut rng = self.inner.rngs[pid.0].lock();
        let mut v = value;
        for (round, (conc, ac)) in self.inner.rounds.iter().enumerate() {
            v = conc.propose(mem, pid, v, &mut rng);
            let (status, w) = ac.propose(mem, pid, v);
            v = w;
            if status == AcStatus::Commit {
                mem.atomic_write(pid, self.inner.decided[pid.0], v + 1);
                return (v, round + 1);
            }
        }
        panic!("randomized consensus exceeded its {MAX_ROUNDS} round budget");
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for RandomizedConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(value <= 1, "binary consensus takes 0 or 1");
        let mut rng = self.inner.rngs[pid.0].lock();
        let mut v = value;
        for (conc, ac) in &self.inner.rounds {
            v = conc.propose(mem, pid, v, &mut rng);
            let (status, w) = ac.propose(mem, pid, v);
            v = w;
            if status == AcStatus::Commit {
                mem.atomic_write(pid, self.inner.decided[pid.0], v + 1);
                return v;
            }
        }
        panic!(
            "randomized consensus exceeded its {} round budget \
             (probability ~0; raise MAX_ROUNDS if it ever triggers)",
            MAX_ROUNDS
        );
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        (0..self.inner.n)
            .map(|j| mem.atomic_read(pid, self.inner.decided[j]))
            .find(|&d| d != 0)
            .map(|d| d - 1)
    }
}

impl<M: WordMem + ?Sized> InitializableConsensus<M> for RandomizedConsensus {
    fn reset(&self, mem: &M, pid: Pid) {
        for (conc, ac) in &self.inner.rounds {
            conc.reset(mem, pid);
            ac.reset(mem, pid);
        }
        for &d in &self.inner.decided {
            mem.atomic_write(pid, d, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, RandomAdversary, RunOptions, SimMem};
    use std::sync::Arc as StdArc;

    #[test]
    fn adopt_commit_unanimous_inputs_commit() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let ac = AdoptCommit::new(&mut mem, 3);
        for i in 0..3 {
            assert_eq!(ac.propose(&mem, Pid(i), 1), (AcStatus::Commit, 1));
        }
    }

    #[test]
    fn adopt_commit_commit_forces_adoption() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let ac = AdoptCommit::new(&mut mem, 2);
        assert_eq!(ac.propose(&mem, Pid(0), 0), (AcStatus::Commit, 0));
        // A later conflicting proposal must adopt 0.
        assert_eq!(ac.propose(&mem, Pid(1), 1), (AcStatus::Adopt, 0));
    }

    #[test]
    fn adopt_commit_never_double_commits_exhaustively() {
        use sbu_sim::{EpisodeResult, Explorer, Scripted};
        let explorer = Explorer::new(2_000_000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let ac = AdoptCommit::new(&mut mem, 2);
            let ac2 = ac.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| ac2.propose(mem, pid, pid.0 as Word),
            );
            let verdict = (|| {
                let rs: Vec<(AcStatus, Word)> = out.results().into_iter().copied().collect();
                // Two commits must agree; a commit forces the other to the
                // same value.
                if let Some((_, w)) = rs.iter().find(|(s, _)| *s == AcStatus::Commit) {
                    if rs.iter().any(|(_, u)| u != w) {
                        return Err(format!("commit {w} not respected: {rs:?}"));
                    }
                }
                for (_, w) in &rs {
                    if *w > 1 {
                        return Err(format!("invalid value {w}"));
                    }
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn conciliator_preserves_unanimity() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let c = Conciliator::new(&mut mem, 3);
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..3 {
            assert_eq!(c.propose(&mem, Pid(i), 1, &mut rng), 1);
        }
    }

    #[test]
    fn randomized_consensus_simulated_agreement_and_validity() {
        for seed in 0..30 {
            let n = 3;
            let mut mem: SimMem<()> = SimMem::new(n);
            let rc = RandomizedConsensus::new(&mut mem, n, seed);
            let rc2 = rc.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed ^ 0xABCD).with_crashes(1, 5_000)),
                RunOptions::default(),
                n,
                move |mem, pid| rc2.propose(mem, pid, (pid.0 % 2) as Word),
            );
            assert!(!out.aborted, "seed {seed}: round budget too small?");
            let ds: Vec<Word> = out.results().into_iter().copied().collect();
            if let Some(&first) = ds.first() {
                assert!(ds.iter().all(|&d| d == first), "seed {seed}: {ds:?}");
                assert!(first <= 1);
                assert_eq!(
                    Consensus::<SimMem<()>>::decision(&rc, &mem, Pid(0)),
                    Some(first)
                );
            }
        }
    }

    #[test]
    fn randomized_consensus_native_threads() {
        for seed in 0..10 {
            let n = 6;
            let mut mem: NativeMem<()> = NativeMem::new();
            let rc = RandomizedConsensus::new(&mut mem, n, seed);
            let mem = StdArc::new(mem);
            let ds: Vec<Word> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let mem = StdArc::clone(&mem);
                        let rc = rc.clone();
                        s.spawn(move || rc.propose(&*mem, Pid(i), (i % 2) as Word))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            assert!(ds.iter().all(|&d| d == ds[0]), "seed {seed}: {ds:?}");
        }
    }

    #[test]
    fn reset_permits_reuse() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let rc = RandomizedConsensus::new(&mut mem, 2, 9);
        assert_eq!(rc.propose(&mem, Pid(0), 1), 1);
        InitializableConsensus::<NativeMem<()>>::reset(&rc, &mem, Pid(0));
        assert_eq!(
            Consensus::<NativeMem<()>>::decision(&rc, &mem, Pid(1)),
            None
        );
        assert_eq!(rc.propose(&mem, Pid(1), 0), 0);
    }
}
