//! Consensus objects (Fischer–Lynch–Paterson interface, Section 4).
//!
//! A consensus object lets `n` processors each propose a value and agree on
//! exactly one of the proposals. The paper positions the Sticky Bit as "a
//! memory-oriented version of consensus": jamming *is* proposing, and the
//! stuck value *is* the decision. This module fixes the trait and gives the
//! deterministic implementations:
//!
//! * [`StickyBinaryConsensus`] — one sticky bit (binary values),
//! * [`StickyWordConsensus`] — one primitive sticky word (multi-valued),
//! * [`JamWordConsensus`] — ℓ sticky bits via Figure 2 (multi-valued, the
//!   paper's own reduction),
//! * [`RmwConsensus`] — one **3-valued** RMW register `{⊥, 0, 1}`: the
//!   level at which the paper proves the RMW hierarchy collapses.
//!
//! All are *initializable*: a non-atomic `reset` restores the object for
//! reuse, the property Section 4 requires for building sticky bits out of
//! consensus (see [`crate::from_consensus`]).

use crate::JamWord;
#[allow(unused_imports)]
use sbu_mem::SafeId;
use sbu_mem::{AtomicId, Pid, StickyBitId, StickyWordId, Word, WordMem};

/// Wait-free `n`-processor consensus.
///
/// `propose` must satisfy, in every concurrent execution:
/// * **Agreement** — all returned decisions are equal;
/// * **Validity** — the decision is some participant's proposal;
/// * **Wait-freedom** — every call returns in a bounded number of steps.
pub trait Consensus<M: WordMem + ?Sized> {
    /// Propose `value`; returns the agreed decision.
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word;

    /// The decision, if one has been reached (without proposing).
    fn decision(&self, mem: &M, pid: Pid) -> Option<Word>;
}

/// Consensus that can be reused after a **non-atomic** reset: the caller
/// must guarantee the reset overlaps no other operation (the same caveat as
/// `Flush` in Definition 4.1).
pub trait InitializableConsensus<M: WordMem + ?Sized>: Consensus<M> {
    /// Restore the object to its undecided state.
    fn reset(&self, mem: &M, pid: Pid);
}

/// Binary consensus from a single sticky bit: `propose(v)` jams `v` and
/// decides whatever stuck. The most literal form of the paper's
/// "Sticky Bit = consensus" slogan.
#[derive(Debug, Clone, Copy)]
pub struct StickyBinaryConsensus {
    bit: StickyBitId,
}

impl StickyBinaryConsensus {
    /// Allocate the underlying sticky bit.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            bit: mem.alloc_sticky_bit(),
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for StickyBinaryConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(value <= 1, "binary consensus takes 0 or 1");
        // The jam outcome already determines the decision (Definition 4.1:
        // Success iff the bit now holds our value), so no re-read is needed.
        if mem.sticky_jam(pid, self.bit, value == 1).is_success() {
            value
        } else {
            1 - value
        }
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        mem.sticky_read(pid, self.bit).bit().map(Word::from)
    }
}

impl<M: WordMem + ?Sized> InitializableConsensus<M> for StickyBinaryConsensus {
    fn reset(&self, mem: &M, pid: Pid) {
        mem.sticky_flush(pid, self.bit);
    }
}

/// Multi-valued consensus from one primitive sticky word.
#[derive(Debug, Clone, Copy)]
pub struct StickyWordConsensus {
    word: StickyWordId,
}

impl StickyWordConsensus {
    /// Allocate the underlying sticky word.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            word: mem.alloc_sticky_word(),
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for StickyWordConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        // On Success our own value is the decision; only a failed jam needs
        // the read to learn the earlier winner.
        if mem.sticky_word_jam(pid, self.word, value).is_success() {
            value
        } else {
            mem.sticky_word_read(pid, self.word)
                .expect("read after failed jam cannot be undefined")
        }
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        mem.sticky_word_read(pid, self.word)
    }
}

impl<M: WordMem + ?Sized> InitializableConsensus<M> for StickyWordConsensus {
    fn reset(&self, mem: &M, pid: Pid) {
        mem.sticky_word_flush(pid, self.word);
    }
}

/// Multi-valued consensus from ℓ sticky *bits* via the Figure 2 helping
/// algorithm — the paper's own construction, showing sticky words are not
/// extra power.
#[derive(Debug, Clone)]
pub struct JamWordConsensus {
    word: JamWord,
}

impl JamWordConsensus {
    /// Consensus over values `0..2^width` for processors `0..n`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize, width: u32) -> Self {
        Self {
            word: JamWord::new(mem, n, width),
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for JamWordConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        let (_, decided) = self.word.jam(mem, pid, value);
        decided
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        self.word.read(mem, pid)
    }
}

impl<M: WordMem + ?Sized> InitializableConsensus<M> for JamWordConsensus {
    fn reset(&self, mem: &M, pid: Pid) {
        self.word.flush(mem, pid);
    }
}

/// Binary consensus from a single **3-valued** atomic RMW register holding
/// `{⊥, 0, 1}` (encoded 0/1/2).
///
/// This is the constructive half of the paper's hierarchy-collapse claim
/// (Sections 1 and 7): a 2-bit RMW — three used values — already decides
/// n-processor consensus, hence simulates sticky bits, hence is universal.
#[derive(Debug, Clone, Copy)]
pub struct RmwConsensus {
    reg: AtomicId,
}

const RMW_UNDEF: Word = 0;

impl RmwConsensus {
    /// Allocate the 3-valued register, initialized to `⊥`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M) -> Self {
        Self {
            reg: mem.alloc_atomic(RMW_UNDEF),
        }
    }
}

impl<M: WordMem + ?Sized> Consensus<M> for RmwConsensus {
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(value <= 1, "binary consensus takes 0 or 1");
        let old = mem.rmw(pid, self.reg, &move |x| {
            if x == RMW_UNDEF {
                value + 1
            } else {
                x
            }
        });
        if old == RMW_UNDEF {
            value
        } else {
            old - 1
        }
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        match mem.atomic_read(pid, self.reg) {
            RMW_UNDEF => None,
            v => Some(v - 1),
        }
    }
}

impl<M: WordMem + ?Sized> InitializableConsensus<M> for RmwConsensus {
    fn reset(&self, mem: &M, pid: Pid) {
        mem.atomic_write(pid, self.reg, RMW_UNDEF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};

    /// Exhaustively check agreement + validity for a binary consensus
    /// implementation over all 2-processor schedules with inputs 0/1.
    fn exhaustive_binary_check<C, F>(make: F)
    where
        C: Consensus<SimMem<()>> + Clone + Send + Sync + 'static,
        F: Fn(&mut SimMem<()>) -> C,
    {
        let explorer = Explorer::new(500_000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let cons = make(&mut mem);
            let cons2 = cons.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| cons2.propose(mem, pid, pid.0 as Word),
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let decisions: Vec<Word> = out.results().into_iter().copied().collect();
                if let Some(&first) = decisions.first() {
                    if !decisions.iter().all(|&d| d == first) {
                        return Err(format!("disagreement {decisions:?}"));
                    }
                    if first > 1 {
                        return Err(format!("invalid decision {first}"));
                    }
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    #[test]
    fn sticky_binary_consensus_exhaustive() {
        exhaustive_binary_check(StickyBinaryConsensus::new);
    }

    #[test]
    fn sticky_word_consensus_exhaustive() {
        exhaustive_binary_check(StickyWordConsensus::new);
    }

    #[test]
    fn jam_word_consensus_exhaustive() {
        exhaustive_binary_check(|mem| JamWordConsensus::new(mem, 2, 1));
    }

    #[test]
    fn rmw_consensus_exhaustive() {
        exhaustive_binary_check(RmwConsensus::new);
    }

    #[test]
    fn decisions_are_observable_and_resettable() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let objects: Vec<Box<dyn InitializableConsensus<NativeMem<()>>>> = vec![
            Box::new(StickyBinaryConsensus::new(&mut mem)),
            Box::new(StickyWordConsensus::new(&mut mem)),
            Box::new(JamWordConsensus::new(&mut mem, 2, 1)),
            Box::new(RmwConsensus::new(&mut mem)),
        ];
        for c in &objects {
            assert_eq!(c.decision(&mem, Pid(0)), None);
            assert_eq!(c.propose(&mem, Pid(0), 1), 1);
            assert_eq!(c.decision(&mem, Pid(1)), Some(1));
            // Latecomers adopt the decision.
            assert_eq!(c.propose(&mem, Pid(1), 0), 1);
            c.reset(&mem, Pid(0));
            assert_eq!(c.decision(&mem, Pid(0)), None);
            assert_eq!(c.propose(&mem, Pid(1), 0), 0);
        }
    }

    #[test]
    fn multivalued_consensus_over_wide_domain() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let c = JamWordConsensus::new(&mut mem, 3, 20);
        assert_eq!(c.propose(&mem, Pid(2), 777_777), 777_777);
        assert_eq!(c.propose(&mem, Pid(0), 123), 777_777);
        let w = StickyWordConsensus::new(&mut mem);
        assert_eq!(w.propose(&mem, Pid(0), u64::MAX - 1), u64::MAX - 1);
    }
}

/// Multi-valued consensus from ⌈log₂⌉ **binary** consensus objects — the
/// Figure 2 algorithm with `propose` in place of `Jam`.
///
/// Every participant announces its value in a single-writer safe register,
/// then agrees on the result bit by bit, always proposing the bits of a
/// *candidate* value whose bits match the agreed prefix; when a decided bit
/// disagrees, it adopts an announced value matching the new prefix (one
/// must exist: the decided bit was proposed on behalf of an announced
/// value). Composing this with
/// [`RandomizedConsensus`](crate::RandomizedConsensus) yields multi-valued
/// randomized consensus from registers only — which the
/// consensus-parameterized universal construction in `sbu-core` turns into
/// the paper's "(randomized) wait-free" universal object.
#[derive(Debug, Clone)]
pub struct BitwiseConsensus<C> {
    n: usize,
    width: u32,
    bits: Vec<C>,
    /// `g_i`: processor `i` has announced.
    announced: Vec<sbu_mem::SafeId>,
    /// `v_i`: processor `i`'s announced value (single-writer).
    values: Vec<sbu_mem::SafeId>,
    /// `consensus.candidate_switch`: helping events — a decided bit
    /// disagreed with the candidate and an announced value was adopted.
    /// Plain per-lane cells, never a [`WordMem`] step.
    switches: sbu_obs::Counter,
}

impl<C> BitwiseConsensus<C> {
    /// Build from `width` binary consensus objects created by `make`.
    pub fn new<M: WordMem>(
        mem: &mut M,
        n: usize,
        width: u32,
        mut make: impl FnMut(&mut M) -> C,
    ) -> Self {
        assert!(n >= 1 && (1..=63).contains(&width));
        Self {
            n,
            width,
            bits: (0..width).map(|_| make(mem)).collect(),
            announced: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            values: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            switches: sbu_obs::Counter::disabled(),
        }
    }

    /// Attach observability instruments registered against `registry`
    /// (builder-style; a detached object records nothing).
    pub fn with_obs(mut self, registry: &sbu_obs::Registry) -> Self {
        self.switches = registry.counter("consensus.candidate_switch");
        self
    }

    /// Largest representable value.
    pub fn max_value(&self) -> Word {
        (1u64 << self.width) - 1
    }

    fn find_candidate<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        prefix_mask: Word,
        target: Word,
    ) -> Option<Word> {
        for k in 0..self.n {
            if mem.safe_read(pid, self.announced[k]) != 0 {
                let vk = mem.safe_read(pid, self.values[k]);
                if vk & prefix_mask == target && vk <= self.max_value() {
                    return Some(vk);
                }
            }
        }
        None
    }
}

impl<M, C> Consensus<M> for BitwiseConsensus<C>
where
    M: WordMem + ?Sized,
    C: Consensus<M>,
{
    fn propose(&self, mem: &M, pid: Pid, value: Word) -> Word {
        assert!(value <= self.max_value(), "value wider than the domain");
        assert!(pid.0 < self.n, "pid out of range");
        mem.safe_write(pid, self.values[pid.0], value);
        mem.safe_write(pid, self.announced[pid.0], 1);
        let mut candidate = value;
        for j in 0..self.width {
            let mine = candidate >> j & 1;
            let decided = self.bits[j as usize].propose(mem, pid, mine);
            if decided == mine {
                continue;
            }
            let prefix_mask: Word = (1u64 << (j + 1)) - 1;
            let target = (candidate & !(1u64 << j) | (decided << j)) & prefix_mask;
            self.switches.incr(pid.0);
            candidate = self
                .find_candidate(mem, pid, prefix_mask, target)
                .unwrap_or_else(|| {
                    panic!(
                        "bitwise-consensus invariant broken: bit {j} decided \
                         {decided} but no announced value matches the prefix"
                    )
                });
        }
        candidate
    }

    fn decision(&self, mem: &M, pid: Pid) -> Option<Word> {
        let mut value = 0u64;
        for j in 0..self.width {
            value |= self.bits[j as usize].decision(mem, pid)? << j;
        }
        Some(value)
    }
}

impl<M, C> InitializableConsensus<M> for BitwiseConsensus<C>
where
    M: WordMem + ?Sized,
    C: InitializableConsensus<M>,
{
    fn reset(&self, mem: &M, pid: Pid) {
        for b in &self.bits {
            b.reset(mem, pid);
        }
        for k in 0..self.n {
            mem.safe_write(pid, self.announced[k], 0);
        }
    }
}

#[cfg(test)]
mod bitwise_tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{run_uniform, RandomAdversary, RunOptions, SimMem};

    #[test]
    fn sequential_semantics() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let c = BitwiseConsensus::new(&mut mem, 2, 8, StickyBinaryConsensus::new);
        assert_eq!(Consensus::<NativeMem<()>>::decision(&c, &mem, Pid(0)), None);
        assert_eq!(c.propose(&mem, Pid(0), 0xA5), 0xA5);
        assert_eq!(c.propose(&mem, Pid(1), 0x5A), 0xA5);
        assert_eq!(
            Consensus::<NativeMem<()>>::decision(&c, &mem, Pid(1)),
            Some(0xA5)
        );
        InitializableConsensus::<NativeMem<()>>::reset(&c, &mem, Pid(0));
        assert_eq!(Consensus::<NativeMem<()>>::decision(&c, &mem, Pid(0)), None);
        assert_eq!(c.propose(&mem, Pid(1), 7), 7);
    }

    #[test]
    fn randomized_multivalued_agreement_fuzz() {
        for seed in 0..10 {
            let n = 3;
            let mut mem: SimMem<()> = SimMem::new(n);
            let rc_seed = std::cell::Cell::new(seed * 100);
            let c = BitwiseConsensus::new(&mut mem, n, 4, |mem| {
                rc_seed.set(rc_seed.get() + 1);
                crate::RandomizedConsensus::new(mem, n, rc_seed.get())
            });
            let c2 = c.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                n,
                move |mem, pid| c2.propose(mem, pid, pid.0 as Word + 5),
            );
            assert!(!out.aborted);
            let ds: Vec<Word> = out.results().into_iter().copied().collect();
            assert!(ds.iter().all(|&d| d == ds[0]), "seed {seed}: {ds:?}");
            assert!((5..5 + n as u64).contains(&ds[0]), "validity, seed {seed}");
        }
    }
}
