//! # sbu-sticky — Sticky Bytes, leader election, and consensus (Section 4)
//!
//! This crate implements Section 4 of the paper plus the consensus substrate
//! the rest of the workspace builds on:
//!
//! * [`jam_word::JamWord`] — the **Sticky Byte**: an ℓ-bit write-once value
//!   built from ℓ atomic sticky bits using the helping algorithm of
//!   Figure 2. Processors that discover they must fail *help* the processor
//!   that can still succeed, the paper's central paradigm.
//! * [`election::LeaderElection`] — wait-free leader election: every
//!   processor jams its own id into a ⌈log₂ n⌉-bit sticky byte
//!   (the paper's O(log n) observation).
//! * [`consensus`] — the [`consensus::Consensus`] /
//!   [`consensus::InitializableConsensus`] traits and deterministic
//!   implementations from sticky primitives and from 3-valued RMW (the
//!   level at which the RMW hierarchy collapses).
//! * [`randomized`] — randomized binary consensus from **atomic registers
//!   only** (adopt–commit rounds plus a voting weak shared coin, after
//!   Aspnes–Herlihy, the paper's reference \[2\]), which together with
//!   [`from_consensus`] yields the paper's corollary that polynomially many
//!   safe bits suffice for a *randomized* wait-free universal construction.
//! * [`from_consensus::ConsensusStickyBit`] — an atomic sticky bit from one
//!   *initializable* single-bit consensus object and two safe bits
//!   (Section 4's observation), closing the loop: sticky bit ≡ consensus.
//! * [`recoverable`] — crash–restart recoverable variants of the sticky
//!   byte and leader election for `sbu_mem::DurableMem`'s persistency
//!   model: persistent (sticky-word) announcements plus flush-on-dependence
//!   fencing, exploiting jam idempotence so restart recovery is just
//!   re-jamming.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus;
pub mod election;
pub mod fig2_mem;
pub mod from_consensus;
pub mod jam_word;
pub mod randomized;
pub mod recoverable;

pub use consensus::{BitwiseConsensus, Consensus, InitializableConsensus};
pub use election::LeaderElection;
pub use fig2_mem::Fig2Mem;
pub use from_consensus::ConsensusStickyBit;
pub use jam_word::{JamObs, JamWord};
pub use randomized::RandomizedConsensus;
pub use recoverable::{RecoverableElection, RecoverableJamWord};

/// Number of bits needed to represent values `0..n` (at least 1).
pub fn bits_for(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros().min(usize::BITS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_covers_the_range() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
        for n in 1..100usize {
            let b = bits_for(n);
            assert!(1u64 << b >= n as u64, "n={n} b={b}");
        }
    }
}
