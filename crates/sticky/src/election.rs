//! Wait-free leader election (Section 4).
//!
//! "Observe, that if each processor tries to jam its own ID, the above
//! algorithm implements a wait-free leader-election in O(log n) time."
//! Exactly that: a ⌈log₂ n⌉-bit [`JamWord`] into which every candidate jams
//! its own pid. The first value to fully stick wins; helpers complete a
//! crashed winner's bits, so every participant — and any late reader —
//! agrees on the unique leader.

use crate::{bits_for, JamWord};
use sbu_mem::{Pid, Word, WordMem};

/// A one-shot wait-free leader election object for `n` processors.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid};
/// use sbu_sticky::LeaderElection;
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let le = LeaderElection::new(&mut mem, 4);
/// let leader = le.elect(&mem, Pid(2));
/// assert_eq!(leader, Pid(2)); // running solo, I win
/// assert_eq!(le.elect(&mem, Pid(0)), Pid(2)); // latecomer learns the winner
/// assert_eq!(le.leader(&mem, Pid(1)), Some(Pid(2)));
/// ```
#[derive(Debug, Clone)]
pub struct LeaderElection {
    word: JamWord,
}

impl LeaderElection {
    /// Allocate an election object for processors `0..n`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize) -> Self {
        Self {
            word: JamWord::new(mem, n, bits_for(n)),
        }
    }

    /// Participate: jam my own id; returns the elected leader (possibly me).
    ///
    /// Wait-free in O(log n) sticky-bit operations plus helping scans.
    pub fn elect<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Pid {
        let (_, winner) = self.word.jam(mem, pid, pid.0 as Word);
        Pid(winner as usize)
    }

    /// Observe the leader without participating; `None` if the election has
    /// not completed.
    pub fn leader<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Pid> {
        self.word.read(mem, pid).map(|w| Pid(w as usize))
    }

    /// Reset for reuse. Non-atomic (Definition 4.1 caveat).
    pub fn flush<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.word.flush(mem, pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{
        run_uniform, EpisodeResult, Explorer, RandomAdversary, RunOptions, Scripted, SimMem,
    };
    use std::sync::Arc;

    #[test]
    fn solo_elects_self_and_is_idempotent() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let le = LeaderElection::new(&mut mem, 3);
        assert_eq!(le.leader(&mem, Pid(0)), None);
        assert_eq!(le.elect(&mem, Pid(1)), Pid(1));
        assert_eq!(le.elect(&mem, Pid(1)), Pid(1));
        assert_eq!(le.elect(&mem, Pid(2)), Pid(1));
    }

    #[test]
    fn flush_allows_a_fresh_election() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let le = LeaderElection::new(&mut mem, 2);
        assert_eq!(le.elect(&mem, Pid(0)), Pid(0));
        le.flush(&mem, Pid(1));
        assert_eq!(le.leader(&mem, Pid(1)), None);
        assert_eq!(le.elect(&mem, Pid(1)), Pid(1));
    }

    /// Leader election correctness over schedules: the full tree for two
    /// processors, and a bounded-exhaustive DFS prefix for three (the full
    /// 3-processor tree is astronomically large).
    fn explore_election(n: usize, max_schedules: usize) -> sbu_sim::ExploreReport {
        let explorer = Explorer::new(max_schedules);
        explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(n);
            let le = LeaderElection::new(&mut mem, n);
            let le2 = le.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                n,
                move |mem, pid| le2.elect(mem, pid),
            );
            let verdict = (|| {
                out.assert_clean();
                let leaders: Vec<Pid> = out.results().into_iter().copied().collect();
                let first = leaders[0];
                if !leaders.iter().all(|&l| l == first) {
                    return Err(format!("disagreement: {leaders:?}"));
                }
                if first.0 >= n {
                    return Err(format!("non-participant leader {first}"));
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        })
    }

    #[test]
    fn exhaustive_two_procs_unique_agreed_leader() {
        let report = explore_election(2, 1_000_000);
        report.assert_all_ok();
    }

    #[test]
    fn bounded_exhaustive_three_procs_unique_agreed_leader() {
        let report = explore_election(3, 30_000);
        report.assert_no_failures();
    }

    /// Even if the would-be winner crashes mid-jam, survivors agree.
    #[test]
    fn crash_of_any_proc_keeps_agreement() {
        for seed in 0..60 {
            let n = 5;
            let mut mem: SimMem<()> = SimMem::new(n);
            let le = LeaderElection::new(&mut mem, n);
            let le2 = le.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed).with_crashes(2, 50_000)),
                RunOptions::default(),
                n,
                move |mem, pid| le2.elect(mem, pid),
            );
            assert!(out.violations.is_empty());
            let leaders: Vec<Pid> = out.results().into_iter().copied().collect();
            if let Some(&first) = leaders.first() {
                assert!(
                    leaders.iter().all(|&l| l == first),
                    "seed {seed}: {leaders:?}"
                );
                assert!(first.0 < n);
            }
        }
    }

    #[test]
    fn native_contended_election_has_one_winner() {
        for _ in 0..10 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let n = 8;
            let le = LeaderElection::new(&mut mem, n);
            let mem = Arc::new(mem);
            let leaders: Vec<Pid> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        let le = le.clone();
                        s.spawn(move || le.elect(&*mem, Pid(i)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let first = leaders[0];
            assert!(leaders.iter().all(|&l| l == first));
            assert!(first.0 < n);
            assert_eq!(le.leader(&*mem, Pid(0)), Some(first));
        }
    }
}

#[cfg(test)]
mod complexity_tests {
    use super::*;
    use sbu_sim::{run_uniform, RoundRobin, RunOptions, SimMem};

    /// Lock in the measured O(log n) shape (experiment E2a) as a unit
    /// test: a solo election costs exactly ⌈log₂ n⌉ bit-jams plus the
    /// two announce writes (2 safe writes × 2 steps each) plus one read of
    /// bit 0 (the decided-byte fast path probing an undefined word).
    #[test]
    fn solo_election_costs_exactly_log2_n_plus_5_steps() {
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let mut mem: SimMem<()> = SimMem::new(1);
            let le = LeaderElection::new(&mut mem, n);
            let le2 = le.clone();
            let out = run_uniform(
                &mem,
                Box::new(RoundRobin::new()),
                RunOptions::default(),
                1,
                move |mem, _| le2.elect(mem, Pid(0)),
            );
            out.assert_clean();
            let expected = crate::bits_for(n) as u64 + 5;
            assert_eq!(
                out.steps, expected,
                "n = {n}: expected ⌈log₂ n⌉ + 5 = {expected} steps"
            );
        }
    }
}
