//! Crash–restart recoverable sticky objects (DESIGN.md §9).
//!
//! The sticky bit is write-once, which makes it the natural *durable*
//! primitive: a jam that reached persistent memory can never be un-agreed,
//! so recovery after a crash reduces to *re-jamming* — exactly the
//! idempotence the agreeing-jam clause of Definition 4.1 provides. This
//! module adapts Figure 2's helping algorithm to the crash–restart model of
//! `sbu_mem::DurableMem`, where sticky bits/words live in persistent memory
//! but an unfenced write in flight at a crash may or may not have persisted
//! (torn persist), and volatile safe registers do not survive at all.
//!
//! Two changes relative to [`crate::JamWord`]:
//!
//! 1. **Persistent announcements.** Figure 2 announces `v_i` in a volatile
//!    safe register; after a crash the announcements are gone while the
//!    jammed bits survive, stranding the helping invariant ("every stuck
//!    prefix extends to an announced value"). Here each processor announces
//!    by jamming a *sticky word* — write-once, persistent — and fences it
//!    with [`sbu_mem::WordMem::persist`] before touching any bit.
//! 2. **Flush-on-dependence.** Before the algorithm *acts on* an observed
//!    bit — adopting a candidate after a failed jam, or reporting a value to
//!    the caller — it co-jams the observed value (the agreeing jam makes it
//!    a co-writer of the location) and issues a persist fence. A fence also
//!    follows every bit the processor passes, so the defined bits always
//!    form a durable prefix: a crash can tear off at most the last unfenced
//!    bit, never punch a hole that would blend two proposals.
//!
//! The result is durably linearizable (checked by
//! `sbu_spec::linearize::check_durable` in `sbu-stress`): an acknowledged
//! jam survives any crash, an in-flight jam either takes effect entirely —
//! completed by helpers or by its own [`RecoverableJamWord::recover`] — or
//! vanishes without trace.

use crate::bits_for;
use sbu_mem::{JamOutcome, Pid, StickyBitId, StickyWordId, Tri, Word, WordMem};

/// A crash-recoverable ℓ-bit sticky byte for `n` processors.
///
/// One-shot: each processor's *first* jam fixes its announcement forever
/// (announcements are write-once sticky words); later jams by the same
/// processor drive the original announcement and report the object's true
/// value, which keeps repeated jams linearizable.
///
/// ```
/// use sbu_mem::{native::NativeMem, DurableMem, TornPersist, Pid, JamOutcome};
/// use sbu_sticky::recoverable::RecoverableJamWord;
///
/// let mut mem: DurableMem<NativeMem<()>> =
///     DurableMem::with_policy(NativeMem::new(), TornPersist::Lose);
/// let jw = RecoverableJamWord::new(&mut mem, 2, 8);
/// let (out, v) = jw.jam(&mem, Pid(0), 0xA5);
/// assert_eq!((out, v), (JamOutcome::Success, 0xA5));
/// // Full-system crash: the acknowledged jam survives even under `Lose`.
/// mem.crash_all::<()>(2);
/// mem.restart(Pid(0));
/// mem.restart(Pid(1));
/// assert_eq!(jw.recover(&mem, Pid(0)), Some((JamOutcome::Success, 0xA5)));
/// assert_eq!(jw.read(&mem, Pid(1)), Some(0xA5));
/// ```
#[derive(Debug, Clone)]
pub struct RecoverableJamWord {
    n: usize,
    width: u32,
    bits: Vec<StickyBitId>,
    /// Persistent announcements: `ann[i]` is processor `i`'s proposed value,
    /// write-once, fenced before any bit is jammed on its behalf.
    ann: Vec<StickyWordId>,
}

impl RecoverableJamWord {
    /// Allocate a recoverable sticky byte of `width` bits for `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63, or if `n` is 0.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize, width: u32) -> Self {
        assert!(n > 0, "at least one processor");
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        Self {
            n,
            width,
            bits: (0..width).map(|_| mem.alloc_sticky_bit()).collect(),
            ann: (0..n).map(|_| mem.alloc_sticky_word()).collect(),
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of participating processors.
    pub fn n_procs(&self) -> usize {
        self.n
    }

    /// Largest representable value.
    pub fn max_value(&self) -> Word {
        (1u64 << self.width) - 1
    }

    fn bit_of(value: Word, j: u32) -> bool {
        value >> j & 1 == 1
    }

    /// `Jam(value)`: returns the outcome and the object's (now fully
    /// defined, fully durable) value. `Success` iff the final value equals
    /// `value`. On return the value is persisted: it survives any
    /// subsequent crash.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`RecoverableJamWord::max_value`] or `pid`
    /// is out of range.
    pub fn jam<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, value: Word) -> (JamOutcome, Word) {
        assert!(
            value <= self.max_value(),
            "value wider than the sticky byte"
        );
        assert!(pid.0 < self.n, "pid out of range");
        // Announce durably. A failed jam means this processor already
        // announced a different value (an earlier op, possibly cut short by
        // a crash): drive that one — announcements are write-once.
        let announced = match mem.sticky_word_jam(pid, self.ann[pid.0], value) {
            JamOutcome::Success => value,
            JamOutcome::Fail => mem
                .sticky_word_read(pid, self.ann[pid.0])
                .expect("failed announcement jam implies a defined announcement"),
        };
        mem.persist(pid);

        let mut candidate = announced;
        for j in 0..self.width {
            let b = Self::bit_of(candidate, j);
            if !mem.sticky_jam(pid, self.bits[j as usize], b).is_success() {
                // Bit j holds !b. Co-jam the observed value so it cannot be
                // torn away after we act on it, then adopt an announced
                // value agreeing with the stuck prefix.
                mem.sticky_jam(pid, self.bits[j as usize], !b);
                let prefix_mask: Word = (1u64 << (j + 1)) - 1;
                let target = (candidate & !(1u64 << j) | ((!b as u64) << j)) & prefix_mask;
                candidate = self.find_candidate(mem, pid, j, target).unwrap_or_else(|| {
                    panic!(
                        "recovery invariant broken: bit {j} stuck at {} but no \
                             durable announcement matches prefix {target:#b}",
                        !b
                    )
                });
                debug_assert_eq!(candidate & prefix_mask, target);
            }
            // Fence the bit (jammed or co-jammed) before depending on it:
            // the durable part of the object always grows as a prefix, so a
            // crash can never leave a hole that blends two proposals.
            mem.persist(pid);
        }
        let outcome = if candidate == value {
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        };
        (outcome, candidate)
    }

    /// Scan announcements for a value whose low `j+1` bits equal `target`,
    /// and *pin* it: the agreeing re-jam makes this processor a co-writer of
    /// the announcement, so the follow-up fence keeps it durable even if the
    /// announcer is torn away.
    fn find_candidate<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        j: u32,
        target: Word,
    ) -> Option<Word> {
        let prefix_mask: Word = (1u64 << (j + 1)) - 1;
        for k in 0..self.n {
            if let Some(vk) = mem.sticky_word_read(pid, self.ann[k]) {
                if vk & prefix_mask == target && vk <= self.max_value() {
                    mem.sticky_word_jam(pid, self.ann[k], vk);
                    return Some(vk);
                }
            }
        }
        None
    }

    /// READ: the value if all bits are defined, `None` (`⊥`) otherwise.
    ///
    /// Durable: before reporting `Some(value)` the reader co-jams every bit
    /// and fences, so the reported value survives any later crash (a read
    /// that merely observed unfenced bits could otherwise leak a value that
    /// then vanishes).
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Word> {
        let value = self.peek(mem, pid)?;
        for j in 0..self.width {
            mem.sticky_jam(pid, self.bits[j as usize], Self::bit_of(value, j));
        }
        mem.persist(pid);
        Some(value)
    }

    /// Non-durable read: reports the bits as they are, without pinning them.
    /// For diagnostics and tests only — the returned value may be torn away
    /// by a crash; object-level protocols must use [`RecoverableJamWord::read`].
    pub fn peek<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Word> {
        let mut value: Word = 0;
        for j in 0..self.width {
            match mem.sticky_read(pid, self.bits[j as usize]) {
                Tri::Undef => return None,
                Tri::One => value |= 1u64 << j,
                Tri::Zero => {}
            }
        }
        Some(value)
    }

    /// Number of currently defined (non-`⊥`) bits. Diagnostic for tests and
    /// experiments — like [`RecoverableJamWord::peek`], it pins nothing.
    pub fn defined_bits<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> u32 {
        (0..self.width)
            .filter(|&j| mem.sticky_read(pid, self.bits[j as usize]) != Tri::Undef)
            .count() as u32
    }

    /// Recovery: called after restart, before the processor issues new
    /// operations. If this processor has a durable announcement — i.e. an
    /// operation that may have taken partial effect — re-runs the jam for
    /// it (agreeing jams are idempotent) and returns its result; returns
    /// `None` if there is nothing to recover (the in-flight operation
    /// vanished before its announcement was fenced, or none existed).
    pub fn recover<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<(JamOutcome, Word)> {
        let announced = mem.sticky_word_read(pid, self.ann[pid.0])?;
        Some(self.jam(mem, pid, announced))
    }

    /// Torture hook: execute a *prefix* of `jam(value)` and stop, leaving
    /// exactly the memory footprint a crash at that point would leave. The
    /// abandoned operation is then torn (or not) by the [`sbu_mem::DurableMem`]
    /// policy at the actual crash, and [`RecoverableJamWord::recover`] must
    /// cope with whatever survived. Crash `point`s:
    ///
    /// * `0` — announced, unfenced: the whole op may vanish;
    /// * `1` — announced and fenced: recovery re-drives the op;
    /// * anything else — announced and fenced, first bit jammed (or, on a
    ///   conflict, co-jammed as the real algorithm would) but unfenced.
    pub fn abandon_jam<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, value: Word, point: u8) {
        assert!(
            value <= self.max_value(),
            "value wider than the sticky byte"
        );
        assert!(pid.0 < self.n, "pid out of range");
        let announced = match mem.sticky_word_jam(pid, self.ann[pid.0], value) {
            JamOutcome::Success => value,
            JamOutcome::Fail => mem
                .sticky_word_read(pid, self.ann[pid.0])
                .expect("failed announcement jam implies a defined announcement"),
        };
        if point == 0 {
            return;
        }
        mem.persist(pid);
        if point >= 2 {
            let b = Self::bit_of(announced, 0);
            if !mem.sticky_jam(pid, self.bits[0], b).is_success() {
                mem.sticky_jam(pid, self.bits[0], !b);
            }
        }
    }
}

/// Crash-recoverable wait-free leader election: every candidate jams its own
/// id into a [`RecoverableJamWord`] of ⌈log₂ n⌉ bits.
///
/// An elected leader stays elected across crashes: the winning id is durable
/// before any `elect` returns it.
#[derive(Debug, Clone)]
pub struct RecoverableElection {
    word: RecoverableJamWord,
}

impl RecoverableElection {
    /// Allocate an election object for processors `0..n`.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize) -> Self {
        Self {
            word: RecoverableJamWord::new(mem, n, bits_for(n)),
        }
    }

    /// Participate: jam my own id; returns the elected leader (possibly me).
    pub fn elect<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Pid {
        let (_, winner) = self.word.jam(mem, pid, pid.0 as Word);
        Pid(winner as usize)
    }

    /// Observe the leader without electing; `None` if undecided. Durable:
    /// a reported leader survives crashes.
    pub fn leader<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Pid> {
        self.word.read(mem, pid).map(|w| Pid(w as usize))
    }

    /// Recovery after restart: re-drives this processor's candidacy if it
    /// was in flight; returns the leader if the election is (now) decided.
    pub fn recover<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Pid> {
        self.word
            .recover(mem, pid)
            .map(|(_, winner)| Pid(winner as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_mem::{DurableMem, TornPersist};
    use std::sync::Arc;

    fn durable(policy: TornPersist) -> DurableMem<NativeMem<()>> {
        DurableMem::with_policy(NativeMem::new(), policy)
    }

    #[test]
    fn solo_jam_survives_full_crash_under_lose() {
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 8);
        assert_eq!(jw.jam(&mem, Pid(0), 0x5A), (JamOutcome::Success, 0x5A));
        mem.crash_all::<()>(2);
        mem.restart(Pid(0));
        mem.restart(Pid(1));
        assert_eq!(jw.recover(&mem, Pid(0)), Some((JamOutcome::Success, 0x5A)));
        assert_eq!(jw.recover(&mem, Pid(1)), None, "p1 never announced");
        assert_eq!(jw.read(&mem, Pid(1)), Some(0x5A));
    }

    #[test]
    fn second_jam_by_same_pid_drives_first_announcement() {
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 1, 4);
        assert_eq!(jw.jam(&mem, Pid(0), 3), (JamOutcome::Success, 3));
        // One-shot announcements: a later jam with a different value loses
        // to the object's (already durable) value.
        assert_eq!(jw.jam(&mem, Pid(0), 5), (JamOutcome::Fail, 3));
    }

    #[test]
    fn loser_reports_winner_and_both_are_durable() {
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        assert_eq!(jw.jam(&mem, Pid(0), 9), (JamOutcome::Success, 9));
        assert_eq!(jw.jam(&mem, Pid(1), 6), (JamOutcome::Fail, 9));
        mem.crash_all::<()>(2);
        mem.restart(Pid(0));
        mem.restart(Pid(1));
        assert_eq!(jw.recover(&mem, Pid(0)), Some((JamOutcome::Success, 9)));
        assert_eq!(jw.recover(&mem, Pid(1)), Some((JamOutcome::Fail, 9)));
    }

    #[test]
    fn unfenced_partial_jam_vanishes_cleanly() {
        // Simulate a torn in-flight jam: announce durably, jam one bit, but
        // crash before the per-bit fence. Under `Lose` the bit vanishes; the
        // announcement survives, so recovery re-drives the op to completion.
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        let p0 = Pid(0);
        assert!(mem.sticky_word_jam(p0, jw.ann[0], 0b1010).is_success());
        mem.persist(p0);
        mem.sticky_jam(p0, jw.bits[1], true); // unfenced
        mem.crash_all::<()>(2);
        mem.restart(Pid(0));
        mem.restart(Pid(1));
        assert_eq!(jw.peek(&mem, Pid(1)), None, "torn bit reverted to ⊥");
        assert_eq!(
            jw.recover(&mem, Pid(0)),
            Some((JamOutcome::Success, 0b1010)),
            "announcement survived: recovery completes the op"
        );
        assert_eq!(jw.read(&mem, Pid(1)), Some(0b1010));
    }

    #[test]
    fn vanished_announcement_means_nothing_to_recover() {
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 1, 4);
        // Announce but crash before the fence: the op vanishes wholesale.
        assert!(mem.sticky_word_jam(Pid(0), jw.ann[0], 7).is_success());
        mem.crash_all::<()>(1);
        mem.restart(Pid(0));
        assert_eq!(jw.recover(&mem, Pid(0)), None);
        assert_eq!(jw.read(&mem, Pid(0)), None);
        // The object is still usable.
        assert_eq!(jw.jam(&mem, Pid(0), 2), (JamOutcome::Success, 2));
    }

    #[test]
    fn read_pins_the_value_it_reports() {
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        let p0 = Pid(0);
        // p0 defines the value but crashes before fencing it...
        assert!(mem.sticky_word_jam(p0, jw.ann[0], 5).is_success());
        mem.persist(p0);
        for j in 0..4 {
            mem.sticky_jam(p0, jw.bits[j], 5 >> j & 1 == 1);
        }
        // ...but p1 READs it first: the read co-jams + fences, so the
        // reported value must survive p0's crash.
        assert_eq!(jw.read(&mem, Pid(1)), Some(5));
        mem.crash::<()>(&[p0]);
        mem.restart(p0);
        assert_eq!(jw.peek(&mem, Pid(1)), Some(5), "read pinned the value");
    }

    #[test]
    fn native_threads_with_full_crash_and_recovery_agree() {
        for round in 0..8u64 {
            let n = 4;
            let mut mem = durable(TornPersist::Seeded(round));
            let jw = RecoverableJamWord::new(&mut mem, n, 8);
            let mem = Arc::new(mem);
            let results: Vec<(JamOutcome, Word)> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        let jw = jw.clone();
                        s.spawn(move || jw.jam(&*mem, Pid(i), round * 10 + i as u64))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let final_value = jw.read(&*mem, Pid(0)).expect("defined");
            for (i, (outcome, seen)) in results.iter().enumerate() {
                assert_eq!(*seen, final_value, "round {round} p{i}");
                assert_eq!(outcome.is_success(), round * 10 + i as u64 == final_value);
            }
            // Everything was acknowledged, so the crash must change nothing.
            mem.crash_all::<()>(n);
            for i in 0..n {
                mem.restart(Pid(i));
            }
            for (i, r) in results.iter().enumerate() {
                assert_eq!(
                    jw.recover(&*mem, Pid(i)),
                    Some((r.0, final_value)),
                    "round {round}: recovery must reproduce the acked result"
                );
            }
            assert_eq!(jw.read(&*mem, Pid(0)), Some(final_value));
            assert!(mem.violations().is_empty(), "{:?}", mem.violations());
        }
    }

    #[test]
    fn abandon_jam_footprints_match_the_crash_points() {
        // Point 0: unfenced announcement — under Lose the op vanishes.
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        jw.abandon_jam(&mem, Pid(0), 0b101, 0);
        mem.crash::<()>(&[Pid(0)]);
        mem.restart(Pid(0));
        assert_eq!(jw.recover(&mem, Pid(0)), None, "announcement torn away");

        // Point 1: fenced announcement — recovery re-drives the op even
        // though no bit was touched.
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        jw.abandon_jam(&mem, Pid(0), 0b101, 1);
        mem.crash::<()>(&[Pid(0)]);
        mem.restart(Pid(0));
        assert_eq!(jw.recover(&mem, Pid(0)), Some((JamOutcome::Success, 0b101)));

        // Point 2: one unfenced bit — torn back to ⊥, but the durable
        // announcement still completes the op on recovery.
        let mut mem = durable(TornPersist::Lose);
        let jw = RecoverableJamWord::new(&mut mem, 2, 4);
        jw.abandon_jam(&mem, Pid(0), 0b101, 2);
        assert_eq!(jw.defined_bits(&mem, Pid(1)), 1);
        mem.crash::<()>(&[Pid(0)]);
        mem.restart(Pid(0));
        assert_eq!(jw.defined_bits(&mem, Pid(1)), 0, "unfenced bit torn");
        assert_eq!(jw.recover(&mem, Pid(0)), Some((JamOutcome::Success, 0b101)));
    }

    #[test]
    fn election_survives_crashes() {
        let mut mem = durable(TornPersist::Lose);
        let le = RecoverableElection::new(&mut mem, 4);
        let leader = le.elect(&mem, Pid(2));
        assert_eq!(leader, Pid(2));
        mem.crash_all::<()>(4);
        for i in 0..4 {
            mem.restart(Pid(i));
        }
        assert_eq!(le.recover(&mem, Pid(2)), Some(Pid(2)));
        assert_eq!(le.recover(&mem, Pid(0)), None, "p0 never ran");
        assert_eq!(le.elect(&mem, Pid(0)), Pid(2), "leadership is durable");
        assert_eq!(le.leader(&mem, Pid(3)), Some(Pid(2)));
    }
}
