//! The Sticky Byte: Figure 2's `Jam(v_i)` helping algorithm.
//!
//! An ℓ-bit write-once value represented by ℓ atomic sticky bits. A naive
//! bit-by-bit jam is wrong — two processors jamming `(1,0)` and `(0,1)` can
//! interleave into the never-proposed `(1,1)` — and a processor that simply
//! returns "fail" on the first disagreeing bit may strand the winner's
//! remaining bits undefined if the winner crashes.
//!
//! Figure 2's fix is the paper's helping paradigm: every participant first
//! *announces* its value in a single-writer safe register (`v_i`, guarded by
//! the flag `g_i`), then jams bits on behalf of a **candidate** value,
//! initially its own. When a jam of bit `j` fails, the processor scans the
//! announcements for a value that agrees with the sticky prefix jammed so
//! far — such a value must exist, because whoever jammed bit `j` was working
//! on behalf of an announced value — adopts it as its new candidate, and
//! keeps jamming. All participants therefore drive the *same* surviving
//! value to completion, and the object's final value is always one that some
//! participant announced.

use sbu_mem::{Backoff, JamOutcome, Pid, SafeId, StickyBitId, Word, WordMem};

/// Observability instruments for the Figure 2 jam algorithm.
///
/// The counters are plain per-lane cells (no shared-memory steps through
/// the [`WordMem`] traits), so attaching them never perturbs the step
/// structure the simulator schedules — instrumented and uninstrumented
/// runs explore identical schedule trees.
#[derive(Debug, Clone, Default)]
pub struct JamObs {
    /// `jam.decided_exit`: jams that returned via the decided-byte fast
    /// path without announcing or touching any sticky bit.
    pub decided_exit: sbu_obs::Counter,
    /// `jam.candidate_switch`: helping events — a failed bit jam forced
    /// the processor to adopt another participant's announced value.
    pub candidate_switch: sbu_obs::Counter,
}

impl JamObs {
    /// Register the jam instruments against `registry`.
    pub fn register(registry: &sbu_obs::Registry) -> Self {
        Self {
            decided_exit: registry.counter("jam.decided_exit"),
            candidate_switch: registry.counter("jam.candidate_switch"),
        }
    }
}

/// An ℓ-bit sticky byte for `n` processors (Figure 2).
///
/// The object is a passive bundle of register handles; all shared state
/// lives in the backend, so a `JamWord` can be freely copied/shared across
/// threads.
///
/// ```
/// use sbu_mem::{native::NativeMem, Pid, JamOutcome};
/// use sbu_sticky::JamWord;
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let jw = JamWord::new(&mut mem, 2, 8);
/// let (out, value) = jw.jam(&mem, Pid(0), 0xA5);
/// assert_eq!(out, JamOutcome::Success);
/// assert_eq!(value, 0xA5);
/// // A disagreeing jam fails but reports the winning value.
/// let (out, value) = jw.jam(&mem, Pid(1), 0x5A);
/// assert_eq!(out, JamOutcome::Fail);
/// assert_eq!(value, 0xA5);
/// ```
#[derive(Debug, Clone)]
pub struct JamWord {
    n: usize,
    width: u32,
    bits: Vec<StickyBitId>,
    /// `g_i`: processor `i` has a valid announcement.
    announced: Vec<SafeId>,
    /// `v_i`: processor `i`'s announced value (single-writer).
    values: Vec<SafeId>,
    /// Cap exponent for the candidate-switch backoff (`None` = never
    /// pause, the paper's verbatim loop). See
    /// [`JamWord::with_backoff_limit`].
    backoff_limit: Option<u32>,
    obs: JamObs,
}

impl JamWord {
    /// Allocate a sticky byte of `width` bits for processors `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63 (values must stay below the
    /// sticky-word sentinel), or if `n` is 0.
    pub fn new<M: WordMem + ?Sized>(mem: &mut M, n: usize, width: u32) -> Self {
        assert!(n > 0, "at least one processor");
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        Self {
            n,
            width,
            // A grouped allocation: the native backend co-locates the bits
            // so READ is a single atomic load; the simulator keeps them as
            // independent per-bit locations.
            bits: mem.alloc_sticky_bits(width as usize),
            announced: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            values: (0..n).map(|_| mem.alloc_safe(0)).collect(),
            backoff_limit: None,
            obs: JamObs::default(),
        }
    }

    /// Attach observability instruments registered against `registry`
    /// (builder-style; a detached word records nothing).
    pub fn with_obs(mut self, registry: &sbu_obs::Registry) -> Self {
        self.obs = JamObs::register(registry);
        self
    }

    /// Pause for a bounded exponential backoff (capped at `2^limit` spin
    /// rounds) after each candidate switch, before rescanning the
    /// announcements. A candidate switch means another processor's jam
    /// just beat this one to a bit — the contention signature of the E10
    /// 4–8 thread cliff, where every loser immediately re-hammers the same
    /// cache lines. The pause is purely local ([`std::hint::spin_loop`]
    /// only, no [`WordMem`] step), so the schedule structure the simulator
    /// explores and the wait-freedom bound are both unchanged; the default
    /// (no pause at all) is the paper's verbatim loop.
    pub fn with_backoff_limit(mut self, limit: u32) -> Self {
        self.backoff_limit = Some(limit);
        self
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of participating processors.
    pub fn n_procs(&self) -> usize {
        self.n
    }

    /// Largest representable value.
    pub fn max_value(&self) -> Word {
        (1u64 << self.width) - 1
    }

    fn bit_of(value: Word, j: u32) -> bool {
        value >> j & 1 == 1
    }

    /// `Jam(value)`: returns the outcome and the object's (now fully
    /// defined) value. `Success` iff the final value equals `value`.
    ///
    /// Wait-free: O(ℓ) jams plus at most ℓ candidate rescans of O(n) reads.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`JamWord::max_value`] or `pid` is out of
    /// range.
    pub fn jam<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid, value: Word) -> (JamOutcome, Word) {
        assert!(
            value <= self.max_value(),
            "value wider than the sticky byte"
        );
        assert!(pid.0 < self.n, "pid out of range");
        // Fast path: if the byte is already fully decided, its value can
        // never change again (sticky bits only ever go `⊥ → v`), so the jam
        // is equivalent to one that ran entirely after the deciding step —
        // skip the announcement and the per-bit jam loop. On the native
        // backend this is a single atomic load.
        if let Some(decided) = self.read(mem, pid) {
            self.obs.decided_exit.incr(pid.0);
            let outcome = if decided == value {
                JamOutcome::Success
            } else {
                JamOutcome::Fail
            };
            return (outcome, decided);
        }
        // Announce: write v_i, then raise g_i (order matters: a raised flag
        // implies the value register is stable).
        mem.safe_write(pid, self.values[pid.0], value);
        mem.safe_write(pid, self.announced[pid.0], 1);

        let mut candidate = value;
        let mut backoff = self.backoff_limit.map(Backoff::with_limit);
        for j in 0..self.width {
            let b = Self::bit_of(candidate, j);
            if mem.sticky_jam(pid, self.bits[j as usize], b).is_success() {
                continue;
            }
            // Bit j holds !b: adopt an announced value agreeing with the
            // jammed prefix (bits 0..=j of the object).
            let prefix_mask: Word = (1u64 << (j + 1)) - 1;
            let target = (candidate & !(1u64 << j) | ((!b as u64) << j)) & prefix_mask;
            self.obs.candidate_switch.incr(pid.0);
            // Losing the bit race is the contention signal: yield the core
            // briefly (local spins only) so the winner's cohort can drain
            // before this processor re-reads the announce array.
            if let Some(backoff) = backoff.as_mut() {
                backoff.spin();
            }
            candidate = self.find_candidate(mem, pid, j, target).unwrap_or_else(|| {
                panic!(
                    "Figure 2 invariant broken: bit {j} was jammed to {} but no \
                     announced value matches prefix {target:#b}",
                    !b
                )
            });
            debug_assert_eq!(candidate & prefix_mask, target);
        }
        let outcome = if candidate == value {
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        };
        (outcome, candidate)
    }

    /// Scan announcements for a value whose low `j+1` bits equal `target`.
    fn find_candidate<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        j: u32,
        target: Word,
    ) -> Option<Word> {
        let prefix_mask: Word = (1u64 << (j + 1)) - 1;
        for k in 0..self.n {
            if mem.safe_read(pid, self.announced[k]) != 0 {
                let vk = mem.safe_read(pid, self.values[k]);
                if vk & prefix_mask == target && vk <= self.max_value() {
                    return Some(vk);
                }
            }
        }
        None
    }

    /// The strawman `Jam` the paper warns against (Section 4): jam the bits
    /// one by one with **no announcement and no helping**, giving up on the
    /// first disagreement.
    ///
    /// Exists for the ablation experiment (E1d) and for tests that
    /// demonstrate the two failure modes the paper describes:
    /// * two concurrent jams can interleave into a *blended* value nobody
    ///   proposed — e.g. `(1,0)` and `(0,1)` into `(1,1)`;
    /// * an early-returning loser leaves the winner's remaining bits
    ///   undefined if the winner crashes.
    ///
    /// Do not use for anything but demonstrating its own brokenness.
    pub fn jam_naive<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        value: Word,
    ) -> (JamOutcome, Option<Word>) {
        assert!(
            value <= self.max_value(),
            "value wider than the sticky byte"
        );
        for j in 0..self.width {
            let b = Self::bit_of(value, j);
            if !mem.sticky_jam(pid, self.bits[j as usize], b).is_success() {
                return (JamOutcome::Fail, self.read(mem, pid));
            }
        }
        (JamOutcome::Success, Some(value))
    }

    /// The other strawman: jam *all* bits regardless of per-bit failures.
    /// This keeps the object defined but can **blend** two proposals into a
    /// value nobody proposed — the paper's `(1,0)` vs `(0,1)` → `(1,1)`
    /// example, which the explorer finds mechanically (E1d / tests).
    pub fn jam_oblivious<M: WordMem + ?Sized>(
        &self,
        mem: &M,
        pid: Pid,
        value: Word,
    ) -> (JamOutcome, Option<Word>) {
        assert!(
            value <= self.max_value(),
            "value wider than the sticky byte"
        );
        let mut all_stuck = true;
        for j in 0..self.width {
            let b = Self::bit_of(value, j);
            all_stuck &= mem.sticky_jam(pid, self.bits[j as usize], b).is_success();
        }
        let outcome = if all_stuck {
            JamOutcome::Success
        } else {
            JamOutcome::Fail
        };
        (outcome, self.read(mem, pid))
    }

    /// READ: the value if all bits are defined, `None` (`⊥`) otherwise.
    ///
    /// Linearizable: the object becomes defined at the step its last bit is
    /// jammed; any read observing an undefined bit linearizes before that.
    pub fn read<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) -> Option<Word> {
        mem.sticky_read_word(pid, &self.bits)
    }

    /// FLUSH: reset all bits and announcements to the initial state.
    /// Non-atomic — the caller must guarantee no concurrent operation
    /// (Definition 4.1), as the GRAB/INIT protocol of Section 6 does.
    pub fn flush<M: WordMem + ?Sized>(&self, mem: &M, pid: Pid) {
        for j in 0..self.width {
            mem.sticky_flush(pid, self.bits[j as usize]);
        }
        for k in 0..self.n {
            mem.safe_write(pid, self.announced[k], 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;
    use sbu_sim::{
        run_uniform, EpisodeResult, Explorer, RandomAdversary, RunOptions, Scripted, SimMem,
    };
    use std::sync::Arc;

    #[test]
    fn solo_jam_defines_the_value() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let jw = JamWord::new(&mut mem, 1, 16);
        assert_eq!(jw.read(&mem, Pid(0)), None);
        let (out, v) = jw.jam(&mem, Pid(0), 0xBEEF);
        assert!(out.is_success());
        assert_eq!(v, 0xBEEF);
        assert_eq!(jw.read(&mem, Pid(0)), Some(0xBEEF));
    }

    #[test]
    fn agreeing_jam_succeeds_after_the_fact() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let jw = JamWord::new(&mut mem, 2, 8);
        jw.jam(&mem, Pid(0), 7);
        let (out, v) = jw.jam(&mem, Pid(1), 7);
        assert!(out.is_success());
        assert_eq!(v, 7);
    }

    #[test]
    fn flush_resets_for_reuse() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let jw = JamWord::new(&mut mem, 2, 4);
        jw.jam(&mem, Pid(0), 9);
        jw.flush(&mem, Pid(1));
        assert_eq!(jw.read(&mem, Pid(0)), None);
        let (out, v) = jw.jam(&mem, Pid(1), 3);
        assert!(out.is_success());
        assert_eq!(v, 3);
    }

    #[test]
    #[should_panic(expected = "wider than the sticky byte")]
    fn oversized_value_is_rejected() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let jw = JamWord::new(&mut mem, 1, 4);
        jw.jam(&mem, Pid(0), 16);
    }

    /// The motivating counterexample from Section 4: (1,0) vs (0,1) must
    /// never interleave into (1,1) — exhaustively over all schedules.
    #[test]
    fn exhaustive_two_procs_never_blend_values() {
        let explorer = Explorer::new(500_000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let jw = JamWord::new(&mut mem, 2, 2);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    let value = if pid.0 == 0 { 0b01 } else { 0b10 };
                    jw2.jam(mem, pid, value)
                },
            );
            let verdict = (|| {
                out.assert_clean();
                let results: Vec<(JamOutcome, Word)> = out.results().into_iter().cloned().collect();
                let final_value = jw.read(&mem, Pid(0)).expect("defined after both jams");
                if final_value != 0b01 && final_value != 0b10 {
                    return Err(format!("blended value {final_value:#b}"));
                }
                for (i, (outcome, seen)) in results.iter().enumerate() {
                    if *seen != final_value {
                        return Err(format!(
                            "p{i} saw {seen:#b} but object holds {final_value:#b}"
                        ));
                    }
                    let mine = if i == 0 { 0b01 } else { 0b10 };
                    let expect_ok = mine == final_value;
                    if outcome.is_success() != expect_ok {
                        return Err(format!(
                            "p{i} outcome {outcome:?} vs final {final_value:#b}"
                        ));
                    }
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
        assert!(report.schedules > 10, "non-trivial schedule tree expected");
    }

    /// With one crash allowed, survivors must still complete and agree, and
    /// a crashed winner's bits must be finished by the helpers.
    #[test]
    fn exhaustive_two_procs_with_crash_still_agree() {
        let explorer = Explorer {
            max_schedules: 2_000_000,
            max_failures: 1,
        };
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let jw = JamWord::new(&mut mem, 2, 2);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    let value = if pid.0 == 0 { 0b01 } else { 0b10 };
                    jw2.jam(mem, pid, value)
                },
            );
            let verdict = (|| {
                if !out.violations.is_empty() {
                    return Err(format!("violations: {:?}", out.violations));
                }
                let final_value = jw.read(&mem, Pid(0));
                for (i, o) in out.outcomes.iter().enumerate() {
                    if let Some((outcome, seen)) = o.completed() {
                        // Any completer fully defines the object.
                        let fv = final_value.ok_or("completer left object undefined")?;
                        if *seen != fv {
                            return Err(format!("p{i} saw {seen:#b}, object {fv:#b}"));
                        }
                        if fv != 0b01 && fv != 0b10 {
                            return Err(format!("blended value {fv:#b}"));
                        }
                        let mine = if i == 0 { 0b01 } else { 0b10 };
                        if outcome.is_success() != (mine == fv) {
                            return Err(format!("p{i} wrong outcome {outcome:?}"));
                        }
                    }
                }
                Ok(())
            })();
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_all_ok();
    }

    /// The paper's Section 4 counterexample, found mechanically: jamming
    /// all bits obliviously, (0,1) vs (1,0) CAN blend into a value nobody
    /// proposed.
    #[test]
    fn oblivious_jam_blends_values_on_some_schedule() {
        let explorer = Explorer::new(100_000);
        let report = explorer.explore(|script| {
            let mut mem: SimMem<()> = SimMem::new(2);
            let jw = JamWord::new(&mut mem, 2, 2);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(Scripted::new(script.to_vec())),
                RunOptions::default(),
                2,
                move |mem, pid| {
                    let value = if pid.0 == 0 { 0b01 } else { 0b10 };
                    jw2.jam_oblivious(mem, pid, value)
                },
            );
            let verdict = match jw.read(&mem, Pid(0)) {
                Some(v) if v != 0b01 && v != 0b10 => Err(format!("blended into {v:#b}")),
                _ => Ok(()),
            };
            EpisodeResult::from_outcome(&out, verdict)
        });
        report.assert_some_failure();
    }

    /// Without helping, a loser that returns early may leave the object
    /// undefined forever if the winner crashes — wait-freedom of READers
    /// of the byte is lost. With Figure 2, the loser completes the winner's
    /// bits.
    #[test]
    fn naive_jam_strands_bits_when_winner_crashes() {
        // p0 jams 0b11 and will crash after its first bit; p1 jams 0b00,
        // fails on bit 0, and (naively) gives up.
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 2);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            // Script: step p0 (jam bit0 = 1), crash p0 (index 2+0 = 2 with
            // both waiting), then p1 runs: jam bit0=0 fails -> gives up.
            Box::new(Scripted::new(vec![0, 2]).with_crashes(1)),
            RunOptions::default(),
            2,
            move |mem, pid| {
                let value = if pid.0 == 0 { 0b11 } else { 0b00 };
                jw2.jam_naive(mem, pid, value)
            },
        );
        assert!(out.outcomes[0].is_crashed());
        assert_eq!(
            jw.read(&mem, Pid(1)),
            None,
            "bit 1 stays undefined forever: the naive protocol is broken"
        );
        // The same scenario under Figure 2's helping: the loser completes
        // the winner's value.
        let mut mem: SimMem<()> = SimMem::new(2);
        let jw = JamWord::new(&mut mem, 2, 2);
        let jw2 = jw.clone();
        let _ = run_uniform(
            &mem,
            // p0 reads bit0 (⊥, 1 step: the decided-byte fast path bails at
            // the first undefined bit), announces (4 safe-write steps) and
            // jams bit0, then crashes.
            Box::new(Scripted::new(vec![0, 0, 0, 0, 0, 0, 2]).with_crashes(1)),
            RunOptions::default(),
            2,
            move |mem, pid| {
                let value = if pid.0 == 0 { 0b11 } else { 0b00 };
                jw2.jam(mem, pid, value)
            },
        );
        assert_eq!(
            jw.read(&mem, Pid(1)),
            Some(0b11),
            "helping completed the crashed winner's value"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_registry_counts_fast_exits_and_switches() {
        let registry = sbu_obs::Registry::new(2);
        let mut mem: NativeMem<()> = NativeMem::new();
        let jw = JamWord::new(&mut mem, 2, 4).with_obs(&registry);
        jw.jam(&mem, Pid(0), 0b1010);
        // Fully decided: the second jam takes the fast exit.
        jw.jam(&mem, Pid(1), 0b0101);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("jam.decided_exit"), 1);
        assert_eq!(snap.counter("jam.candidate_switch"), 0);
    }

    /// Randomized stress: many processors, wide words, native threads —
    /// with the candidate-switch backoff engaged on odd rounds, so the
    /// tuned loop sees the same agreement checks as the verbatim one.
    #[test]
    fn native_threads_agree_under_contention() {
        for round in 0..20 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let n = 8;
            let mut jw = JamWord::new(&mut mem, n, 16);
            if round % 2 == 1 {
                jw = jw.with_backoff_limit(6);
            }
            let mem = Arc::new(mem);
            let results: Vec<(JamOutcome, Word)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        let jw = jw.clone();
                        s.spawn(move || jw.jam(&*mem, Pid(i), (round * 100 + i as u64) & 0xFFFF))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let final_value = jw.read(&*mem, Pid(0)).expect("defined");
            let winners = results.iter().filter(|(o, _)| o.is_success()).count();
            assert!(winners >= 1, "someone must win");
            for (i, (outcome, seen)) in results.iter().enumerate() {
                assert_eq!(*seen, final_value);
                let mine = (round * 100 + i as u64) & 0xFFFF;
                assert_eq!(outcome.is_success(), mine == final_value);
            }
            // Validity: the final value was somebody's proposal.
            assert!((0..n).any(|i| (round * 100 + i as u64) & 0xFFFF == final_value));
        }
    }

    /// Fuzz in the simulator with hostile corrupt words and random crashes.
    #[test]
    fn simulated_fuzz_many_procs() {
        for seed in 0..40 {
            let n = 4;
            let mut mem: SimMem<()> = SimMem::new(n);
            let jw = JamWord::new(&mut mem, n, 6);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(
                    RandomAdversary::new(seed)
                        .with_crashes(1, 20_000)
                        .with_corrupt_palette(vec![0, 1, u64::MAX, 0b111111]),
                ),
                RunOptions::default(),
                n,
                move |mem, pid| jw2.jam(mem, pid, pid.0 as u64 + 10),
            );
            assert!(out.violations.is_empty(), "{:?}", out.violations);
            let final_value = jw.read(&mem, Pid(0));
            for (i, o) in out.outcomes.iter().enumerate() {
                if let Some((outcome, seen)) = o.completed() {
                    let fv = final_value.expect("completer defines object");
                    assert_eq!(*seen, fv, "seed {seed} p{i}");
                    assert!((10..10 + n as u64).contains(&fv), "validity, seed {seed}");
                    assert_eq!(outcome.is_success(), i as u64 + 10 == fv);
                }
            }
        }
    }
}
