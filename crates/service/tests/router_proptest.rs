//! Property tests for the router: the partition must be total, stable,
//! and agreed on by every independently constructed `ShardMap` — the
//! property the whole service relies on (a client and a worker that
//! disagree on `shard_of` would corrupt the single-owner discipline).

use proptest::prelude::*;
use sbu_service::{Routing, ShardMap};

proptest! {
    /// Totality: every key lands strictly inside the shard range, for
    /// every power-of-two shard count and both policies.
    #[test]
    fn routing_is_total(key in any::<u64>(), shift in 0usize..10) {
        let shards = 1usize << shift;
        for routing in [Routing::Hash, Routing::Range] {
            let map = ShardMap::new(shards).with_routing(routing);
            prop_assert!(map.shard_of(key) < shards);
        }
    }

    /// Stability: two independently built routers with the same
    /// configuration agree on every key, and repeated calls agree with
    /// themselves (no hidden state).
    #[test]
    fn routing_is_a_pure_function(keys in proptest::collection::vec(any::<u64>(), 1..64), shift in 0usize..8) {
        let shards = 1usize << shift;
        for routing in [Routing::Hash, Routing::Range] {
            let a = ShardMap::new(shards).with_routing(routing);
            let b = ShardMap::new(shards).with_routing(routing);
            for &key in &keys {
                let s = a.shard_of(key);
                prop_assert_eq!(s, b.shard_of(key));
                prop_assert_eq!(s, a.shard_of(key));
            }
        }
    }

    /// The partition is a refinement chain: halving the shard count only
    /// merges shards, it never splits one (range policy), so an elastic
    /// merge can drop a level without re-routing within survivors.
    #[test]
    fn range_partition_refines(key in any::<u64>(), shift in 1usize..10) {
        let fine = ShardMap::new(1 << shift).with_routing(Routing::Range);
        let coarse = ShardMap::new(1 << (shift - 1)).with_routing(Routing::Range);
        prop_assert_eq!(coarse.shard_of(key), fine.shard_of(key) / 2);
    }
}
