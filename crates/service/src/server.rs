//! The thread-per-core server loop.
//!
//! Topology: `workers` OS threads, each *owning* a disjoint set of shards
//! (worker `w` owns every shard `s` with `s % workers == w` — ownership
//! never moves, so shards need no locks of their own). Clients talk to
//! workers through the wire protocol: a request is encoded to bytes,
//! pushed onto the owning worker's inbox, and the worker decodes it with
//! the same incremental [`FrameDecoder`](crate::FrameDecoder) a socket
//! transport would use — the in-process queues stand exactly where a TCP
//! stream would stand, which is the layering seam for a future network
//! front end.
//!
//! Observability follows the repo's single-writer lane discipline: the
//! service registry has one lane per worker, worker `w` writes only lane
//! `w` (`service.route`, `service.queue_depth`), and the per-shard
//! `service.shard_imbalance` histogram is recorded once at shutdown, after
//! every worker has joined (single-threaded again, so lane 0 is safe).
//! Per-key `Universal` instances are deliberately built *without* core
//! instruments: they all run as `Pid(0)`, so attaching them to a shared
//! registry would put every worker on lane 0 and violate single-writer.

use crate::route::{Routing, ShardMap};
use crate::shard::Shard;
use crate::wire::{request_frame, response_frame, Frame, FrameDecoder, WireCodec, KIND_REQUEST};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server topology and routing policy.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (power of two; see [`ShardMap::new`]).
    pub shards: usize,
    /// Number of worker threads. Shard `s` is owned by worker
    /// `s % workers`; extra workers beyond `shards` simply idle.
    pub workers: usize,
    /// Number of client slots (reply boxes). Each concurrent caller must
    /// use its own client id in `0..clients`.
    pub clients: usize,
    /// How keys map to shards.
    pub routing: Routing,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            workers: 1,
            clients: 1,
            routing: Routing::Hash,
        }
    }
}

/// A byte-stream endpoint: a queue of encoded frames plus a wakeup signal.
/// Used for both worker inboxes and client reply boxes.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
}

impl Mailbox {
    fn push(&self, bytes: Vec<u8>) {
        self.queue.lock().push_back(bytes);
        self.ready.notify_one();
    }
}

/// Per-shard totals reported after shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's index.
    pub shard: usize,
    /// Operations the shard applied.
    pub ops: u64,
    /// Distinct keys the shard materialized.
    pub keys: usize,
}

/// Instruments for the service layer (one lane per worker).
struct ServiceObs {
    route: sbu_obs::Counter,
    queue_depth: sbu_obs::Histogram,
    shard_imbalance: sbu_obs::Histogram,
}

/// The sharded object-space runtime: shards of per-key [`sbu_core::Universal`]
/// instances behind a wire protocol and a pool of worker threads.
///
/// ```
/// use sbu_service::{Service, ServiceConfig};
/// use sbu_spec::specs::{CounterOp, CounterSpec};
///
/// let mut svc = Service::start(ServiceConfig { shards: 4, workers: 2, clients: 1, ..Default::default() },
///                              CounterSpec::new());
/// assert_eq!(svc.call(0, 42, &CounterOp::Inc), 1);
/// assert_eq!(svc.call(0, 42, &CounterOp::Read), 1);
/// assert_eq!(svc.call(0, 7, &CounterOp::Read), 0); // different key, fresh object
/// let stats = svc.shutdown();
/// assert_eq!(stats.iter().map(|s| s.ops).sum::<u64>(), 3);
/// ```
pub struct Service<S: WireCodec> {
    map: ShardMap,
    worker_count: usize,
    inboxes: Arc<Vec<Mailbox>>,
    replies: Arc<Vec<Mailbox>>,
    stop: Arc<AtomicBool>,
    seqs: Vec<AtomicU64>,
    registry: sbu_obs::Registry,
    obs: Arc<ServiceObs>,
    workers: Vec<JoinHandle<Vec<ShardStats>>>,
    _spec: std::marker::PhantomData<fn() -> S>,
}

impl<S> Service<S>
where
    S: WireCodec + Send + Sync + 'static,
    S::Op: Send + Sync,
    S::Resp: Send,
{
    /// Boot the server: build the (empty) shards, hand each worker its
    /// subset, and start the worker loops. Keys materialize lazily as
    /// clones of `template`.
    pub fn start(config: ServiceConfig, template: S) -> Self {
        assert!(config.workers >= 1, "at least one worker");
        assert!(config.clients >= 1, "at least one client slot");
        let map = ShardMap::new(config.shards).with_routing(config.routing);
        let registry = sbu_obs::Registry::new(config.workers.max(1));
        let obs = Arc::new(ServiceObs {
            route: registry.counter("service.route"),
            queue_depth: registry.histogram("service.queue_depth"),
            shard_imbalance: registry.histogram("service.shard_imbalance"),
        });
        let inboxes: Arc<Vec<Mailbox>> =
            Arc::new((0..config.workers).map(|_| Mailbox::default()).collect());
        let replies: Arc<Vec<Mailbox>> =
            Arc::new((0..config.clients).map(|_| Mailbox::default()).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let workers = (0..config.workers)
            .map(|w| {
                let shards: Vec<Shard<S>> = (w..config.shards)
                    .step_by(config.workers)
                    .map(|s| Shard::new(s, template.clone()))
                    .collect();
                let (inboxes, replies) = (Arc::clone(&inboxes), Arc::clone(&replies));
                let (stop, obs, map) = (Arc::clone(&stop), Arc::clone(&obs), map);
                std::thread::Builder::new()
                    .name(format!("sbu-service-worker-{w}"))
                    .spawn(move || {
                        worker_loop::<S>(w, shards, map, &inboxes, &replies, &stop, &obs)
                    })
                    .expect("spawn worker")
            })
            .collect();

        Self {
            map,
            worker_count: config.workers,
            inboxes,
            replies,
            stop,
            seqs: (0..config.clients).map(|_| AtomicU64::new(0)).collect(),
            registry,
            obs,
            workers,
            _spec: std::marker::PhantomData,
        }
    }

    /// The router in force.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Execute `op` against the object at `key` and block for the reply.
    ///
    /// Safe to call from many threads at once *as long as each concurrent
    /// caller uses its own `client` id* — the reply box is a plain queue,
    /// so two callers sharing an id could steal each other's responses.
    pub fn call(&self, client: u32, key: u64, op: &S::Op) -> S::Resp {
        let seq = self.seqs[client as usize].fetch_add(1, Ordering::Relaxed);
        let req = request_frame::<S>(client, seq, key, op);
        let worker = self.map.shard_of(key) % self.worker_count;
        self.inboxes[worker].push(req.to_bytes());

        // Blocking call, one outstanding request per client id: the next
        // reply in our box is ours. The seq echo is still checked to catch
        // client-id sharing bugs loudly.
        let frame = self.next_reply(client);
        assert_eq!(
            frame.seq, seq,
            "response out of order: client id {client} used concurrently?"
        );
        S::decode_resp(&frame.payload).expect("decodable response")
    }

    /// Post a request without waiting for its reply (the open-loop side of
    /// the protocol); returns the sequence number the response will echo.
    /// Collect replies with [`take_reply`](Self::take_reply) — exactly one
    /// per post, in completion order.
    pub fn post(&self, client: u32, key: u64, op: &S::Op) -> u64 {
        let seq = self.seqs[client as usize].fetch_add(1, Ordering::Relaxed);
        let req = request_frame::<S>(client, seq, key, op);
        let worker = self.map.shard_of(key) % self.worker_count;
        self.inboxes[worker].push(req.to_bytes());
        seq
    }

    /// Block for the next reply in `client`'s box and decode it (pairs
    /// with [`post`](Self::post); no sequence-number matching).
    pub fn take_reply(&self, client: u32) -> S::Resp {
        let frame = self.next_reply(client);
        S::decode_resp(&frame.payload).expect("decodable response")
    }

    fn next_reply(&self, client: u32) -> Frame {
        let inbox = &self.replies[client as usize];
        let bytes = {
            let mut q = inbox.queue.lock();
            loop {
                if let Some(bytes) = q.pop_front() {
                    break bytes;
                }
                inbox.ready.wait(&mut q);
            }
        };
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        dec.next_frame()
            .expect("well-formed response")
            .expect("complete response frame")
    }

    /// Snapshot the service instruments (`service.route`,
    /// `service.queue_depth`; `service.shard_imbalance` appears once
    /// [`shutdown`](Self::shutdown) has run).
    pub fn obs_snapshot(&self) -> sbu_obs::Snapshot {
        self.registry.snapshot()
    }

    /// Stop the workers, join them, record `service.shard_imbalance`, and
    /// return per-shard totals (sorted by shard index). Idempotent; a
    /// second call returns an empty vec.
    pub fn shutdown(&mut self) -> Vec<ShardStats> {
        self.stop.store(true, Ordering::SeqCst);
        for inbox in self.inboxes.iter() {
            inbox.ready.notify_all();
        }
        let mut stats: Vec<ShardStats> = self
            .workers
            .drain(..)
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        stats.sort_by_key(|s| s.shard);
        // Workers are gone: recording on lane 0 is single-threaded now.
        for s in &stats {
            self.obs.shard_imbalance.record(0, s.ops);
        }
        stats
    }
}

impl<S: WireCodec> Drop for Service<S> {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; this path only fires on an
        // abandoned service (e.g. a panicking test) — stop and detach.
        self.stop.store(true, Ordering::SeqCst);
        for inbox in self.inboxes.iter() {
            inbox.ready.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker: drain the inbox through a frame decoder, apply each request
/// to the owning shard, and mail the response back.
fn worker_loop<S>(
    w: usize,
    mut shards: Vec<Shard<S>>,
    map: ShardMap,
    inboxes: &[Mailbox],
    replies: &[Mailbox],
    stop: &AtomicBool,
    obs: &ServiceObs,
) -> Vec<ShardStats>
where
    S: WireCodec + Send + Sync,
    S::Op: Send + Sync,
{
    let workers = inboxes.len();
    let inbox = &inboxes[w];
    let mut dec = FrameDecoder::new();
    loop {
        let bytes = {
            let mut q = inbox.queue.lock();
            loop {
                if let Some(bytes) = q.pop_front() {
                    obs.queue_depth.record(w, q.len() as u64);
                    break Some(bytes);
                }
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                inbox.ready.wait(&mut q);
            }
        };
        let Some(bytes) = bytes else { break };
        dec.push(&bytes);
        while let Some(frame) = dec.next_frame().expect("well-formed request stream") {
            handle_request::<S>(w, workers, &mut shards, map, &frame, replies, obs);
        }
    }
    shards
        .into_iter()
        .map(|s| ShardStats {
            shard: s.id(),
            ops: s.ops(),
            keys: s.keys(),
        })
        .collect()
}

fn handle_request<S>(
    w: usize,
    workers: usize,
    shards: &mut [Shard<S>],
    map: ShardMap,
    frame: &Frame,
    replies: &[Mailbox],
    obs: &ServiceObs,
) where
    S: WireCodec + Send + Sync,
    S::Op: Send + Sync,
{
    assert_eq!(frame.kind, KIND_REQUEST, "worker received a non-request");
    let shard_id = map.shard_of(frame.key);
    debug_assert_eq!(shard_id % workers, w, "request routed to wrong worker");
    // Worker w owns shards w, w + workers, w + 2·workers, … in order.
    let shard = &mut shards[(shard_id - w) / workers];
    let op = S::decode_op(&frame.payload).expect("decodable request");
    let resp = shard.apply(frame.key, &op);
    obs.route.incr(w);
    replies[frame.client as usize].push(response_frame::<S>(frame, &resp).to_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_spec::specs::{CounterOp, CounterSpec, JamWordOp, JamWordResp, JamWordSpec};

    #[test]
    fn counter_service_end_to_end() {
        let mut svc = Service::start(
            ServiceConfig {
                shards: 8,
                workers: 3,
                clients: 4,
                ..Default::default()
            },
            CounterSpec::new(),
        );
        // 4 client threads hammer 32 keys; per-key totals must be exact.
        std::thread::scope(|scope| {
            for client in 0..4u32 {
                let svc = &svc;
                scope.spawn(move || {
                    for round in 0..25 {
                        for key in 0..32 {
                            let got = svc.call(client, key, &CounterOp::Inc);
                            assert!(got >= 1, "round {round}: inc returned {got}");
                        }
                    }
                });
            }
        });
        for key in 0..32 {
            assert_eq!(svc.call(0, key, &CounterOp::Read), 100, "key {key}");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.len(), 8);
        // 4 clients × 25 rounds × 32 keys + 32 reads.
        assert_eq!(stats.iter().map(|s| s.ops).sum::<u64>(), 4 * 25 * 32 + 32);
        assert_eq!(stats.iter().map(|s| s.keys).sum::<usize>(), 32);
    }

    #[test]
    fn jam_word_sticks_across_clients() {
        let mut svc = Service::start(
            ServiceConfig {
                shards: 2,
                workers: 2,
                clients: 8,
                ..Default::default()
            },
            JamWordSpec::new(),
        );
        // 8 clients race to jam the same key; exactly one value must win
        // and every response must report that same value.
        let winners: Vec<u64> = std::thread::scope(|scope| {
            (0..8u32)
                .map(|client| {
                    let svc = &svc;
                    scope.spawn(move || {
                        match svc.call(client, 99, &JamWordOp::Jam(u64::from(client) + 1)) {
                            JamWordResp::Jam { value, .. } => value,
                            other => panic!("unexpected response {other:?}"),
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let first = winners[0];
        assert!(winners.iter().all(|&v| v == first), "winners: {winners:?}");
        assert_eq!(
            svc.call(0, 99, &JamWordOp::Read),
            JamWordResp::Value(Some(first))
        );
        svc.shutdown();
    }

    #[test]
    fn shutdown_reports_imbalance_histogram() {
        let mut svc = Service::start(
            ServiceConfig {
                shards: 4,
                workers: 2,
                clients: 1,
                ..Default::default()
            },
            CounterSpec::new(),
        );
        for key in 0..64 {
            svc.call(0, key, &CounterOp::Inc);
        }
        let route = svc.obs_snapshot().counter("service.route");
        let stats = svc.shutdown();
        assert_eq!(stats.iter().map(|s| s.ops).sum::<u64>(), 64);
        // With obs compiled in the route counter saw every request; the
        // disabled sinks legitimately read zero.
        if cfg!(feature = "obs") {
            assert_eq!(route, 64);
        }
    }
}
