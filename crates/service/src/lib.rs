//! # sbu-service — a sharded keyed object space over the universal construction
//!
//! The paper's result is *per object*: any sequential spec becomes one
//! wait-free linearizable object. This crate scales that out the way a
//! real system would — a keyed **object space** where every `u64` key
//! names an independent object, partitioned into shards that each own
//! their universal-construction instances:
//!
//! ```text
//!   client ──encode──▶ wire frame ──route──▶ worker inbox ──decode──▶
//!     Shard (single owner) ──▶ Universal::apply at the object for key
//!       ──encode──▶ response frame ──▶ client reply box
//! ```
//!
//! * [`ShardMap`] — the pure routing function (`key → shard`), hash or
//!   range policy ([`Routing`]).
//! * [`Frame`]/[`FrameDecoder`]/[`WireCodec`] — the length-prefixed wire
//!   protocol. In-process queues carry the bytes today; the decoder is
//!   incremental precisely so a socket transport can replace them without
//!   touching anything above it.
//! * [`Shard`] — a single-owner slice of the key space, lazily
//!   materializing one tiny (`n = 1`) [`sbu_core::Universal`] per touched
//!   key. Cheap bulk instance construction is what makes "one universal
//!   object per key" viable.
//! * [`Service`] — the thread-per-core server loop: `workers` threads,
//!   static shard ownership, blocking [`Service::call`] and open-loop
//!   [`Service::post`]/[`Service::take_reply`].
//! * [`loadgen`] — the seeded offline load generator behind experiment
//!   E12 (open/closed loop, uniform/Zipf keys).
//!
//! Observability: `service.route` (requests routed), `service.queue_depth`
//! (inbox depth at drain), `service.shard_imbalance` (per-shard op totals
//! at shutdown), all per-worker-lane under the repo's single-writer
//! discipline and merged via `sbu_obs::Snapshot::merge`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
mod route;
mod server;
mod shard;
mod wire;

pub use loadgen::{LoadgenConfig, LoadgenReport, LoopMode, Skew};
pub use route::{Routing, ShardMap};
pub use server::{Service, ServiceConfig, ShardStats};
pub use shard::Shard;
pub use wire::{
    request_frame, response_frame, Frame, FrameDecoder, WireCodec, WireError, KIND_REQUEST,
    KIND_RESPONSE,
};
