//! One shard: a slice of the object space backed by per-key universal
//! constructions.
//!
//! A shard is **single-owner**: exactly one worker thread holds it (the
//! server hands each shard to one worker and never moves it), so the shard
//! needs no interior synchronization of its own — all the concurrency
//! control lives *inside* each `Universal`, and the shard can take `&mut
//! self` for the lazy key → object table. Per-key instances are built with
//! `n = 1` (the owning worker is the only processor that ever applies to
//! them), which makes them tiny: the Θ(n²) pool collapses to its constant
//! floor, and the PR's slab-allocated bit matrices mean a key costs two
//! `Vec`s and a handful of memory locations, so millions of keys are
//! feasible. Each instance is labeled with the shard id via the builder's
//! `shard(..)` seam for observability.

use crate::wire::WireCodec;
use sbu_core::{CellPayload, Universal};
use sbu_mem::{NativeMem, Pid};
use std::collections::HashMap;

/// A single-owner slice of the keyed object space.
pub struct Shard<S: WireCodec> {
    /// This shard's index in the [`crate::ShardMap`] partition.
    id: usize,
    /// The initial state cloned into every freshly touched key.
    template: S,
    /// The shard's private memory: every per-key instance allocates here.
    mem: NativeMem<CellPayload<S>>,
    /// Lazily populated key → object table.
    objects: HashMap<u64, Universal<S>>,
    /// Operations applied by this shard (feeds `service.shard_imbalance`).
    ops: u64,
}

impl<S> Shard<S>
where
    S: WireCodec + Send + Sync,
    S::Op: Send + Sync,
{
    /// An empty shard; keys materialize on first touch as clones of
    /// `template`.
    pub fn new(id: usize, template: S) -> Self {
        Self {
            id,
            template,
            mem: NativeMem::new(),
            objects: HashMap::new(),
            ops: 0,
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of keys that have been touched (and so materialized).
    pub fn keys(&self) -> usize {
        self.objects.len()
    }

    /// Total operations this shard has applied.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Apply `op` to the object at `key`, materializing it if this is the
    /// key's first touch. Always runs as `Pid(0)`: the owning worker is
    /// the instance's only processor.
    pub fn apply(&mut self, key: u64, op: &S::Op) -> S::Resp {
        self.ops += 1;
        if !self.objects.contains_key(&key) {
            let built = Universal::builder(1)
                .shard(self.id)
                .build(&mut self.mem, self.template.clone());
            self.objects.insert(key, built);
        }
        let obj = &self.objects[&key];
        obj.apply(&self.mem, Pid(0), op)
    }
}

impl<S: WireCodec> std::fmt::Debug for Shard<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("keys", &self.objects.len())
            .field("ops", &self.ops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_spec::specs::{CounterOp, CounterSpec};

    #[test]
    fn keys_are_independent_and_lazy() {
        let mut shard = Shard::new(0, CounterSpec::new());
        assert_eq!(shard.keys(), 0);
        assert_eq!(shard.apply(1, &CounterOp::Inc), 1);
        assert_eq!(shard.apply(1, &CounterOp::Inc), 2);
        assert_eq!(shard.apply(2, &CounterOp::Inc), 1); // fresh key, fresh state
        assert_eq!(shard.apply(1, &CounterOp::Read), 2);
        assert_eq!(shard.keys(), 2);
        assert_eq!(shard.ops(), 4);
    }
}
