//! The length-prefixed wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [len: u32 LE] [kind: u8] [client: u32 LE] [seq: u64 LE] [key: u64 LE] [payload…]
//! ```
//!
//! `len` counts every byte after itself, so a byte stream of frames is
//! self-delimiting; [`FrameDecoder`] reassembles frames from arbitrary
//! chunk boundaries (it is fed whole frames by the in-process queues
//! today, but the same decoder drops onto a socket transport unchanged —
//! that is the layering seam). `kind` distinguishes `Request{key, command}`
//! from `Response{seq, return_value}`; `client` addresses the reply,
//! `seq` is the client's own correlation number, echoed verbatim.
//!
//! Payloads are spec-typed: the [`WireCodec`] trait extends a
//! [`SequentialSpec`] with byte encodings for its `Op` and `Resp`, so a
//! service over `CounterSpec` and one over `JamWordSpec` share every other
//! layer. Codecs are hand-rolled tag-byte encodings — the repo is fully
//! offline, no serde.

use sbu_spec::specs::{
    CounterOp, CounterSpec, JamWordOp, JamWordResp, JamWordSpec, StickyOp, StickyResp, StickySpec,
    Tri,
};
use sbu_spec::SequentialSpec;

/// Frame kind tag: a command heading for a shard.
pub const KIND_REQUEST: u8 = 0;
/// Frame kind tag: a return value heading back to a client.
pub const KIND_RESPONSE: u8 = 1;

/// Bytes of a frame after the length prefix, before the payload.
const HEADER: usize = 1 + 4 + 8 + 8;

/// A decoding failure (malformed frame or payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// One decoded frame (header plus raw payload bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// [`KIND_REQUEST`] or [`KIND_RESPONSE`].
    pub kind: u8,
    /// The client the frame belongs to (sender of a request, addressee of
    /// a response).
    pub client: u32,
    /// Client-chosen correlation number, echoed on the response.
    pub seq: u64,
    /// The object key (requests route on it; responses echo it).
    pub key: u64,
    /// Spec-typed payload bytes ([`WireCodec`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encode as one length-prefixed frame, appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let len = (HEADER + self.payload.len()) as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Encode as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + HEADER + self.payload.len());
        self.encode(&mut out);
        out
    }
}

/// Incremental frame reassembly from a byte stream with arbitrary chunk
/// boundaries.
///
/// ```
/// use sbu_service::{Frame, FrameDecoder, KIND_REQUEST};
/// let frame = Frame { kind: KIND_REQUEST, client: 7, seq: 1, key: 42, payload: vec![9] };
/// let bytes = frame.to_bytes();
/// let mut dec = FrameDecoder::new();
/// for b in &bytes {
///     dec.push(std::slice::from_ref(b)); // one byte at a time
/// }
/// assert_eq!(dec.next_frame().unwrap(), Some(frame));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted once it outgrows the remainder).
    at: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed more bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let pending = &self.buf[self.at..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len < HEADER {
            return Err(WireError(format!(
                "frame length {len} is shorter than the header"
            )));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let body = &pending[4..4 + len];
        let frame = Frame {
            kind: body[0],
            client: u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")),
            seq: u64::from_le_bytes(body[5..13].try_into().expect("8 bytes")),
            key: u64::from_le_bytes(body[13..21].try_into().expect("8 bytes")),
            payload: body[HEADER..].to_vec(),
        };
        self.at += 4 + len;
        if self.at * 2 > self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        Ok(Some(frame))
    }
}

/// Byte encodings for a spec's commands and return values — the payload
/// layer of the wire protocol. Implemented for the specs the service
/// fronts; a new object type joins the service by implementing this.
pub trait WireCodec: SequentialSpec {
    /// Append `op`'s encoding to `out`.
    fn encode_op(op: &Self::Op, out: &mut Vec<u8>);
    /// Decode an op (must consume exactly `bytes`).
    fn decode_op(bytes: &[u8]) -> Result<Self::Op, WireError>;
    /// Append `resp`'s encoding to `out`.
    fn encode_resp(resp: &Self::Resp, out: &mut Vec<u8>);
    /// Decode a response (must consume exactly `bytes`).
    fn decode_resp(bytes: &[u8]) -> Result<Self::Resp, WireError>;
}

fn take_u64(bytes: &[u8], what: &str) -> Result<u64, WireError> {
    bytes
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| WireError(format!("{what}: expected 8 bytes, got {}", bytes.len())))
}

impl WireCodec for CounterSpec {
    fn encode_op(op: &CounterOp, out: &mut Vec<u8>) {
        match op {
            CounterOp::Inc => out.push(0),
            CounterOp::Add(n) => {
                out.push(1);
                out.extend_from_slice(&n.to_le_bytes());
            }
            CounterOp::Read => out.push(2),
        }
    }

    fn decode_op(bytes: &[u8]) -> Result<CounterOp, WireError> {
        match bytes {
            [0] => Ok(CounterOp::Inc),
            [1, rest @ ..] => Ok(CounterOp::Add(take_u64(rest, "counter add")?)),
            [2] => Ok(CounterOp::Read),
            other => Err(WireError(format!("bad counter op {other:?}"))),
        }
    }

    fn encode_resp(resp: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&resp.to_le_bytes());
    }

    fn decode_resp(bytes: &[u8]) -> Result<u64, WireError> {
        take_u64(bytes, "counter resp")
    }
}

impl WireCodec for StickySpec {
    fn encode_op(op: &StickyOp, out: &mut Vec<u8>) {
        match op {
            StickyOp::Jam(bit) => {
                out.push(0);
                out.push(u8::from(*bit));
            }
            StickyOp::Read => out.push(1),
            StickyOp::Flush => out.push(2),
        }
    }

    fn decode_op(bytes: &[u8]) -> Result<StickyOp, WireError> {
        match bytes {
            [0, bit @ (0 | 1)] => Ok(StickyOp::Jam(*bit == 1)),
            [1] => Ok(StickyOp::Read),
            [2] => Ok(StickyOp::Flush),
            other => Err(WireError(format!("bad sticky op {other:?}"))),
        }
    }

    fn encode_resp(resp: &StickyResp, out: &mut Vec<u8>) {
        match resp {
            StickyResp::Success => out.push(0),
            StickyResp::Fail => out.push(1),
            StickyResp::Value(tri) => {
                out.push(2);
                out.push(match tri {
                    Tri::Undef => 0,
                    Tri::Zero => 1,
                    Tri::One => 2,
                });
            }
            StickyResp::Flushed => out.push(3),
        }
    }

    fn decode_resp(bytes: &[u8]) -> Result<StickyResp, WireError> {
        match bytes {
            [0] => Ok(StickyResp::Success),
            [1] => Ok(StickyResp::Fail),
            [2, 0] => Ok(StickyResp::Value(Tri::Undef)),
            [2, 1] => Ok(StickyResp::Value(Tri::Zero)),
            [2, 2] => Ok(StickyResp::Value(Tri::One)),
            [3] => Ok(StickyResp::Flushed),
            other => Err(WireError(format!("bad sticky resp {other:?}"))),
        }
    }
}

impl WireCodec for JamWordSpec {
    fn encode_op(op: &JamWordOp, out: &mut Vec<u8>) {
        match op {
            JamWordOp::Jam(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            JamWordOp::Read => out.push(1),
        }
    }

    fn decode_op(bytes: &[u8]) -> Result<JamWordOp, WireError> {
        match bytes {
            [0, rest @ ..] => Ok(JamWordOp::Jam(take_u64(rest, "jam value")?)),
            [1] => Ok(JamWordOp::Read),
            other => Err(WireError(format!("bad jam op {other:?}"))),
        }
    }

    fn encode_resp(resp: &JamWordResp, out: &mut Vec<u8>) {
        match resp {
            JamWordResp::Jam { won, value } => {
                out.push(0);
                out.push(u8::from(*won));
                out.extend_from_slice(&value.to_le_bytes());
            }
            JamWordResp::Value(None) => out.push(1),
            JamWordResp::Value(Some(v)) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn decode_resp(bytes: &[u8]) -> Result<JamWordResp, WireError> {
        match bytes {
            [0, won @ (0 | 1), rest @ ..] => Ok(JamWordResp::Jam {
                won: *won == 1,
                value: take_u64(rest, "jam resp value")?,
            }),
            [1] => Ok(JamWordResp::Value(None)),
            [2, rest @ ..] => Ok(JamWordResp::Value(Some(take_u64(rest, "jam resp value")?))),
            other => Err(WireError(format!("bad jam resp {other:?}"))),
        }
    }
}

/// Encode a request frame for `op` (the client side of the protocol).
pub fn request_frame<S: WireCodec>(client: u32, seq: u64, key: u64, op: &S::Op) -> Frame {
    let mut payload = Vec::new();
    S::encode_op(op, &mut payload);
    Frame {
        kind: KIND_REQUEST,
        client,
        seq,
        key,
        payload,
    }
}

/// Encode the response frame answering `req` (the worker side).
pub fn response_frame<S: WireCodec>(req: &Frame, resp: &S::Resp) -> Frame {
    let mut payload = Vec::new();
    S::encode_resp(resp, &mut payload);
    Frame {
        kind: KIND_RESPONSE,
        client: req.client,
        seq: req.seq,
        key: req.key,
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ops<S: WireCodec>(ops: &[S::Op])
    where
        S::Op: PartialEq + std::fmt::Debug,
    {
        for op in ops {
            let mut buf = Vec::new();
            S::encode_op(op, &mut buf);
            assert_eq!(&S::decode_op(&buf).unwrap(), op);
        }
    }

    fn roundtrip_resps<S: WireCodec>(resps: &[S::Resp])
    where
        S::Resp: PartialEq + std::fmt::Debug,
    {
        for resp in resps {
            let mut buf = Vec::new();
            S::encode_resp(resp, &mut buf);
            assert_eq!(&S::decode_resp(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn codecs_round_trip() {
        roundtrip_ops::<CounterSpec>(&[CounterOp::Inc, CounterOp::Add(u64::MAX), CounterOp::Read]);
        roundtrip_resps::<CounterSpec>(&[0, 1, u64::MAX]);
        roundtrip_ops::<StickySpec>(&[StickyOp::Jam(true), StickyOp::Jam(false), StickyOp::Read]);
        roundtrip_resps::<StickySpec>(&[
            StickyResp::Success,
            StickyResp::Fail,
            StickyResp::Value(Tri::Undef),
            StickyResp::Value(Tri::One),
            StickyResp::Flushed,
        ]);
        roundtrip_ops::<JamWordSpec>(&[JamWordOp::Jam(7), JamWordOp::Read]);
        roundtrip_resps::<JamWordSpec>(&[
            JamWordResp::Jam {
                won: true,
                value: 7,
            },
            JamWordResp::Value(None),
            JamWordResp::Value(Some(9)),
        ]);
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(CounterSpec::decode_op(&[]).is_err());
        assert!(CounterSpec::decode_op(&[9]).is_err());
        assert!(CounterSpec::decode_op(&[1, 0, 0]).is_err()); // short add
        assert!(StickySpec::decode_op(&[0, 7]).is_err()); // bad bit
        assert!(JamWordSpec::decode_resp(&[0, 1]).is_err()); // short value
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let frames = vec![
            request_frame::<CounterSpec>(0, 1, 42, &CounterOp::Inc),
            request_frame::<CounterSpec>(3, 2, 7, &CounterOp::Add(5)),
            response_frame::<CounterSpec>(
                &request_frame::<CounterSpec>(3, 2, 7, &CounterOp::Read),
                &12,
            ),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode(&mut stream);
        }
        // Feed the stream in every chunk size from 1 to whole-buffer.
        for chunk in 1..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
        }
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut dec = FrameDecoder::new();
        dec.push(&3u32.to_le_bytes()); // claims 3 bytes: shorter than a header
        dec.push(&[0, 0, 0]);
        assert!(dec.next_frame().is_err());
    }
}
