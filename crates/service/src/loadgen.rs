//! The offline load generator behind experiment E12.
//!
//! Drives a [`Service`] with a synthetic keyed workload along three axes:
//!
//! * **loop mode** — *closed* (each client blocks for every reply: the
//!   classic fixed-concurrency benchmark, throughput is `clients` divided
//!   by mean latency) vs *open* (every request is posted up front and the
//!   workers drain the backlog: measures raw service capacity, and is what
//!   fills the `service.queue_depth` histogram with non-trivial depths);
//! * **key skew** — uniform over the key space vs Zipf(θ) (hand-rolled
//!   CDF + binary search; the repo vendors no Zipf sampler), which is the
//!   hot-key regime where hash routing still pins each hot key to one
//!   shard and imbalance shows up in `service.shard_imbalance`;
//! * **topology** — clients × shards × workers, all from the config.
//!
//! Everything is seeded. With `timing: false` the report zeroes its two
//! wall-clock fields, which makes a single-threaded run byte-identical
//! across invocations — the property the E12 determinism test pins.

use crate::server::{Service, ServiceConfig, ShardStats};
use crate::wire::WireCodec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// How keys are drawn from `0..keys`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every key equally likely.
    Uniform,
    /// Zipf-distributed ranks with the given exponent θ (θ → 0 approaches
    /// uniform; θ ≈ 0.99 is the conventional "hot key" benchmark setting).
    /// Key `0` is the hottest.
    Zipf(f64),
}

/// Whether clients wait for replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Post every request before collecting any reply.
    Open,
    /// One outstanding request per client (block on each reply).
    Closed,
}

/// One load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Client threads (closed loop) / reply-box slots (both modes).
    pub clients: usize,
    /// Shard count (power of two).
    pub shards: usize,
    /// Worker threads.
    pub workers: usize,
    /// Requests issued per client.
    pub ops_per_client: usize,
    /// Size of the key space (keys are `0..keys`).
    pub keys: usize,
    /// Key distribution.
    pub skew: Skew,
    /// Loop mode.
    pub mode: LoopMode,
    /// Seed for every stream the run draws.
    pub seed: u64,
    /// When `false`, `elapsed_secs` and `ops_per_sec` report as zero so
    /// the whole report is a pure function of the config (determinism
    /// tests); when `true` they carry wall-clock measurements.
    pub timing: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 1,
            shards: 1,
            workers: 1,
            ops_per_client: 1000,
            keys: 1024,
            skew: Skew::Uniform,
            mode: LoopMode::Closed,
            seed: 0xE12,
            timing: true,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Total requests completed (`clients × ops_per_client`).
    pub ops: u64,
    /// Wall-clock seconds (zero when `timing: false`).
    pub elapsed_secs: f64,
    /// `ops / elapsed_secs` (zero when `timing: false`).
    pub ops_per_sec: f64,
    /// Per-shard totals from [`Service::shutdown`].
    pub shards: Vec<ShardStats>,
    /// Hottest shard's share of ops divided by the perfectly balanced
    /// share (1.0 = perfectly even; `shards` = everything on one shard).
    pub imbalance: f64,
    /// The service instruments (`service.route`, `service.queue_depth`,
    /// `service.shard_imbalance`).
    pub metrics: sbu_obs::Snapshot,
}

/// A seeded key sampler for one client's request stream.
struct KeyStream {
    rng: SmallRng,
    keys: usize,
    /// Zipf CDF over ranks (empty = uniform).
    cdf: Vec<f64>,
}

impl KeyStream {
    fn new(config: &LoadgenConfig, client: usize) -> Self {
        // Distinct stream per client, stable under reordering of clients.
        let rng = SmallRng::seed_from_u64(config.seed ^ (0x9E37_79B9 * (client as u64 + 1)));
        let cdf = match config.skew {
            Skew::Uniform => Vec::new(),
            Skew::Zipf(theta) => {
                let mut cdf = Vec::with_capacity(config.keys);
                let mut total = 0.0;
                for rank in 1..=config.keys {
                    total += 1.0 / (rank as f64).powf(theta);
                    cdf.push(total);
                }
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
        };
        Self {
            rng,
            keys: config.keys,
            cdf,
        }
    }

    fn next_key(&mut self) -> u64 {
        if self.cdf.is_empty() {
            return self.rng.gen_range(0..self.keys as u64);
        }
        let u: f64 = self.rng.gen();
        // First rank whose cumulative mass covers u.
        let rank = self.cdf.partition_point(|&c| c < u);
        rank.min(self.keys - 1) as u64
    }
}

/// Run one configuration against a fresh service. `gen_op` draws each
/// request's command (it sees the op-local RNG so mixes are seeded too).
pub fn run<S, F>(config: &LoadgenConfig, template: S, gen_op: F) -> LoadgenReport
where
    S: WireCodec + Send + Sync + 'static,
    S::Op: Send + Sync,
    S::Resp: Send,
    F: Fn(&mut SmallRng) -> S::Op + Send + Sync,
{
    assert!(config.clients >= 1 && config.ops_per_client >= 1 && config.keys >= 1);
    let mut svc = Service::start(
        ServiceConfig {
            shards: config.shards,
            workers: config.workers,
            clients: config.clients,
            ..Default::default()
        },
        template,
    );
    let started = Instant::now();
    match config.mode {
        LoopMode::Closed => {
            std::thread::scope(|scope| {
                for client in 0..config.clients {
                    let (svc, gen_op) = (&svc, &gen_op);
                    let mut stream = KeyStream::new(config, client);
                    scope.spawn(move || {
                        for _ in 0..config.ops_per_client {
                            let key = stream.next_key();
                            let op = gen_op(&mut stream.rng);
                            svc.call(client as u32, key, &op);
                        }
                    });
                }
            });
        }
        LoopMode::Open => {
            // Post the full backlog, then collect every reply. Posting is
            // single-threaded so the arrival order is deterministic; the
            // workers drain concurrently, which is the point.
            for client in 0..config.clients {
                let mut stream = KeyStream::new(config, client);
                for _ in 0..config.ops_per_client {
                    let key = stream.next_key();
                    let op = gen_op(&mut stream.rng);
                    svc.post(client as u32, key, &op);
                }
            }
            std::thread::scope(|scope| {
                for client in 0..config.clients {
                    let svc = &svc;
                    scope.spawn(move || {
                        for _ in 0..config.ops_per_client {
                            svc.take_reply(client as u32);
                        }
                    });
                }
            });
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let shards = svc.shutdown();
    // Snapshot after shutdown so `service.shard_imbalance` (recorded while
    // joining the workers) is included.
    let metrics = svc.obs_snapshot();

    let ops = (config.clients * config.ops_per_client) as u64;
    let hottest = shards.iter().map(|s| s.ops).max().unwrap_or(0);
    let fair = ops as f64 / config.shards as f64;
    LoadgenReport {
        ops,
        elapsed_secs: if config.timing { elapsed } else { 0.0 },
        ops_per_sec: if config.timing && elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        imbalance: if fair > 0.0 {
            hottest as f64 / fair
        } else {
            0.0
        },
        shards,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_spec::specs::{CounterOp, CounterSpec};

    fn counter_mix(rng: &mut SmallRng) -> CounterOp {
        if rng.gen_bool(0.25) {
            CounterOp::Read
        } else {
            CounterOp::Inc
        }
    }

    #[test]
    fn closed_loop_completes_every_op() {
        let config = LoadgenConfig {
            clients: 4,
            shards: 4,
            workers: 2,
            ops_per_client: 200,
            keys: 64,
            ..Default::default()
        };
        let report = run(&config, CounterSpec::new(), counter_mix);
        assert_eq!(report.ops, 800);
        assert_eq!(report.shards.iter().map(|s| s.ops).sum::<u64>(), 800);
        assert!(report.imbalance >= 1.0);
    }

    #[test]
    fn open_loop_drains_the_backlog() {
        let config = LoadgenConfig {
            clients: 2,
            shards: 2,
            workers: 2,
            ops_per_client: 300,
            keys: 32,
            mode: LoopMode::Open,
            ..Default::default()
        };
        let report = run(&config, CounterSpec::new(), counter_mix);
        assert_eq!(report.shards.iter().map(|s| s.ops).sum::<u64>(), 600);
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let config = LoadgenConfig {
            keys: 1000,
            skew: Skew::Zipf(0.99),
            ..Default::default()
        };
        let mut stream = KeyStream::new(&config, 0);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if stream.next_key() < 10 {
                head += 1;
            }
        }
        // Zipf(0.99) over 1000 keys puts roughly 40% of mass on the top
        // 10 ranks; uniform would put 1% there.
        assert!(
            (2500..=6500).contains(&head),
            "top-10 keys drew {head}/10000"
        );
    }

    #[test]
    fn reports_are_deterministic_single_threaded_without_timing() {
        let config = LoadgenConfig {
            clients: 1,
            shards: 4,
            workers: 1,
            ops_per_client: 250,
            keys: 128,
            skew: Skew::Zipf(0.8),
            timing: false,
            ..Default::default()
        };
        let a = run(&config, CounterSpec::new(), counter_mix);
        let b = run(&config, CounterSpec::new(), counter_mix);
        assert_eq!(a.shards, b.shards);
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        assert_eq!(a.elapsed_secs, 0.0);
        assert_eq!(a.ops_per_sec, 0.0);
    }
}
