//! The `ShardMap` router: a total, stable partition of the key space.
//!
//! Routing must be a *pure function* of `(key, shard count, policy)` — no
//! hidden state, no randomness — so that every client, every worker, and
//! every replayed benchmark agrees on which shard owns a key. The default
//! policy hashes keys through a 64-bit finalizer before masking, so
//! adjacent keys (the common case in generated workloads) spread across
//! shards; the range policy is the seam for a later elastic split/merge,
//! where contiguous key ranges must stay contiguous per shard.

/// How a key is mapped to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Mix the key through splitmix64 and mask with `shards - 1`.
    /// Spreads any key distribution evenly; the default.
    #[default]
    Hash,
    /// Partition the key space into `shards` contiguous ranges by the
    /// key's top bits. Keeps ranges contiguous per shard — the seam a
    /// future elastic split/merge (halving or doubling a shard's range)
    /// builds on.
    Range,
}

/// splitmix64's output mixing step: a bijective 64-bit finalizer (so hash
/// routing never collides two distinct keys onto the same mixed value).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The router: maps every `u64` key to one of a power-of-two number of
/// shards.
///
/// ```
/// use sbu_service::{Routing, ShardMap};
/// let map = ShardMap::new(8);
/// let s = map.shard_of(42);
/// assert!(s < 8);
/// assert_eq!(s, map.shard_of(42)); // stable
/// assert_eq!(ShardMap::new(1).shard_of(42), 0); // total
/// let ranged = ShardMap::new(8).with_routing(Routing::Range);
/// assert_eq!(ranged.shard_of(0), 0); // low keys → low shards
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    routing: Routing,
}

impl ShardMap {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two (the mask-based hash route
    /// and the top-bits range route both require it; a non-power-of-two
    /// count would silently bias the partition).
    pub fn new(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        Self {
            shards,
            routing: Routing::default(),
        }
    }

    /// Choose the routing policy (default [`Routing::Hash`]).
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing policy in force.
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// The shard that owns `key`. Total (every key maps somewhere) and
    /// stable (a pure function of the router's configuration).
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        let mask = (self.shards - 1) as u64;
        match self.routing {
            Routing::Hash => (mix64(key) & mask) as usize,
            Routing::Range => {
                // Top log2(shards) bits of the key; `shards == 1` has no
                // bits to take (a 64-bit shift would be UB-adjacent).
                if self.shards == 1 {
                    0
                } else {
                    (key >> (64 - self.shards.trailing_zeros())) as usize
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_total_and_stable() {
        for shards in [1, 2, 4, 8, 64] {
            for routing in [Routing::Hash, Routing::Range] {
                let map = ShardMap::new(shards).with_routing(routing);
                for key in (0..1000).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
                    let s = map.shard_of(key);
                    assert!(s < shards, "{routing:?} key {key} → shard {s}/{shards}");
                    assert_eq!(s, map.shard_of(key), "routing must be stable");
                }
            }
        }
    }

    #[test]
    fn hash_routing_spreads_sequential_keys() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for key in 0..4000 {
            counts[map.shard_of(key)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {s} got {c} of 4000 sequential keys"
            );
        }
    }

    #[test]
    fn range_routing_keeps_ranges_contiguous() {
        let map = ShardMap::new(4).with_routing(Routing::Range);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(u64::MAX), 3);
        // Monotone: a larger key never routes to a smaller shard.
        let mut last = 0;
        for key in (0..64).map(|i| i << 58) {
            let s = map.shard_of(key);
            assert!(s >= last, "range routing must be monotone in the key");
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        ShardMap::new(3);
    }
}
