//! Typed command-line options for the stress entry points.
//!
//! [`Options::parse`] turns an argument list into a validated [`Options`],
//! shared by `examples/stress.rs` and the E10 benchmark driver so the two
//! never drift apart on flag names or defaults. Errors are typed
//! ([`OptionsError`]) rather than process exits, so library callers can
//! render them however they like; `--help`/`-h` surfaces as
//! [`OptionsError::Help`] with the canonical [`USAGE`] text.

use crate::harness::ContentionProfile;
use crate::inject::Inject;
use sbu_mem::TornPersist;

/// Canonical usage text for the stress drivers.
pub const USAGE: &str = "\
usage: stress [options]
  --threads N        worker threads (default 4)
  --ops N            total operations, split across threads (default 40000)
  --seed N           master seed (default 42)
  --workload W       sticky|jam|election|consensus-sticky|universal-counter|
                     universal-queue|all (default sticky); with
                     --crash-restart: recoverable-jam|recoverable-counter|all
  --objects N        independent object instances (default 4)
  --profile P        hot|spread contention profile (default hot)
  --inject I         none|torn-jam|stale-read fault injection; sticky-only
                     (default none); exit 0 iff the monitor CATCHES the fault
  --crash N          threads that abandon one op (normal mode: in their final
                     epoch; crash-restart mode: per era, default 1)
  --epoch-ops N      ops per thread per epoch (default auto: 64/threads)
  --crash-restart    durable torture: eras split by real crash+restart+recovery
                     over DurableMem, verdict from check_durable
  --torn P           crash-restart torn-persist policy:
                     persist|lose|seeded:N|lying (default persist); with
                     lying, exit 0 iff the durable checker CATCHES the lie
  --eras N           crash-restart eras per run (default 4)
  --iters N          repeat the run with seeds seed..seed+N (default 1)

exit codes (assertable by CI without grepping the verdict lines):
  0  clean: every window linearized, and with --inject / --torn lying the
     monitor CAUGHT the injected fault
  1  the monitor caught a linearizability / durability violation under an
     HONEST configuration — a real bug in the objects or backend
  2  usage error
  3  an injected fault escaped: --inject / --torn lying ran but the monitor
     caught nothing
  4  capacity overflow: windows outgrew the checker and went unverified";

/// Why an argument list failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionsError {
    /// `--help`/`-h` was given: not an error, but parsing stops; callers
    /// should print [`USAGE`] and exit successfully.
    Help,
    /// A flag that no stress driver understands.
    UnknownFlag(String),
    /// A flag that takes a value appeared last, without one.
    MissingValue(String),
    /// A flag's value failed to parse.
    BadValue {
        /// The offending flag, e.g. `--threads`.
        flag: String,
        /// The value as given.
        value: String,
        /// The underlying parse error, rendered.
        reason: String,
    },
    /// Flags parsed individually but the combination is invalid
    /// (e.g. `--threads 0`).
    Invalid(String),
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionsError::Help => write!(f, "help requested"),
            OptionsError::UnknownFlag(flag) => write!(f, "unknown flag {flag:?}"),
            OptionsError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            OptionsError::BadValue {
                flag,
                value,
                reason,
            } => {
                write!(f, "bad value {value:?} for {flag}: {reason}")
            }
            OptionsError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Parsed configuration of one stress invocation (both normal and
/// crash-restart modes; which fields matter depends on
/// [`Options::crash_restart`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Worker threads.
    pub threads: usize,
    /// Total operations across all threads.
    pub total_ops: usize,
    /// Master seed.
    pub seed: u64,
    /// Raw `--workload` argument (`None` = the mode's default; `"all"` and
    /// mode-specific names are resolved by the driver, which knows whether
    /// it is in crash-restart mode).
    pub workload: Option<String>,
    /// Independent object instances.
    pub objects: usize,
    /// Contention profile.
    pub profile: ContentionProfile,
    /// Sticky-only fault injection.
    pub inject: Inject,
    /// Threads that abandon one op (`None` = mode default).
    pub crash: Option<usize>,
    /// Ops per thread per epoch (0 = auto).
    pub epoch_ops: usize,
    /// Crash-restart mode instead of the normal torture.
    pub crash_restart: bool,
    /// Torn-persist policy (crash-restart mode).
    pub torn: TornPersist,
    /// Eras per crash-restart run.
    pub eras: usize,
    /// Repeat count (seeds `seed..seed+iters`).
    pub iters: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            threads: 4,
            total_ops: 40_000,
            seed: 42,
            workload: None,
            objects: 4,
            profile: ContentionProfile::Hot,
            inject: Inject::None,
            crash: None,
            epoch_ops: 0,
            crash_restart: false,
            torn: TornPersist::Persist,
            eras: 4,
            iters: 1,
        }
    }
}

impl Options {
    /// Parse an argument list (without the program name).
    pub fn parse<I>(args: I) -> Result<Self, OptionsError>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut opts = Options::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--threads" => opts.threads = value(&flag, args.next())?,
                "--ops" => opts.total_ops = value(&flag, args.next())?,
                "--seed" => opts.seed = value(&flag, args.next())?,
                "--workload" => {
                    opts.workload = Some(args.next().ok_or(OptionsError::MissingValue(flag))?)
                }
                "--objects" => opts.objects = value(&flag, args.next())?,
                "--profile" => opts.profile = value(&flag, args.next())?,
                "--inject" => opts.inject = value(&flag, args.next())?,
                "--crash" => opts.crash = Some(value(&flag, args.next())?),
                "--epoch-ops" => opts.epoch_ops = value(&flag, args.next())?,
                "--crash-restart" => opts.crash_restart = true,
                "--torn" => opts.torn = value(&flag, args.next())?,
                "--eras" => opts.eras = value(&flag, args.next())?,
                "--iters" => opts.iters = value(&flag, args.next())?,
                "--help" | "-h" => return Err(OptionsError::Help),
                _ => return Err(OptionsError::UnknownFlag(flag)),
            }
        }
        if opts.threads == 0 {
            return Err(OptionsError::Invalid("--threads must be at least 1".into()));
        }
        if opts.iters == 0 {
            return Err(OptionsError::Invalid("--iters must be at least 1".into()));
        }
        if opts.eras == 0 {
            return Err(OptionsError::Invalid("--eras must be at least 1".into()));
        }
        Ok(opts)
    }

    /// Render this configuration back into an argument list that
    /// [`Options::parse`] accepts and maps to an equal `Options` — the
    /// canonical form used by the scenario reports to record how to
    /// reproduce a run. Every field is emitted explicitly (no reliance on
    /// defaults), except the `None` optionals, which have no flag form.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--threads".into(),
            self.threads.to_string(),
            "--ops".into(),
            self.total_ops.to_string(),
            "--seed".into(),
            self.seed.to_string(),
        ];
        if let Some(w) = &self.workload {
            args.push("--workload".into());
            args.push(w.clone());
        }
        args.push("--objects".into());
        args.push(self.objects.to_string());
        args.push("--profile".into());
        args.push(self.profile.to_string());
        args.push("--inject".into());
        args.push(self.inject.to_string());
        if let Some(c) = self.crash {
            args.push("--crash".into());
            args.push(c.to_string());
        }
        args.push("--epoch-ops".into());
        args.push(self.epoch_ops.to_string());
        if self.crash_restart {
            args.push("--crash-restart".into());
        }
        args.push("--torn".into());
        args.push(self.torn.to_string());
        args.push("--eras".into());
        args.push(self.eras.to_string());
        args.push("--iters".into());
        args.push(self.iters.to_string());
        args
    }
}

/// Parse one flag's value with a typed error.
fn value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, OptionsError>
where
    T::Err: std::fmt::Display,
{
    let v = v.ok_or_else(|| OptionsError::MissingValue(flag.to_string()))?;
    v.parse().map_err(|e: T::Err| OptionsError::BadValue {
        flag: flag.to_string(),
        value: v,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, OptionsError> {
        Options::parse(args.iter().copied().map(String::from))
    }

    #[test]
    fn defaults_survive_an_empty_argument_list() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.total_ops, 40_000);
        assert_eq!(opts.seed, 42);
        assert!(!opts.crash_restart);
        assert_eq!(opts.torn, TornPersist::Persist);
    }

    #[test]
    fn flags_are_parsed_and_typed() {
        let opts = parse(&[
            "--threads",
            "8",
            "--ops",
            "1000",
            "--profile",
            "spread",
            "--inject",
            "torn-jam",
            "--crash-restart",
            "--torn",
            "seeded:9",
        ])
        .unwrap();
        assert_eq!(opts.threads, 8);
        assert_eq!(opts.total_ops, 1000);
        assert_eq!(opts.profile, ContentionProfile::Spread);
        assert_eq!(opts.inject, Inject::TornJam);
        assert!(opts.crash_restart);
        assert_eq!(opts.torn, TornPersist::Seeded(9));
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(parse(&["--help"]), Err(OptionsError::Help));
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(OptionsError::UnknownFlag("--frobnicate".into()))
        );
        assert_eq!(
            parse(&["--threads"]),
            Err(OptionsError::MissingValue("--threads".into()))
        );
        assert!(matches!(
            parse(&["--threads", "many"]),
            Err(OptionsError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(OptionsError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["--iters", "0"]),
            Err(OptionsError::Invalid(_))
        ));
    }

    #[test]
    fn every_error_renders_a_message() {
        for err in [
            OptionsError::UnknownFlag("--x".into()),
            OptionsError::MissingValue("--seed".into()),
            OptionsError::BadValue {
                flag: "--seed".into(),
                value: "abc".into(),
                reason: "invalid digit".into(),
            },
            OptionsError::Invalid("nope".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
