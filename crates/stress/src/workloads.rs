//! Ready-made torture workloads over the paper's objects.
//!
//! Each workload builds real objects on the native backend
//! ([`sbu_mem::native::NativeMem`]), wires them into the [`torture`]
//! harness, and returns the monitor's [`TortureReport`]. All of them are
//! deterministic in the seed (up to OS scheduling, which only affects
//! interleavings — every interleaving must linearize).
//!
//! Fault injection ([`Inject`]) is only meaningful for [`Workload::Sticky`]:
//! the torn-jam/stale-read lies target raw sticky-bit operations, and the
//! higher-level objects (Figure 2 `Jam`, election, universal construction)
//! sit *on top of* those bits — a lying bit would violate their internal
//! invariants (Figure 2's helping protocol panics on them) rather than
//! surface as a clean object-level non-linearizability.

use crate::harness::{torture, StressConfig, StressObject, TortureReport};
use crate::inject::{Inject, TornMem};
use rand::Rng;
use sbu_core::{CellPayload, SpinLockUniversal, Universal};
use sbu_mem::{native::NativeMem, JamOutcome, Pid, Word, WordMem};
use sbu_spec::specs::{
    CounterOp, CounterSpec, QueueOp, QueueSpec, StickyOp, StickyResp, StickySpec,
};
use sbu_spec::SequentialSpec;
use sbu_sticky::consensus::StickyWordConsensus;
use sbu_sticky::{ConsensusStickyBit, JamWord, LeaderElection};

/// Which object family to torture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Raw native sticky bits (one `AtomicU8` CAS each).
    Sticky,
    /// The Figure 2 sticky byte (`JamWord`, width 8) with helping.
    Jam,
    /// Leader election from sticky bits (§4).
    Election,
    /// Sticky bit built from initializable consensus (§6 reduction).
    ConsensusSticky,
    /// Bounded universal construction (§5–6) wrapping a counter.
    UniversalCounter,
    /// Bounded universal construction wrapping a FIFO queue.
    UniversalQueue,
}

impl Workload {
    /// All workloads, for `--workload all` style iteration.
    pub fn all() -> [Workload; 6] {
        [
            Workload::Sticky,
            Workload::Jam,
            Workload::Election,
            Workload::ConsensusSticky,
            Workload::UniversalCounter,
            Workload::UniversalQueue,
        ]
    }
}

impl std::str::FromStr for Workload {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sticky" => Ok(Workload::Sticky),
            "jam" => Ok(Workload::Jam),
            "election" => Ok(Workload::Election),
            "consensus-sticky" => Ok(Workload::ConsensusSticky),
            "universal-counter" => Ok(Workload::UniversalCounter),
            "universal-queue" => Ok(Workload::UniversalQueue),
            other => Err(format!(
                "unknown workload {other:?} \
                 (sticky|jam|election|consensus-sticky|universal-counter|universal-queue)"
            )),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Workload::Sticky => "sticky",
            Workload::Jam => "jam",
            Workload::Election => "election",
            Workload::ConsensusSticky => "consensus-sticky",
            Workload::UniversalCounter => "universal-counter",
            Workload::UniversalQueue => "universal-queue",
        };
        write!(f, "{s}")
    }
}

// The Figure 2 `Jam` word's sequential model now lives in `sbu-spec`
// (the service wire codec needs it without a harness dependency); the
// re-export keeps every existing `sbu_stress::workloads::JamWordSpec`
// path working.
pub use sbu_spec::specs::{JamWordOp, JamWordResp, JamWordSpec};

/// Sequential specification of leader election: the first `Elect` wins and
/// every later one observes the same winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ElectionSpec {
    leader: Option<usize>,
}

/// Commands accepted by [`ElectionSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectionOp {
    /// Stand for election as processor `p` (returns the winner).
    Elect(usize),
    /// Read the current leader, if any.
    Leader,
}

/// Responses produced by [`ElectionSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectionResp {
    /// The (unique, forever-fixed) winner.
    Winner(usize),
    /// The current leader (`None` before any election completes).
    Current(Option<usize>),
}

impl ElectionSpec {
    /// No leader elected yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SequentialSpec for ElectionSpec {
    type Op = ElectionOp;
    type Resp = ElectionResp;

    fn apply(&mut self, op: &ElectionOp) -> ElectionResp {
        match *op {
            ElectionOp::Elect(p) => ElectionResp::Winner(*self.leader.get_or_insert(p)),
            ElectionOp::Leader => ElectionResp::Current(self.leader),
        }
    }
}

fn sticky_exec<M: WordMem>(
    mem: &M,
    bit: sbu_mem::StickyBitId,
    pid: Pid,
    op: &StickyOp,
) -> StickyResp {
    match *op {
        StickyOp::Jam(v) => match mem.sticky_jam(pid, bit, v) {
            JamOutcome::Success => StickyResp::Success,
            JamOutcome::Fail => StickyResp::Fail,
        },
        StickyOp::Read => StickyResp::Value(mem.sticky_read(pid, bit)),
        // Flush is non-atomic (Definition 4.1) and never generated here.
        StickyOp::Flush => {
            mem.sticky_flush(pid, bit);
            StickyResp::Flushed
        }
    }
}

/// The fixed value thread `pid` jams into word `obj` (see the Jam workload:
/// one value per (thread, object), but neighbours disagree). Public so the
/// scenario harness (`sbu-scenario`) drives jam objects with the same
/// announcement discipline.
pub fn jam_value_for(pid: Pid, obj: usize) -> Word {
    (pid.0 as u64).wrapping_mul(7).wrapping_add(obj as u64 * 3) % 8
}

fn gen_sticky_op(rng: &mut rand::rngs::SmallRng) -> StickyOp {
    if rng.gen_bool(0.5) {
        StickyOp::Jam(rng.gen_bool(0.5))
    } else {
        StickyOp::Read
    }
}

/// The `Workload::Jam` body, parameterized over the candidate-switch
/// backoff cap (`None` = the paper-verbatim loop). Shared by
/// [`run_workload`] and the tuned arm [`run_jam_backoff`].
fn run_jam_inner(
    cfg: &StressConfig,
    registry: &sbu_obs::Registry,
    backoff_limit: Option<u32>,
) -> TortureReport {
    let mut mem = NativeMem::<()>::new();
    mem.attach_obs(registry);
    let words: Vec<JamWord> = (0..cfg.objects)
        .map(|_| {
            let word = JamWord::new(&mut mem, cfg.threads, 8).with_obs(registry);
            match backoff_limit {
                Some(limit) => word.with_backoff_limit(limit),
                None => word,
            }
        })
        .collect();
    let mem = &mem;
    let objects: Vec<StressObject<'_, JamWordSpec>> = words
        .iter()
        .map(|w| StressObject {
            init: JamWordSpec::new(),
            exec: Box::new(move |pid, op| match *op {
                JamWordOp::Jam(v) => {
                    let (outcome, value) = w.jam(mem, pid, v);
                    JamWordResp::Jam {
                        won: outcome.is_success(),
                        value,
                    }
                }
                JamWordOp::Read => JamWordResp::Value(w.read(mem, pid)),
            }),
        })
        .collect();
    // One fixed value per (thread, object): Figure 2's announcement
    // register `v_i` is single-writer per word, so a thread that
    // re-jams a *different* value would clobber its own announcement
    // while helpers are scanning it. Distinct threads still disagree,
    // which is the race the helping protocol exists for.
    torture(
        cfg,
        |pid| mem.op_invoke(pid),
        objects,
        |rng, pid, obj| {
            if rng.gen_bool(0.6) {
                JamWordOp::Jam(jam_value_for(pid, obj))
            } else {
                JamWordOp::Read
            }
        },
    )
}

/// [`Workload::Jam`] with the candidate-switch backoff capped at
/// `backoff_limit` (the E10 tuning knob: a failed bit jam spins locally
/// before rescanning candidates, shaving shared-word traffic at 4–8
/// threads; the shared-memory step sequence is unchanged, so the monitor
/// checks it exactly like the stock arm).
pub fn run_jam_backoff(cfg: &StressConfig, backoff_limit: u32) -> TortureReport {
    let registry = sbu_obs::Registry::new(cfg.threads);
    let mut report = run_jam_inner(cfg, &registry, Some(backoff_limit));
    report.metrics = registry.snapshot();
    report
}

/// Run `workload` under `cfg`, optionally with sticky-bit fault injection.
///
/// # Panics
///
/// Panics if `inject != Inject::None` for a workload other than
/// [`Workload::Sticky`] (see the module docs for why).
pub fn run_workload(workload: Workload, cfg: &StressConfig, inject: Inject) -> TortureReport {
    assert!(
        inject == Inject::None || workload == Workload::Sticky,
        "fault injection only targets the raw sticky workload"
    );
    // One registry per run: every backend and object attaches its
    // instruments here, and the final snapshot rides out on the report.
    // With the `obs` feature off all of this is free no-ops.
    let registry = sbu_obs::Registry::new(cfg.threads);
    let mut report = match workload {
        Workload::Sticky => {
            let mut inner = NativeMem::<()>::new();
            inner.attach_obs(&registry);
            let mut mem = TornMem::new(inner, inject).with_obs(&registry);
            let bits: Vec<_> = (0..cfg.objects).map(|_| mem.alloc_sticky_bit()).collect();
            let mem = &mem;
            let objects: Vec<StressObject<'_, StickySpec>> = bits
                .iter()
                .map(|&bit| StressObject {
                    init: StickySpec::new(),
                    exec: Box::new(move |pid, op| sticky_exec(mem, bit, pid, op)),
                })
                .collect();
            torture(
                cfg,
                |pid| mem.op_invoke(pid),
                objects,
                |rng, _, _| gen_sticky_op(rng),
            )
        }
        Workload::Jam => run_jam_inner(cfg, &registry, None),
        Workload::Election => {
            let mut mem = NativeMem::<()>::new();
            mem.attach_obs(&registry);
            let elections: Vec<LeaderElection> = (0..cfg.objects)
                .map(|_| LeaderElection::new(&mut mem, cfg.threads))
                .collect();
            let mem = &mem;
            let objects: Vec<StressObject<'_, ElectionSpec>> = elections
                .iter()
                .map(|e| StressObject {
                    init: ElectionSpec::new(),
                    exec: Box::new(move |pid, op| match *op {
                        ElectionOp::Elect(_) => ElectionResp::Winner(e.elect(mem, pid).0),
                        ElectionOp::Leader => {
                            ElectionResp::Current(e.leader(mem, pid).map(|p| p.0))
                        }
                    }),
                })
                .collect();
            torture(
                cfg,
                |pid| mem.op_invoke(pid),
                objects,
                |rng, pid, _| {
                    if rng.gen_bool(0.3) {
                        ElectionOp::Elect(pid.0)
                    } else {
                        ElectionOp::Leader
                    }
                },
            )
        }
        Workload::ConsensusSticky => {
            let mut mem = NativeMem::<()>::new();
            mem.attach_obs(&registry);
            let bits: Vec<ConsensusStickyBit<StickyWordConsensus>> = (0..cfg.objects)
                .map(|_| {
                    let consensus = StickyWordConsensus::new(&mut mem);
                    ConsensusStickyBit::new(&mut mem, consensus)
                })
                .collect();
            let mem = &mem;
            let objects: Vec<StressObject<'_, StickySpec>> = bits
                .iter()
                .map(|b| StressObject {
                    init: StickySpec::new(),
                    exec: Box::new(move |pid, op| match *op {
                        StickyOp::Jam(v) => match b.jam(mem, pid, v) {
                            JamOutcome::Success => StickyResp::Success,
                            JamOutcome::Fail => StickyResp::Fail,
                        },
                        StickyOp::Read => StickyResp::Value(b.read(mem, pid)),
                        StickyOp::Flush => StickyResp::Flushed, // never generated
                    }),
                })
                .collect();
            torture(
                cfg,
                |pid| mem.op_invoke(pid),
                objects,
                |rng, _, _| gen_sticky_op(rng),
            )
        }
        Workload::UniversalCounter => {
            let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
            mem.attach_obs(&registry);
            let counters: Vec<Universal<CounterSpec>> = (0..cfg.objects)
                .map(|_| {
                    Universal::builder(cfg.threads)
                        .obs(&registry)
                        .build(&mut mem, CounterSpec::new())
                })
                .collect();
            let mem = &mem;
            let objects: Vec<StressObject<'_, CounterSpec>> = counters
                .iter()
                .map(|c| StressObject {
                    init: CounterSpec::new(),
                    exec: Box::new(move |pid, op| c.apply(mem, pid, op)),
                })
                .collect();
            torture(
                cfg,
                |pid| mem.op_invoke(pid),
                objects,
                |rng, _, _| match rng.gen_range(0u32..5) {
                    0..=2 => CounterOp::Inc,
                    3 => CounterOp::Add(rng.gen_range(1u64..5)),
                    _ => CounterOp::Read,
                },
            )
        }
        Workload::UniversalQueue => {
            let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
            mem.attach_obs(&registry);
            let queues: Vec<Universal<QueueSpec>> = (0..cfg.objects)
                .map(|_| {
                    Universal::builder(cfg.threads)
                        .obs(&registry)
                        .build(&mut mem, QueueSpec::new())
                })
                .collect();
            let mem = &mem;
            let objects: Vec<StressObject<'_, QueueSpec>> = queues
                .iter()
                .map(|q| StressObject {
                    init: QueueSpec::new(),
                    exec: Box::new(move |pid, op| q.apply(mem, pid, op)),
                })
                .collect();
            torture(
                cfg,
                |pid| mem.op_invoke(pid),
                objects,
                |rng, _, _| match rng.gen_range(0u32..5) {
                    0..=1 => QueueOp::Enqueue(rng.gen_range(0u64..100)),
                    2..=3 => QueueOp::Dequeue,
                    _ => QueueOp::Len,
                },
            )
        }
    };
    report.metrics = registry.snapshot();
    report
}

/// Throughput measurement of the *same* sticky-byte workload against the
/// lock-based strawman ([`SpinLockUniversal`]), for the E10 baseline column:
/// completed ops/sec with `threads` threads hammering `objects` lock-based
/// jam words (monitored exactly like the native run).
pub fn run_lock_based_jam(cfg: &StressConfig) -> TortureReport {
    let registry = sbu_obs::Registry::new(cfg.threads);
    let mut mem: NativeMem<CellPayload<JamWordSpec>> = NativeMem::new();
    mem.attach_obs(&registry);
    let locks: Vec<SpinLockUniversal> = (0..cfg.objects)
        .map(|_| SpinLockUniversal::new(&mut mem, JamWordSpec::new()))
        .collect();
    let mem = &mem;
    let objects: Vec<StressObject<'_, JamWordSpec>> = locks
        .iter()
        .map(|l| StressObject {
            init: JamWordSpec::new(),
            exec: Box::new(move |pid, op| l.apply::<JamWordSpec, _>(mem, pid, op)),
        })
        .collect();
    // Same op mix as the native Jam workload, for a fair E10 comparison.
    let mut report = torture(
        cfg,
        |pid| mem.op_invoke(pid),
        objects,
        |rng, pid, obj| {
            if rng.gen_bool(0.6) {
                JamWordOp::Jam(jam_value_for(pid, obj))
            } else {
                JamWordOp::Read
            }
        },
    );
    report.metrics = registry.snapshot();
    report
}

/// Quick self-check: a two-thread, sub-second smoke of every workload (used
/// by unit tests; the real entry points are `examples/stress.rs` and the
/// `torture_smoke` integration tests).
#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> StressConfig {
        let mut cfg = StressConfig::new(threads, 96, 7);
        cfg.objects = 2;
        cfg
    }

    #[test]
    fn sticky_workload_linearizes() {
        let report = run_workload(Workload::Sticky, &tiny(3), Inject::None);
        report.assert_clean();
        assert_eq!(report.total_ops, 3 * 96);
        assert!(report.windows_checked > 0);
    }

    #[test]
    fn jam_word_spec_is_sticky() {
        let mut s = JamWordSpec::new();
        assert_eq!(s.apply(&JamWordOp::Read), JamWordResp::Value(None));
        assert_eq!(
            s.apply(&JamWordOp::Jam(3)),
            JamWordResp::Jam {
                won: true,
                value: 3
            }
        );
        assert_eq!(
            s.apply(&JamWordOp::Jam(5)),
            JamWordResp::Jam {
                won: false,
                value: 3
            }
        );
        assert_eq!(s.apply(&JamWordOp::Read), JamWordResp::Value(Some(3)));
    }

    #[test]
    fn election_spec_fixes_first_winner() {
        let mut s = ElectionSpec::new();
        assert_eq!(s.apply(&ElectionOp::Leader), ElectionResp::Current(None));
        assert_eq!(s.apply(&ElectionOp::Elect(2)), ElectionResp::Winner(2));
        assert_eq!(s.apply(&ElectionOp::Elect(0)), ElectionResp::Winner(2));
        assert_eq!(s.apply(&ElectionOp::Leader), ElectionResp::Current(Some(2)));
    }

    #[test]
    #[should_panic(expected = "only targets the raw sticky workload")]
    fn injection_rejected_off_sticky() {
        let _ = run_workload(Workload::Jam, &tiny(2), Inject::TornJam);
    }
}
