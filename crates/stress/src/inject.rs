//! Seeded mutation of a memory backend, to prove the monitor has teeth.
//!
//! [`TornMem`] wraps any [`WordMem`]/[`DataMem`] backend and delegates every
//! operation — except that, on a deterministic schedule, it *lies* about
//! sticky-bit operations:
//!
//! * [`Inject::TornJam`] — a `Jam(v)` that actually failed (the bit holds
//!   `!v`) is reported as [`JamOutcome::Success`], as if the CAS had been
//!   torn and both values won. Any subsequent completed `Read` pins the bit
//!   to the real value, so the frontier-set monitor finds no state in which
//!   both the lying jam and the reads are legal.
//! * [`Inject::StaleRead`] — a defined `Read` is reported as `⊥`, the
//!   initial-value analogue of a stale cache line. A read of `⊥` after any
//!   completed successful jam cannot linearize.
//!
//! With [`Inject::None`] the wrapper is a transparent pass-through and must
//! pass the full backend conformance suite (`sbu-mem::conformance`).

use sbu_mem::{
    AtomicId, DataId, DataMem, JamOutcome, Pid, SafeId, StickyBitId, StickyWordId, TasId, Tri,
    Word, WordMem,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which lie to inject (and [`Inject::None`] for a transparent wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inject {
    /// Delegate everything faithfully.
    #[default]
    None,
    /// Report every `period`-th *failed* sticky-bit jam as a success.
    TornJam,
    /// Report every `period`-th *defined* sticky-bit read as `⊥`.
    StaleRead,
}

impl std::str::FromStr for Inject {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Inject::None),
            "torn-jam" => Ok(Inject::TornJam),
            "stale-read" => Ok(Inject::StaleRead),
            other => Err(format!(
                "unknown injection {other:?} (none|torn-jam|stale-read)"
            )),
        }
    }
}

impl std::fmt::Display for Inject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inject::None => write!(f, "none"),
            Inject::TornJam => write!(f, "torn-jam"),
            Inject::StaleRead => write!(f, "stale-read"),
        }
    }
}

/// A [`WordMem`]/[`DataMem`] wrapper that injects sticky-bit lies on a
/// deterministic schedule (every `period`-th eligible operation).
#[derive(Debug)]
pub struct TornMem<M> {
    inner: M,
    mode: Inject,
    period: u64,
    eligible: AtomicU64,
    lies: AtomicU64,
    /// `inject.lies_told` — lies actually injected, attributed to the lane
    /// of the processor that was lied to (so verdict lines can cite the
    /// injected count next to the monitor's caught count).
    obs_lies: sbu_obs::Counter,
}

impl<M> TornMem<M> {
    /// Wrap `inner`, lying on every 7th eligible operation.
    pub fn new(inner: M, mode: Inject) -> Self {
        Self::with_period(inner, mode, 7)
    }

    /// Wrap `inner`, lying on every `period`-th eligible operation.
    pub fn with_period(inner: M, mode: Inject, period: u64) -> Self {
        assert!(period >= 1, "period must be positive");
        Self {
            inner,
            mode,
            period,
            eligible: AtomicU64::new(0),
            lies: AtomicU64::new(0),
            obs_lies: sbu_obs::Counter::disabled(),
        }
    }

    /// Attach the injector's instrument (`inject.lies_told`) to `registry`
    /// (builder-style; a detached injector still counts via
    /// [`TornMem::lies_told`]).
    pub fn with_obs(mut self, registry: &sbu_obs::Registry) -> Self {
        self.obs_lies = registry.counter("inject.lies_told");
        self
    }

    /// Number of lies actually told so far.
    pub fn lies_told(&self) -> u64 {
        self.lies.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped backend (setup-time only — e.g. to
    /// call the inner backend's own `attach_obs`).
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Whether this eligible operation is scheduled to lie.
    fn tick(&self, pid: Pid) -> bool {
        let n = self.eligible.fetch_add(1, Ordering::Relaxed);
        let fire = (n + 1).is_multiple_of(self.period);
        if fire {
            self.lies.fetch_add(1, Ordering::Relaxed);
            self.obs_lies.incr(pid.0);
        }
        fire
    }
}

impl<M: WordMem> WordMem for TornMem<M> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        self.inner.alloc_safe(init)
    }
    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        self.inner.alloc_atomic(init)
    }
    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        self.inner.alloc_sticky_bit()
    }
    fn alloc_sticky_word(&mut self) -> StickyWordId {
        self.inner.alloc_sticky_word()
    }
    fn alloc_tas(&mut self) -> TasId {
        self.inner.alloc_tas()
    }

    fn safe_read(&self, pid: Pid, r: SafeId) -> Word {
        self.inner.safe_read(pid, r)
    }
    fn safe_write(&self, pid: Pid, r: SafeId, v: Word) {
        self.inner.safe_write(pid, r, v)
    }

    fn atomic_read(&self, pid: Pid, r: AtomicId) -> Word {
        self.inner.atomic_read(pid, r)
    }
    fn atomic_write(&self, pid: Pid, r: AtomicId, v: Word) {
        self.inner.atomic_write(pid, r, v)
    }
    fn rmw(&self, pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.inner.rmw(pid, r, f)
    }

    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        let real = self.inner.sticky_jam(pid, s, v);
        if self.mode == Inject::TornJam && real == JamOutcome::Fail && self.tick(pid) {
            return JamOutcome::Success;
        }
        real
    }
    fn sticky_read(&self, pid: Pid, s: StickyBitId) -> Tri {
        let real = self.inner.sticky_read(pid, s);
        if self.mode == Inject::StaleRead && real != Tri::Undef && self.tick(pid) {
            return Tri::Undef;
        }
        real
    }
    fn sticky_flush(&self, pid: Pid, s: StickyBitId) {
        self.inner.sticky_flush(pid, s)
    }

    fn sticky_word_jam(&self, pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        self.inner.sticky_word_jam(pid, s, v)
    }
    fn sticky_word_read(&self, pid: Pid, s: StickyWordId) -> Option<Word> {
        self.inner.sticky_word_read(pid, s)
    }
    fn sticky_word_flush(&self, pid: Pid, s: StickyWordId) {
        self.inner.sticky_word_flush(pid, s)
    }

    fn tas_test_and_set(&self, pid: Pid, t: TasId) -> bool {
        self.inner.tas_test_and_set(pid, t)
    }
    fn tas_read(&self, pid: Pid, t: TasId) -> bool {
        self.inner.tas_read(pid, t)
    }
    fn tas_reset(&self, pid: Pid, t: TasId) {
        self.inner.tas_reset(pid, t)
    }

    fn op_invoke(&self, pid: Pid) -> u64 {
        self.inner.op_invoke(pid)
    }
    fn op_return(&self, pid: Pid) -> u64 {
        self.inner.op_return(pid)
    }

    fn persist(&self, pid: Pid) {
        // Fences are never lied about (the injected lies model a weak CAS,
        // not weak persistency) and must reach the backend: stacking this
        // wrapper over a `DurableMem` would otherwise swallow every fence
        // through the trait's default no-op.
        self.inner.persist(pid)
    }
}

impl<P: Clone, M: DataMem<P>> DataMem<P> for TornMem<M> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        self.inner.alloc_data(init)
    }
    fn data_read(&self, pid: Pid, d: DataId) -> Option<P> {
        self.inner.data_read(pid, d)
    }
    fn data_write(&self, pid: Pid, d: DataId, v: P) {
        self.inner.data_write(pid, d, v)
    }
    fn data_clear(&self, pid: Pid, d: DataId) {
        self.inner.data_clear(pid, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbu_mem::native::NativeMem;

    #[test]
    fn transparent_without_injection() {
        let mut mem = TornMem::new(NativeMem::<()>::new(), Inject::None);
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Fail);
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::One);
        assert_eq!(mem.lies_told(), 0);
    }

    #[test]
    fn torn_jam_lies_on_schedule() {
        let mut mem = TornMem::with_period(NativeMem::<()>::new(), Inject::TornJam, 2);
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
        // Failed jams: 1st eligible (honest), 2nd eligible (lie).
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Fail);
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success);
        assert_eq!(mem.lies_told(), 1);
        // The bit itself is untouched by the lie.
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::One);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_registry_counts_injected_lies() {
        let registry = sbu_obs::Registry::new(2);
        let mut mem =
            TornMem::with_period(NativeMem::<()>::new(), Inject::TornJam, 1).with_obs(&registry);
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success); // lie
        assert_eq!(registry.snapshot().counter("inject.lies_told"), 1);
        assert_eq!(mem.lies_told(), 1);
    }

    #[test]
    fn stale_read_lies_on_schedule() {
        let mut mem = TornMem::with_period(NativeMem::<()>::new(), Inject::StaleRead, 2);
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_jam(Pid(0), s, false), JamOutcome::Success);
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Zero);
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Undef); // the lie
        assert_eq!(mem.lies_told(), 1);
    }
}
