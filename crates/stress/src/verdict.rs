//! Typed process-exit statuses for the stress drivers.
//!
//! The stress example used to collapse every non-clean outcome into exit
//! code 1, so a CI smoke could not tell "the monitor caught a real
//! violation under an honest backend" from "the injected fault escaped"
//! from "a window outgrew the checker" without grepping stdout. This module
//! gives each outcome its own code (documented in [`crate::USAGE`]) and a
//! worst-wins accumulator for multi-workload / multi-iteration runs.

/// One run outcome, ordered by severity (larger = worse). The numeric exit
/// codes are part of the CLI contract — see [`crate::USAGE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExitStatus {
    /// Everything linearized; injected faults (if any) were caught.
    Clean,
    /// Windows outgrew the checker's capacity and went unverified — a
    /// configuration problem, not a verdict.
    Unverified,
    /// An injected fault (`--inject` / `--torn lying`) was NOT caught: the
    /// monitor has a blind spot.
    NotCaught,
    /// The monitor caught a linearizability / durability violation under an
    /// honest configuration: a real bug in the objects or the backend. The
    /// most severe outcome — it wins over everything else.
    Violation,
}

impl ExitStatus {
    /// The process exit code for this outcome.
    pub fn code(self) -> u8 {
        match self {
            ExitStatus::Clean => 0,
            ExitStatus::Violation => 1,
            // 2 is reserved for usage errors (bail paths exit directly).
            ExitStatus::NotCaught => 3,
            ExitStatus::Unverified => 4,
        }
    }
}

/// Worst-wins accumulator over the runs of one invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExitAccumulator {
    worst: Option<ExitStatus>,
}

impl ExitAccumulator {
    /// Nothing recorded yet (resolves to [`ExitStatus::Clean`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run's outcome; severity ordering decides what sticks.
    pub fn record(&mut self, status: ExitStatus) {
        self.worst = Some(match self.worst {
            Some(w) => w.max(status),
            None => status,
        });
    }

    /// The accumulated outcome.
    pub fn status(&self) -> ExitStatus {
        self.worst.unwrap_or(ExitStatus::Clean)
    }

    /// The accumulated process exit code.
    pub fn code(&self) -> u8 {
        self.status().code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_the_documented_contract() {
        assert_eq!(ExitStatus::Clean.code(), 0);
        assert_eq!(ExitStatus::Violation.code(), 1);
        assert_eq!(ExitStatus::NotCaught.code(), 3);
        assert_eq!(ExitStatus::Unverified.code(), 4);
        // Usage errors (code 2) never flow through ExitStatus; keep the
        // hole so no outcome collides with them.
        for s in [
            ExitStatus::Clean,
            ExitStatus::Violation,
            ExitStatus::NotCaught,
            ExitStatus::Unverified,
        ] {
            assert_ne!(s.code(), 2);
        }
    }

    #[test]
    fn usage_documents_every_exit_code() {
        for needle in ["exit codes", "0  clean", "2  usage error"] {
            assert!(
                crate::USAGE.contains(needle),
                "USAGE must document {needle:?}"
            );
        }
    }

    #[test]
    fn accumulator_keeps_the_worst() {
        let mut acc = ExitAccumulator::new();
        assert_eq!(acc.status(), ExitStatus::Clean);
        acc.record(ExitStatus::Clean);
        assert_eq!(acc.code(), 0);
        acc.record(ExitStatus::Unverified);
        assert_eq!(acc.code(), 4);
        acc.record(ExitStatus::NotCaught);
        assert_eq!(acc.code(), 3);
        acc.record(ExitStatus::Violation);
        assert_eq!(acc.code(), 1);
        // Nothing downgrades a violation.
        acc.record(ExitStatus::Clean);
        assert_eq!(acc.code(), 1);
    }

    #[test]
    fn severity_ordering_matches_intent() {
        assert!(ExitStatus::Violation > ExitStatus::NotCaught);
        assert!(ExitStatus::NotCaught > ExitStatus::Unverified);
        assert!(ExitStatus::Unverified > ExitStatus::Clean);
    }
}
