//! Crash–restart torture over [`DurableMem`], checked for **durable
//! linearizability**.
//!
//! # Protocol
//!
//! The run is a sequence of *eras*. Within an era, worker OS threads hammer
//! the objects exactly like [`crate::harness::torture`]; at each era
//! boundary (all workers joined, so the system is quiescent) the driver
//!
//! 1. samples a *crash cut* from the backend's logical clock — strictly
//!    after every timestamp of the closing era, strictly before every
//!    timestamp of the next one;
//! 2. applies [`DurableMem::crash`] for this era's seeded victim set, which
//!    resolves every torn (unfenced) persistent write by the configured
//!    [`TornPersist`] policy;
//! 3. restarts the victims and runs each object's recovery protocol; a
//!    recovery that re-drives an interrupted operation is recorded as a
//!    *completed* operation of the new incarnation.
//!
//! Victim threads crash *inside* their era: they abandon one seeded
//! operation — before executing (the op may only vanish), after executing
//! but before acknowledging (the op may take effect), or **mid-operation**
//! through the object's abandon hook, which leaves the exact memory
//! footprint of a crash between two primitive steps (e.g.
//! `RecoverableJamWord::abandon_jam`). The abandoned op stays *pending* in
//! the recorded history; what a later crash does to its unfenced footprint
//! is the torn-persist policy's call.
//!
//! The final histories are checked offline with [`check_durable`] against
//! the collected crash cuts: acknowledged operations must survive every
//! crash, in-flight ones may take effect within their era or vanish. The
//! [`TornPersist::Lying`] policy — rolling acknowledged sticky bits back in
//! defiance of fences — must therefore be *caught* by the checker; every
//! honest policy must pass.

use crate::harness::{mix, ContentionProfile, StressConfig};
use crate::workloads::{jam_value_for, JamWordOp, JamWordResp, JamWordSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbu_core::{CellPayload, Universal};
use sbu_mem::{native::NativeMem, DurableMem, Pid, TornPersist, WordMem};
use sbu_sim::HistoryRecorder;
use sbu_spec::linearize::{check_durable, CheckError, MAX_OPS};
use sbu_spec::specs::{CounterOp, CounterSpec};
use sbu_spec::SequentialSpec;
use sbu_sticky::recoverable::RecoverableJamWord;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One crash-recoverable object under torture: execution, an optional
/// mid-operation abandon hook, and the recovery protocol.
pub struct DurableObject<'a, S: SequentialSpec> {
    /// Initial specification state.
    pub init: S,
    /// Execute one operation on the real (native) object.
    #[allow(clippy::type_complexity)]
    pub exec: Box<dyn Fn(Pid, &S::Op) -> S::Resp + Send + Sync + 'a>,
    /// Leave the memory footprint of a crash *inside* `op` at the given
    /// crash point (object-specific), without completing it. `None` if the
    /// object has no meaningful mid-operation crash points at this level;
    /// the driver then falls back to executed-but-unacknowledged.
    #[allow(clippy::type_complexity)]
    pub abandon: Option<Box<dyn Fn(Pid, &S::Op, u8) + Send + Sync + 'a>>,
    /// Run the object's recovery for a restarted processor (called at a
    /// quiescent point, after [`DurableMem::restart`]). May return a
    /// completed `(op, resp)` the recovery performed on the object's
    /// behalf — e.g. re-driving a durably announced jam — which the driver
    /// records as an operation of the new incarnation.
    #[allow(clippy::type_complexity)]
    pub recover: Box<dyn Fn(Pid) -> Option<(S::Op, S::Resp)> + 'a>,
}

/// Outcome of one crash-restart torture run.
#[derive(Debug, Clone)]
pub struct CrashRestartReport {
    /// Worker threads used.
    pub threads: usize,
    /// Eras executed (crash boundaries = `crashes`).
    pub eras: usize,
    /// Crash events applied (era boundaries with a non-empty victim set).
    pub crashes: usize,
    /// Recovery-committed operations recorded (an interrupted op re-driven
    /// to completion by the restarted processor).
    pub recovery_ops: usize,
    /// Operations issued (completed + abandoned + recovery-committed).
    pub total_ops: usize,
    /// Operations that were acknowledged.
    pub completed_ops: usize,
    /// Operations abandoned in flight at a crash.
    pub pending_ops: usize,
    /// Objects whose history outgrew the checker ([`MAX_OPS`] per window) —
    /// *not* verified, *not* a violation; shrink the per-era op count.
    pub unverified_objects: usize,
    /// Human-readable durable-linearizability violations.
    pub violations: Vec<String>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Aggregated observability counters from the run's registry (empty
    /// unless the workload attached instruments and the `obs` feature is
    /// on). [`crash_restart_torture`] itself leaves this empty;
    /// [`run_crash_restart`] fills it in.
    pub metrics: sbu_obs::Snapshot,
}

impl CrashRestartReport {
    /// Whether every object's multi-era history durably linearized and all
    /// of them were actually verified.
    pub fn all_durably_linearizable(&self) -> bool {
        self.violations.is_empty() && self.unverified_objects == 0
    }

    /// Panic with the first violation if the run was not clean.
    pub fn assert_clean(&self) {
        assert_eq!(
            self.unverified_objects, 0,
            "{} object histories exceeded MAX_OPS = {MAX_OPS} per window and \
             were not verified",
            self.unverified_objects
        );
        assert!(
            self.violations.is_empty(),
            "durable linearizability violated: {}",
            self.violations[0]
        );
    }
}

impl std::fmt::Display for CrashRestartReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "threads={} eras={} crashes={} recoveries={}",
            self.threads, self.eras, self.crashes, self.recovery_ops
        )?;
        writeln!(
            f,
            "ops={} (completed={} pending={}) elapsed={:.2?}",
            self.total_ops, self.completed_ops, self.pending_ops, self.elapsed
        )?;
        if self.unverified_objects > 0 {
            writeln!(
                f,
                "note: {} object histor{} exceeded the checker's capacity \
                 (MAX_OPS = {MAX_OPS} ops per quiescent window) and went \
                 unverified — not a violation; use fewer ops per era",
                self.unverified_objects,
                if self.unverified_objects == 1 {
                    "y"
                } else {
                    "ies"
                }
            )?;
        }
        if self.violations.is_empty() {
            write!(f, "every era durably linearizable")
        } else {
            write!(f, "DURABILITY VIOLATIONS ({}):", self.violations.len())?;
            for v in &self.violations {
                write!(f, "\n  {v}")?;
            }
            Ok(())
        }
    }
}

/// Seeded choice of `count` distinct victim processors out of `threads`.
fn pick_victims(rng: &mut SmallRng, threads: usize, count: usize) -> Vec<Pid> {
    let count = count.min(threads);
    let mut pool: Vec<usize> = (0..threads).collect();
    for i in 0..count {
        let j = rng.gen_range(i..threads);
        pool.swap(i, j);
    }
    pool[..count].iter().map(|&t| Pid(t)).collect()
}

/// Run one crash-restart torture (see the module docs for the protocol).
///
/// `cfg.ops_per_thread` is split evenly across `eras`;
/// `cfg.crash_threads` processors crash at every era boundary but the last.
/// `crash_restart` applies the crash to the persistency model and restarts
/// the victims (the driver is generic over the backend's data payload, so
/// the workload owns the [`DurableMem::crash`] call); object-level recovery
/// then runs through each [`DurableObject::recover`].
pub fn crash_restart_torture<'a, S, C, G, K>(
    cfg: &StressConfig,
    eras: usize,
    clock: C,
    crash_restart: K,
    objects: Vec<DurableObject<'a, S>>,
    gen_op: G,
) -> CrashRestartReport
where
    S: SequentialSpec + Hash + Eq + Send + Sync,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    C: Fn(Pid) -> u64 + Send + Sync,
    G: Fn(&mut SmallRng, Pid, usize) -> S::Op + Send + Sync,
    K: Fn(&[Pid]),
{
    assert!(cfg.threads >= 1, "at least one worker thread");
    assert!(eras >= 1, "at least one era");
    assert!(!objects.is_empty(), "at least one object");
    let era_ops = (cfg.ops_per_thread / eras).max(1);

    let recorders: Vec<HistoryRecorder<S::Op, S::Resp>> =
        objects.iter().map(|_| HistoryRecorder::new()).collect();
    #[allow(clippy::type_complexity)]
    let execs: Vec<&(dyn Fn(Pid, &S::Op) -> S::Resp + Send + Sync)> =
        objects.iter().map(|o| o.exec.as_ref()).collect();
    #[allow(clippy::type_complexity)]
    let abandons: Vec<Option<&(dyn Fn(Pid, &S::Op, u8) + Send + Sync)>> =
        objects.iter().map(|o| o.abandon.as_deref()).collect();

    let mut plan_rng = SmallRng::seed_from_u64(cfg.seed ^ mix(0xC4A5));
    let mut cuts: Vec<u64> = Vec::new();
    let mut crashes = 0usize;
    let mut recovery_ops = 0usize;
    // First panic caught inside a worker (a broken object invariant is a
    // panic, not a silent miscount); re-raised after the run drains.
    let failure: Mutex<Option<String>> = Mutex::new(None);

    let started = Instant::now();
    for era in 0..eras {
        // Chosen before the era so the victims know to abandon an op.
        let victims: Vec<Pid> = if era + 1 < eras {
            pick_victims(&mut plan_rng, cfg.threads, cfg.crash_threads)
        } else {
            Vec::new()
        };
        std::thread::scope(|scope| {
            for tid in 0..cfg.threads {
                let (victims, recorders) = (&victims, &recorders);
                let (execs, abandons) = (&execs, &abandons);
                let (clock, gen_op, failure) = (&clock, &gen_op, &failure);
                scope.spawn(move || {
                    let pid = Pid(tid);
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ mix(((era as u64) << 20) | (tid as u64 + 1)),
                    );
                    let crash_at: Option<usize> =
                        victims.contains(&pid).then(|| rng.gen_range(0..era_ops));
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        for k in 0..era_ops {
                            let obj = match cfg.profile {
                                ContentionProfile::Hot => {
                                    if rng.gen_bool(0.5) {
                                        0
                                    } else {
                                        rng.gen_range(0..recorders.len())
                                    }
                                }
                                ContentionProfile::Spread => rng.gen_range(0..recorders.len()),
                            };
                            let op = gen_op(&mut rng, pid, obj);
                            let invoke = clock(pid);
                            let token = recorders[obj].begin(pid, op.clone(), invoke);
                            if crash_at == Some(k) {
                                // Crash inside this op; the record stays
                                // pending, the footprint depends on where:
                                match rng.gen_range(0u32..4) {
                                    // Before a single step: may only vanish.
                                    0 => {}
                                    // Mid-operation, at an object-defined
                                    // crash point (falls back to full
                                    // execution if the object has none).
                                    1 | 2 => match abandons[obj] {
                                        Some(ab) => ab(pid, &op, rng.gen_range(0u32..3) as u8),
                                        None => {
                                            let _ = (execs[obj])(pid, &op);
                                        }
                                    },
                                    // Executed but never acknowledged: the
                                    // effect may be visible.
                                    _ => {
                                        let _ = (execs[obj])(pid, &op);
                                    }
                                }
                                return; // silent until the era ends
                            }
                            let resp = (execs[obj])(pid, &op);
                            let ret = clock(pid);
                            recorders[obj].finish(token, resp, ret);
                            if cfg.perturb {
                                match rng.gen_range(0u32..8) {
                                    0 => std::thread::yield_now(),
                                    1 => {
                                        for _ in 0..rng.gen_range(1u32..64) {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }));
                    if let Err(payload) = run {
                        let mut slot = failure.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(format!(
                                "worker {tid} panicked mid-operation in era {era}: {}",
                                crate::harness::panic_message(payload.as_ref())
                            ));
                        }
                    }
                });
            }
        });
        if !victims.is_empty() {
            crashes += 1;
            // All workers joined: quiescent. The cut is strictly after every
            // timestamp of this era and strictly before every later one.
            cuts.push(clock(Pid(0)));
            crash_restart(&victims);
            for (obj, o) in objects.iter().enumerate() {
                for &v in &victims {
                    if let Some((op, resp)) = (o.recover)(v) {
                        let invoke = clock(v);
                        let token = recorders[obj].begin(v, op, invoke);
                        recorders[obj].finish(token, resp, clock(v));
                        recovery_ops += 1;
                    }
                }
            }
        }
    }
    if let Some(msg) = failure.into_inner().unwrap() {
        panic!("{msg}");
    }

    let mut violations: Vec<String> = Vec::new();
    let mut unverified_objects = 0usize;
    for (i, o) in objects.iter().enumerate() {
        let h = recorders[i].history();
        match check_durable(&h, o.init.clone(), &cuts) {
            Ok(res) if res.is_linearizable() => {}
            Ok(_) => violations.push(format!(
                "object {i}: {} ops across {} eras are NOT durably \
                 linearizable (crash cuts at {:?})",
                h.len(),
                cuts.len() + 1,
                cuts
            )),
            Err(CheckError::TooManyOps { .. }) => unverified_objects += 1,
            Err(e) => violations.push(format!("object {i}: malformed durable history: {e}")),
        }
    }

    let total_ops: usize = recorders.iter().map(|r| r.len()).sum();
    let pending_ops: usize = recorders.iter().map(|r| r.history().pending_count()).sum();
    CrashRestartReport {
        threads: cfg.threads,
        eras,
        crashes,
        recovery_ops,
        total_ops,
        completed_ops: total_ops - pending_ops,
        pending_ops,
        unverified_objects,
        violations,
        elapsed: started.elapsed(),
        metrics: sbu_obs::Snapshot::default(),
    }
}

/// Which recoverable object family to torture under crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWorkload {
    /// The flush-on-dependence recoverable sticky byte
    /// ([`RecoverableJamWord`], §4 + DESIGN.md §9). Supports every
    /// [`TornPersist`] policy, including the monitor-validating
    /// [`TornPersist::Lying`].
    RecoverableJam,
    /// The bounded universal construction wrapping a counter, with
    /// [`Universal::recover`] at restarts. Its durability story assumes
    /// fences are honored, so [`TornPersist::Lying`] is rejected.
    RecoverableCounter,
}

impl CrashWorkload {
    /// All crash workloads, for `--workload all` style iteration.
    pub fn all() -> [CrashWorkload; 2] {
        [
            CrashWorkload::RecoverableJam,
            CrashWorkload::RecoverableCounter,
        ]
    }
}

impl std::str::FromStr for CrashWorkload {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "recoverable-jam" => Ok(CrashWorkload::RecoverableJam),
            "recoverable-counter" => Ok(CrashWorkload::RecoverableCounter),
            other => Err(format!(
                "unknown crash workload {other:?} (recoverable-jam|recoverable-counter)"
            )),
        }
    }
}

impl std::fmt::Display for CrashWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashWorkload::RecoverableJam => write!(f, "recoverable-jam"),
            CrashWorkload::RecoverableCounter => write!(f, "recoverable-counter"),
        }
    }
}

/// Run `workload` under `cfg` for `eras` eras with the given torn-persist
/// `policy`, over `DurableMem<NativeMem>`.
///
/// With an honest policy the report must be clean; with
/// [`TornPersist::Lying`] the checker is expected to *catch* a
/// durable-linearizability violation (acknowledged jams rolled back).
///
/// # Panics
///
/// Panics if `policy` is [`TornPersist::Lying`] for
/// [`CrashWorkload::RecoverableCounter`]: the universal construction fences
/// before acknowledging but does not flush-on-dependence internally, so
/// deliberately fence-defying hardware breaks its *invariants* (panics deep
/// in helping) rather than surfacing as a clean checkable violation. The
/// lying-monitor validation lives on the recoverable-jam workload.
pub fn run_crash_restart(
    workload: CrashWorkload,
    cfg: &StressConfig,
    eras: usize,
    policy: TornPersist,
) -> CrashRestartReport {
    // One registry per run, snapshotted into the report (no-ops without
    // the `obs` feature). The lying-policy verdict lines cite
    // `mem.lying_rollbacks` from here.
    let registry = sbu_obs::Registry::new(cfg.threads);
    let mut report = match workload {
        CrashWorkload::RecoverableJam => {
            let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), policy);
            mem.attach_obs(&registry);
            mem.inner_mut().attach_obs(&registry);
            let words: Vec<RecoverableJamWord> = (0..cfg.objects)
                .map(|_| RecoverableJamWord::new(&mut mem, cfg.threads, 8))
                .collect();
            let mem = &mem;
            let objects: Vec<DurableObject<'_, JamWordSpec>> = words
                .iter()
                .enumerate()
                .map(|(obj, w)| DurableObject {
                    init: JamWordSpec::new(),
                    exec: Box::new(move |pid, op| match *op {
                        JamWordOp::Jam(v) => {
                            let (out, value) = w.jam(mem, pid, v);
                            JamWordResp::Jam {
                                won: out.is_success(),
                                value,
                            }
                        }
                        JamWordOp::Read => JamWordResp::Value(w.read(mem, pid)),
                    }),
                    abandon: Some(Box::new(move |pid, op, point| {
                        if let JamWordOp::Jam(v) = *op {
                            w.abandon_jam(mem, pid, v, point);
                        }
                    })),
                    recover: Box::new(move |pid| {
                        // A pid only ever announces its fixed per-object
                        // value, so the re-driven op is `Jam` of exactly it.
                        w.recover(mem, pid).map(|(out, value)| {
                            (
                                JamWordOp::Jam(jam_value_for(pid, obj)),
                                JamWordResp::Jam {
                                    won: out.is_success(),
                                    value,
                                },
                            )
                        })
                    }),
                })
                .collect();
            let mut report = crash_restart_torture(
                cfg,
                eras,
                |pid| mem.op_invoke(pid),
                |victims| {
                    mem.crash::<()>(victims);
                    for &v in victims {
                        mem.restart(v);
                    }
                },
                objects,
                // One fixed value per (thread, object), like the Jam
                // workload: announcements are one-shot.
                |rng, pid, obj| {
                    if rng.gen_bool(0.6) {
                        JamWordOp::Jam(jam_value_for(pid, obj))
                    } else {
                        JamWordOp::Read
                    }
                },
            );
            // The recoverable jam never flushes, so any recorded Def 4.1 /
            // persistency violation is a genuine protocol failure.
            report.violations.extend(
                mem.violations()
                    .into_iter()
                    .map(|v| format!("backend: {v}")),
            );
            report
        }
        CrashWorkload::RecoverableCounter => {
            assert!(
                policy != TornPersist::Lying,
                "lying hardware breaks the universal construction's invariants \
                 outright; run the lying monitor check on recoverable-jam"
            );
            let mut mem: DurableMem<NativeMem<CellPayload<CounterSpec>>> =
                DurableMem::with_policy(NativeMem::new(), policy);
            mem.attach_obs(&registry);
            mem.inner_mut().attach_obs(&registry);
            let counters: Vec<Universal<CounterSpec>> = (0..cfg.objects)
                .map(|_| {
                    Universal::builder(cfg.threads)
                        .obs(&registry)
                        .build(&mut mem, CounterSpec::new())
                })
                .collect();
            let mem = &mem;
            let objects: Vec<DurableObject<'_, CounterSpec>> = counters
                .iter()
                .map(|c| DurableObject {
                    init: CounterSpec::new(),
                    exec: Box::new(move |pid, op| c.apply(mem, pid, op)),
                    // No mid-operation crash points at this level: `apply`
                    // is one indivisible call on the native backend, and it
                    // fences before acknowledging. In-flight effects come
                    // from the executed-but-unacknowledged abandon mode.
                    abandon: None,
                    recover: Box::new(move |pid| {
                        c.recover(mem, pid);
                        None
                    }),
                })
                .collect();
            let mut report = crash_restart_torture(
                cfg,
                eras,
                |pid| mem.op_invoke(pid),
                |victims| {
                    mem.crash::<CellPayload<CounterSpec>>(victims);
                    for &v in victims {
                        mem.restart(v);
                    }
                },
                objects,
                |rng, _, _| match rng.gen_range(0u32..5) {
                    0..=2 => CounterOp::Inc,
                    3 => CounterOp::Add(rng.gen_range(1u64..5)),
                    _ => CounterOp::Read,
                },
            );
            // Backend Def 4.1 / persistency flags ARE part of the verdict:
            // the construction fences every sticky jam performed under a
            // grab before the grab's `r` bit is cleared (flush-on-dependence
            // in RELEASE), and fences an owner's own-cell jams before the
            // apply acknowledges, so by the time INIT observes quiescence
            // and flushes, no dependent write can still be unfenced. Any
            // flag here is a genuine protocol failure.
            report.violations.extend(
                mem.violations()
                    .into_iter()
                    .map(|v| format!("backend: {v}")),
            );
            report
        }
    };
    report.metrics = registry.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_cfg(threads: usize, seed: u64) -> StressConfig {
        let mut cfg = StressConfig::new(threads, 48, seed);
        cfg.objects = 2;
        cfg.crash_threads = 1;
        cfg
    }

    #[test]
    fn victim_selection_is_distinct_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = pick_victims(&mut rng, 5, 3);
            assert_eq!(v.len(), 3);
            let mut sorted: Vec<usize> = v.iter().map(|p| p.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "victims must be distinct");
            assert!(sorted.iter().all(|&t| t < 5));
        }
        assert_eq!(pick_victims(&mut rng, 2, 9).len(), 2, "capped at threads");
    }

    #[test]
    fn honest_recoverable_jam_is_durably_linearizable() {
        for (i, policy) in [
            TornPersist::Persist,
            TornPersist::Lose,
            TornPersist::Seeded(11),
        ]
        .into_iter()
        .enumerate()
        {
            let report = run_crash_restart(
                CrashWorkload::RecoverableJam,
                &crash_cfg(3, 40 + i as u64),
                4,
                policy,
            );
            assert!(report.crashes >= 1, "{policy}: no crash ever happened");
            assert!(report.pending_ops >= 1, "{policy}: no op was in flight");
            report.assert_clean();
        }
    }

    #[test]
    fn lying_hardware_is_caught_by_the_durable_checker() {
        // Acknowledged jams rolled back across a crash cannot linearize.
        // More eras and objects make escape (the same value re-winning
        // every era on every object) astronomically unlikely.
        let mut cfg = crash_cfg(3, 7);
        cfg.objects = 2;
        let report = run_crash_restart(CrashWorkload::RecoverableJam, &cfg, 6, TornPersist::Lying);
        assert!(
            !report.all_durably_linearizable(),
            "lying torn-persist hardware must be caught:\n{report}"
        );
        assert_eq!(report.unverified_objects, 0, "caught, not overflowed");
    }

    #[test]
    fn recoverable_counter_crash_restart_is_durably_linearizable() {
        for seed in 0..3 {
            let report = run_crash_restart(
                CrashWorkload::RecoverableCounter,
                &crash_cfg(3, seed),
                4,
                TornPersist::Persist,
            );
            assert!(report.crashes >= 1);
            report.assert_clean();
        }
    }

    #[test]
    #[should_panic(expected = "lying hardware breaks the universal construction")]
    fn lying_counter_is_rejected() {
        let _ = run_crash_restart(
            CrashWorkload::RecoverableCounter,
            &crash_cfg(2, 0),
            2,
            TornPersist::Lying,
        );
    }
}
